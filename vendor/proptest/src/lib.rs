//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest 1.x its property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! * range, tuple, [`Just`], boxed-union and `collection::vec` strategies;
//! * a tiny `&str` "regex" strategy covering the `[c1-c2]{m,n}` shape;
//! * `any::<T>()` for the primitive types and [`sample::Index`];
//! * the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//!   and `prop_oneof!` macros.
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (derived from the test name) so runs are reproducible, and there
//! is **no shrinking** — a failing case panics with its inputs printed by
//! the assertion itself.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Upstream-compat knob; this shim never shrinks, so it is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

/// `&str` strategies are interpreted as regexes; this shim supports the
/// single `[c1-c2]{m,n}` shape the workspace uses (plus a bare literal
/// fallback) and panics on anything else.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut SmallRng) -> String {
        let s = *self;
        let parse = || -> Option<(char, char, usize, usize)> {
            let rest = s.strip_prefix('[')?;
            let (class, rest) = rest.split_once(']')?;
            let mut chars = class.chars();
            let lo = chars.next()?;
            if chars.next()? != '-' {
                return None;
            }
            let hi = chars.next()?;
            if chars.next().is_some() {
                return None;
            }
            let rest = rest.strip_prefix('{')?;
            let counts = rest.strip_suffix('}')?;
            let (m, n) = counts.split_once(',')?;
            Some((lo, hi, m.parse().ok()?, n.parse().ok()?))
        };
        match parse() {
            Some((lo, hi, min_len, max_len)) => {
                let len = rng.gen_range(min_len..=max_len);
                (0..len).map(|_| rng.gen_range(lo as u32..=hi as u32)).filter_map(char::from_u32).collect()
            }
            None if !s.contains(['[', ']', '{', '}', '*', '+', '?', '|', '(', ')']) => {
                s.to_string()
            }
            None => panic!(
                "proptest shim: unsupported regex strategy {s:?} (only `[c1-c2]{{m,n}}` and literals)"
            ),
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The `any::<T>()` strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Construct the strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive type.
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            #[allow(clippy::redundant_closure_call)]
            fn generate(&self, rng: &mut SmallRng) -> $t {
                ($gen)(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_prim! {
    u8 => |rng: &mut SmallRng| rng.next_u64() as u8,
    u16 => |rng: &mut SmallRng| rng.next_u64() as u16,
    u32 => |rng: &mut SmallRng| rng.next_u64() as u32,
    u64 => |rng: &mut SmallRng| rng.next_u64(),
    usize => |rng: &mut SmallRng| rng.next_u64() as usize,
    i8 => |rng: &mut SmallRng| rng.next_u64() as i8,
    i16 => |rng: &mut SmallRng| rng.next_u64() as i16,
    i32 => |rng: &mut SmallRng| rng.next_u64() as i32,
    i64 => |rng: &mut SmallRng| rng.next_u64() as i64,
    bool => |rng: &mut SmallRng| rng.next_u64() & 1 == 1,
}

use rand::RngCore as _;

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Weighted choice between boxed strategies of one value type
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Length argument of [`vec()`]: a fixed length or a range.
    pub trait IntoLenRange {
        /// Lower/upper (exclusive) bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.min_len + 1 >= self.max_len_exclusive {
                self.min_len
            } else {
                rng.gen_range(self.min_len..self.max_len_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_or_range)`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min_len, max_len_exclusive) = len.bounds();
        assert!(min_len < max_len_exclusive, "empty vec length range");
        VecStrategy { element, min_len, max_len_exclusive }
    }
}

pub mod sample {
    use super::{Arbitrary, SmallRng, Strategy};
    use rand::RngCore;

    /// An index into a collection of as-yet-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Resolve against a concrete (non-zero) length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index requires a non-empty collection");
            (self.raw % len as u64) as usize
        }
    }

    /// `any::<Index>()` strategy.
    pub struct AnyIndex;

    impl Strategy for AnyIndex {
        type Value = Index;
        fn generate(&self, rng: &mut SmallRng) -> Index {
            Index { raw: rng.next_u64() }
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyIndex;
        fn arbitrary() -> Self::Strategy {
            AnyIndex
        }
    }
}

/// Derive the deterministic per-test RNG seed from the test's name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the name: stable across runs and rustc versions.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Fresh case RNG (exposed for the `proptest!` macro expansion).
pub fn case_rng(seed: u64, case: u32) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
    pub use crate as prop;
}

/// Assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(__seed, __case);
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                // One closure call per case; `prop_assume!` skips by
                // returning early, assertion failures panic with context.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(v in 10u32..20, w in 5i64..=9) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((5..=9).contains(&w));
        }

        #[test]
        fn vec_and_map_compose(values in prop::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(values.len() < 10);
        }

        #[test]
        fn tuples_and_oneof(
            (a, b) in (0u32..5, 0u32..5),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(pick == 1u8 || pick == 2u8);
        }

        #[test]
        fn regex_subset(name in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&name.len()));
            prop_assert!(name.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn sample_index(idx in any::<prop::sample::Index>()) {
            let i = idx.index(7);
            prop_assert!(i < 7);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut rng_a = super::case_rng(super::seed_for("x"), 3);
        let mut rng_b = super::case_rng(super::seed_for("x"), 3);
        let s = 0u32..100;
        assert_eq!(
            super::Strategy::generate(&s, &mut rng_a),
            super::Strategy::generate(&s, &mut rng_b)
        );
    }

    #[test]
    fn flat_map_chains() {
        let strat = (2u32..6).prop_flat_map(|n| super::collection::vec(0u32..n, 1..4));
        let mut rng = super::case_rng(1, 0);
        for _ in 0..50 {
            let v = super::Strategy::generate(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&x| x < 6));
        }
    }
}
