//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion 0.5 its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up sizes the batch,
//! then `sample_size` batches are timed inside the `measurement_time`
//! budget and the median per-iteration time is reported. No statistical
//! regression machinery, plots, or baseline storage — results print as
//! one line per benchmark:
//!
//! ```text
//! group/name/param        time: 1.234 µs/iter  (median of 20 samples)
//! ```
//!
//! Like real criterion, passing `--test` (e.g.
//! `cargo bench --bench foo -- --test`) runs every benchmark body exactly
//! once without timing — the CI smoke mode that keeps bench code
//! compiling and executing without paying measurement time.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Identifier `name/parameter` for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("decode", 1024)` renders as `decode/1024`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Bare function id with no parameter part.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Units-of-work declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Prevent the optimizer from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Run `f` repeatedly and record the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            // `--test`: execute once, measure nothing.
            black_box(f());
            self.median_ns = 0.0;
            self.samples = 1;
            return;
        }
        // Warm-up: find a batch size that runs ≥ ~1 ms, capped by time.
        let warmup_deadline = Instant::now() + self.measurement_time / 4;
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || Instant::now() >= warmup_deadline {
                if elapsed < Duration::from_micros(10) {
                    batch = batch.saturating_mul(100).max(1);
                }
                break;
            }
            batch = batch.saturating_mul(4);
        }

        let deadline = Instant::now() + self.measurement_time;
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline && per_iter_ns.len() >= 3 {
                break;
            }
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = per_iter_ns[per_iter_ns.len() / 2];
        self.samples = per_iter_ns.len();
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(
    full_id: &str,
    median_ns: f64,
    samples: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
) {
    if test_mode {
        println!("{full_id:<48} test: ran 1 iteration (--test mode, untimed)");
        return;
    }
    let mut line = format!(
        "{full_id:<48} time: {:>12}/iter  (median of {samples} samples)",
        human_time(median_ns)
    );
    if median_ns > 0.0 {
        match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 * 1e9 / median_ns;
                line.push_str(&format!("  thrpt: {per_sec:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 * 1e9 / median_ns;
                line.push_str(&format!("  thrpt: {:.2} MiB/s", per_sec / (1024.0 * 1024.0)));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declare per-iteration units of work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
            median_ns: 0.0,
            samples: 0,
        };
        f(&mut bencher);
        report(&full_id, bencher.median_ns, bencher.samples, self.throughput, self.test_mode);
        self
    }

    /// Time `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (drop; retained for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads the harness CLI: `--test` switches every benchmark to a
    /// single untimed iteration.
    fn default() -> Criterion {
        Criterion { test_mode: std::env::args().any(|a| a == "--test") }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Time a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        let mut group = self.benchmark_group(&name);
        group.bench_function("base", f);
        group.finish();
        self
    }
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; the only one this
            // minimal harness honours is `--test` (read by
            // `Criterion::default` inside each group runner).
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(3).measurement_time(Duration::from_millis(20));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("spin", 1), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("shim-test-mode");
        let mut calls = 0u32;
        group.bench_function("once", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 1, "--test mode must run the body exactly once");
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("a", 7).into_id(), "a/7");
        assert_eq!("plain".into_id(), "plain");
    }
}
