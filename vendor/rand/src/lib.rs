//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the narrow slice of `rand` 0.8 it actually uses:
//!
//! * [`RngCore`] / [`SeedableRng`] — the object-safe core traits;
//! * [`Rng`] — the ergonomic extension trait (`gen`, `gen_range`,
//!   `gen_bool`), blanket-implemented for every `RngCore`;
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, matching
//!   upstream `SmallRng` on 64-bit targets so the statistical behaviour of
//!   the sampling code is unchanged;
//! * [`thread_rng`] — a per-call convenience RNG seeded from wall-clock
//!   entropy (non-deterministic by design, like upstream).
//!
//! Integer ranges use Lemire's unbiased multiply-shift rejection method;
//! floats use the standard 53-bit mantissa-fill in `[0, 1)`.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the same
    /// expansion upstream `rand_core` uses, so seeds agree).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Scalar types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Lemire's unbiased bounded draw in `[0, span)` for `span >= 1`.
#[inline]
fn lemire_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                low + lemire_u64(rng, (high - low) as u64) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high - low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + lemire_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                low.wrapping_add(lemire_u64(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(lemire_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                // Rounding can land exactly on `high`; retry (the event has
                // vanishing probability), falling back to `low`.
                for _ in 0..8 {
                    let unit = <$t as StandardSample>::sample_standard(rng);
                    let v = low + (high - low) * unit;
                    if v < high {
                        return v;
                    }
                }
                low
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Ergonomic extension methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind upstream `SmallRng` on 64-bit
    /// targets. Fast, small state, excellent statistical quality; not
    /// cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point for xoshiro; perturb it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            SmallRng { s }
        }
    }
}

/// Convenience RNG seeded from wall-clock entropy. Unlike upstream this is
/// a fresh generator per call rather than a thread-local, which is
/// indistinguishable for the call sites in this workspace.
pub fn thread_rng() -> rngs::SmallRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xDEAD_BEEF);
    let stack_probe = &nanos as *const u64 as u64;
    SeedableRng::seed_from_u64(nanos ^ stack_probe.rotate_left(32) ^ std::process::id() as u64)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.gen_range(0..10u32);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 100_000.0;
            assert!((f - 0.1).abs() < 0.01, "bucket frequency {f}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(1..8);
            assert!((1..8).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn dyn_rng_core_usable_through_rng_trait() {
        let mut rng = SmallRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..100usize);
        assert!(v < 100);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn thread_rng_works() {
        let mut rng = super::thread_rng();
        let _ = rng.gen_range(0..10u32);
    }
}
