//! Targeted vs untargeted seeding for three ad campaigns.
//!
//! The scenario from the paper's introduction: an advertiser buys three
//! campaigns with different keyword profiles. Classic influence
//! maximization (RIS) returns the *same* celebrity seeds for all of them;
//! KB-TIM picks seeds per campaign and wins on targeted spread every time
//! (compare the paper's Table 8 discussion).
//!
//! Run with: `cargo run --release --example ad_campaign`

use kbtim::core::{ris::ris_query, SamplingConfig};
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{IndexBuildConfig, IndexBuilder, KbtimIndex};
use kbtim::propagation::model::IcModel;
use kbtim::propagation::spread::monte_carlo_targeted;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::Query;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // The news-like family: sparse, strongly community-structured — the
    // setting where the paper observed targeted seeding paying off most
    // clearly (§6.6).
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(8_000).num_topics(24).seed(99).build();
    let model = IcModel::weighted_cascade(&data.graph);
    println!(
        "dataset {}: {} users, {} edges (news-like, community-structured)",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges()
    );

    // Three campaigns with contrasting audiences: a head topic, a pair of
    // mid topics, and a tail-topic niche.
    let campaigns = [
        ("sportswear launch", Query::new([0, 1], 10)),
        ("indie game studio", Query::new([7, 9, 11], 10)),
        ("vintage vinyl shop", Query::new([20], 10)),
    ];

    // Offline: one IRR index serves every campaign.
    let sampling = SamplingConfig { theta_cap: Some(15_000), ..SamplingConfig::fast() };
    let dir = TempDir::new("kbtim-campaign").expect("temp dir");
    let config = IndexBuildConfig { sampling, ..IndexBuildConfig::default() };
    let report =
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).expect("build");
    println!(
        "index: {} RR sets across {} keywords, {:.1} KiB\n",
        report.total_theta,
        report.keywords.len(),
        report.total_bytes as f64 / 1024.0
    );
    let index = KbtimIndex::open(dir.path(), IoStats::new()).expect("open");

    // The untargeted baseline: same seeds for every campaign.
    let mut rng = SmallRng::seed_from_u64(5);
    let untargeted = ris_query(&model, 10, &sampling, &mut rng);
    println!("RIS (untargeted) seeds for ALL campaigns: {:?}\n", untargeted.seeds);

    println!(
        "{:<20} {:>12} {:>14} {:>14} {:>8}",
        "campaign", "latency", "targeted", "untargeted", "gain"
    );
    for (name, query) in &campaigns {
        let outcome = index.query_irr(query).expect("query");
        let mut rng = SmallRng::seed_from_u64(17);
        let targeted_spread =
            monte_carlo_targeted(&model, &data.profiles, query, &outcome.seeds, 5_000, &mut rng);
        let untargeted_spread =
            monte_carlo_targeted(&model, &data.profiles, query, &untargeted.seeds, 5_000, &mut rng);
        println!(
            "{:<20} {:>12} {:>14.2} {:>14.2} {:>7.1}%",
            name,
            format!("{:?}", outcome.stats.elapsed),
            targeted_spread,
            untargeted_spread,
            (targeted_spread / untargeted_spread - 1.0) * 100.0
        );
    }
    println!(
        "\n('targeted'/'untargeted' are Monte-Carlo estimates of the campaign-\n relevant spread E[I^Q(S)] for the KB-TIM seeds vs the RIS seeds.)"
    );
}
