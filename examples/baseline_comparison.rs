//! Why sampling won: WRIS vs the classic IM baselines (§7 of the paper).
//!
//! Compares four seed-selection strategies on the same targeted query:
//!
//! * CELF — the original Kempe-et-al. greedy with Monte-Carlo gains and
//!   lazy evaluation (quality gold standard, painfully many simulations);
//! * WRIS — the paper's weighted sampling (same guarantee, a fraction of
//!   the work);
//! * degree-discount and max-degree — fast heuristics without guarantees.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use kbtim::core::baselines::{celf_greedy, degree_discount, max_degree};
use kbtim::core::{wris::wris_query, SamplingConfig};
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::propagation::model::IcModel;
use kbtim::propagation::spread::monte_carlo_weighted_ci;
use kbtim::topics::Query;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(2_500)
        .num_topics(16)
        .seed(404)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);
    let query = Query::new([0, 2], 10);
    println!(
        "dataset {}: {} users, {} edges — query {:?}, k = {}\n",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges(),
        query.topics(),
        query.k()
    );

    let weight = |v: u32| data.profiles.phi(v, &query);
    let mut results: Vec<(&str, Vec<u32>, std::time::Duration)> = Vec::new();

    // CELF restricted to users relevant to the query (all candidates would
    // take minutes — exactly the paper's point).
    let candidates: Vec<u32> = (0..data.graph.num_nodes()).filter(|&v| weight(v) > 0.0).collect();
    println!("CELF candidate pool: {} relevant users", candidates.len());
    let mut rng = SmallRng::seed_from_u64(1);
    let t0 = Instant::now();
    let celf = celf_greedy(&model, &candidates, query.k(), 300, &mut rng, weight);
    results.push(("CELF(MC)", celf.seeds.clone(), t0.elapsed()));
    println!("CELF spread evaluations: {}", celf.evaluations);

    let config = SamplingConfig { theta_cap: Some(60_000), ..SamplingConfig::fast() };
    let mut rng = SmallRng::seed_from_u64(2);
    let t0 = Instant::now();
    let wris = wris_query(&model, &data.profiles, &query, &config, &mut rng);
    results.push(("WRIS", wris.seeds.clone(), t0.elapsed()));

    let t0 = Instant::now();
    let dd = degree_discount(&model, query.k(), 0.1);
    results.push(("deg-discount", dd.seeds.clone(), t0.elapsed()));

    let t0 = Instant::now();
    let md = max_degree(&model, query.k());
    results.push(("max-degree", md.seeds.clone(), t0.elapsed()));

    println!("\n{:<14} {:>12} {:>12} {:>22}", "method", "select time", "spread", "95% CI");
    let mut rng = SmallRng::seed_from_u64(3);
    for (name, seeds, elapsed) in &results {
        let est = monte_carlo_weighted_ci(&model, seeds, 20_000, &mut rng, weight);
        let (lo, hi) = est.ci95();
        println!(
            "{:<14} {:>12} {:>12.2} {:>22}",
            name,
            format!("{elapsed:.2?}"),
            est.mean,
            format!("[{lo:.2}, {hi:.2}]")
        );
    }
    println!(
        "\n(CELF and WRIS should tie within CI — both carry the (1-1/e-ε)\n guarantee — while CELF pays hundreds of Monte-Carlo evaluations;\n the heuristics are fastest and weakest on *targeted* spread.)"
    );
}
