//! Quickstart: the KB-TIM pipeline in ~60 lines.
//!
//! 1. Generate a small news-like social network with topic profiles.
//! 2. Answer an advertisement query online with WRIS (§3.2).
//! 3. Build the disk-based IRR index and answer the same query in
//!    real time (§4–§5).
//! 4. Verify both answers against Monte-Carlo ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use kbtim::core::{KbTimEngine, SamplingConfig};
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{IndexBuildConfig, IndexBuilder, KbtimIndex};
use kbtim::propagation::model::IcModel;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::Query;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A 3 000-user news-like network with 16 topics, deterministic seed.
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(3_000).num_topics(16).seed(7).build();
    println!(
        "dataset {}: {} users, {} edges (avg degree {:.1})",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges(),
        data.graph.avg_degree()
    );

    // An advertisement about topics {0, 3}, asking for 10 seed users.
    let query = Query::new([0, 3], 10);
    let config = SamplingConfig { theta_cap: Some(20_000), ..SamplingConfig::fast() };

    // --- Online path: WRIS sampling at query time. -----------------------
    let engine = KbTimEngine::new(&data.graph, &data.profiles, config);
    let mut rng = SmallRng::seed_from_u64(1);
    let started = Instant::now();
    let online = engine.wris(&query, &mut rng);
    let online_time = started.elapsed();
    println!(
        "\nWRIS (online):  seeds {:?}\n  θ = {}, estimated influence {:.2}, {:?}",
        online.seeds, online.theta, online.estimated_influence, online_time
    );

    // --- Real-time path: offline index, instant queries. -----------------
    let model = IcModel::weighted_cascade(&data.graph);
    let dir = TempDir::new("kbtim-quickstart").expect("temp dir");
    let build_config = IndexBuildConfig { sampling: config, ..IndexBuildConfig::default() };
    let report = IndexBuilder::new(&model, &data.profiles, build_config)
        .build(dir.path())
        .expect("index build");
    println!(
        "\nIRR index built offline: {} RR sets, {:.1} KiB, {:?}",
        report.total_theta,
        report.total_bytes as f64 / 1024.0,
        report.elapsed
    );

    let index = KbtimIndex::open(dir.path(), IoStats::new()).expect("open index");
    let irr = index.query_irr(&query).expect("irr query");
    println!(
        "IRR (real-time): seeds {:?}\n  loaded {} of {} RR sets in {:?} ({} reads, {} bytes)",
        irr.seeds,
        irr.stats.rr_sets_loaded,
        irr.stats.theta_q,
        irr.stats.elapsed,
        irr.stats.io.read_ops,
        irr.stats.io.bytes_read
    );

    // --- Ground truth: forward Monte-Carlo simulation. --------------------
    let mut rng = SmallRng::seed_from_u64(2);
    let mc_online = engine.targeted_spread(&online.seeds, &query, 10_000, &mut rng);
    let mc_irr = engine.targeted_spread(&irr.seeds, &query, 10_000, &mut rng);
    println!(
        "\nMonte-Carlo targeted spread:\n  WRIS seeds: {mc_online:.2}\n  IRR  seeds: {mc_irr:.2}"
    );
    println!(
        "  (index estimate was {:.2}; WRIS estimate was {:.2})",
        irr.estimated_influence, online.estimated_influence
    );
}
