//! IC vs LT propagation models, Table-8 style.
//!
//! §6.6 of the paper compares the top influencers found under the
//! independent cascade and linear threshold models for two keywords, plus
//! the untargeted RIS baseline (which cannot distinguish keywords at all).
//! This example reproduces that comparison on a synthetic twitter-like
//! graph: WRIS(IC) and WRIS(LT) return keyword-specific seeds, while RIS
//! returns one global celebrity list.
//!
//! Run with: `cargo run --release --example model_comparison`

use kbtim::core::{ris::ris_query, wris::wris_query, SamplingConfig};
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::propagation::model::{IcModel, LtModel};
use kbtim::propagation::TriggeringModel;
use kbtim::topics::Query;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn seeds_for<M: TriggeringModel>(
    model: &M,
    data: &kbtim::datagen::Dataset,
    topic: u32,
    sampling: &SamplingConfig,
) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(7);
    let query = Query::new([topic], 8);
    wris_query(model, &data.profiles, &query, sampling, &mut rng).seeds
}

fn main() {
    let data = DatasetConfig::family(DatasetFamily::Twitter)
        .num_users(5_000)
        .num_topics(24)
        .seed(2015)
        .build();
    println!(
        "dataset {}: {} users, {} edges\n",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges()
    );

    // Two "advertising" keywords standing in for the paper's
    // "software" / "journal": one head topic, one mid topic.
    let keywords = [("software", 1u32), ("journal", 8u32)];
    let sampling = SamplingConfig { theta_cap: Some(15_000), ..SamplingConfig::fast() };

    let ic = IcModel::weighted_cascade(&data.graph);
    let mut lt_rng = SmallRng::seed_from_u64(11);
    let lt = LtModel::random_weights(&data.graph, &mut lt_rng);

    println!("{:<12} {:<10} top-8 seeds", "method", "keyword");
    for (name, topic) in keywords {
        let ic_seeds = seeds_for(&ic, &data, topic, &sampling);
        println!("{:<12} {:<10} {:?}", "WRIS(IC)", name, ic_seeds);
        let lt_seeds = seeds_for(&lt, &data, topic, &sampling);
        println!("{:<12} {:<10} {:?}", "WRIS(LT)", name, lt_seeds);
    }

    // The untargeted baseline: keyword-independent by construction.
    let mut rng = SmallRng::seed_from_u64(3);
    let ris = ris_query(&ic, 8, &sampling, &mut rng);
    println!("{:<12} {:<10} {:?}", "RIS", "(any)", ris.seeds);

    // Quantify keyword-sensitivity: Jaccard overlap between the two
    // keywords' seed sets per method.
    let jaccard = |a: &[u32], b: &[u32]| -> f64 {
        let sa: std::collections::HashSet<_> = a.iter().collect();
        let sb: std::collections::HashSet<_> = b.iter().collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        if union == 0.0 {
            1.0
        } else {
            inter / union
        }
    };
    let ic_a = seeds_for(&ic, &data, keywords[0].1, &sampling);
    let ic_b = seeds_for(&ic, &data, keywords[1].1, &sampling);
    println!(
        "\nseed overlap between keywords — WRIS(IC): {:.2}, RIS: 1.00 by construction",
        jaccard(&ic_a, &ic_b)
    );
    println!("(low overlap = keyword-aware seeding, the point of KB-TIM)");
}
