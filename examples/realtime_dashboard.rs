//! Real-time serving simulation: latency percentiles under a query stream.
//!
//! The paper's headline claim is *interactive* performance: ~2 seconds per
//! 5-keyword advertisement on a billion-edge graph, two orders of
//! magnitude faster than online sampling. This example replays a workload
//! of generated advertisements against the RR and IRR query paths on one
//! index and prints a latency/IO dashboard.
//!
//! Run with: `cargo run --release --example realtime_dashboard`

use kbtim::core::SamplingConfig;
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{IndexBuildConfig, IndexBuilder, KbtimIndex, QueryOutcome};
use kbtim::propagation::model::IcModel;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::workload::QueryWorkloadConfig;
use kbtim::topics::Query;
use std::time::Duration;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run(label: &str, queries: &[Query], mut exec: impl FnMut(&Query) -> QueryOutcome) {
    let mut latencies = Vec::with_capacity(queries.len());
    let mut rr_loaded = 0u64;
    let mut reads = 0u64;
    let mut bytes = 0u64;
    for q in queries {
        let outcome = exec(q);
        latencies.push(outcome.stats.elapsed);
        rr_loaded += outcome.stats.rr_sets_loaded;
        reads += outcome.stats.io.read_ops;
        bytes += outcome.stats.io.bytes_read;
    }
    latencies.sort_unstable();
    let n = queries.len() as u64;
    println!(
        "{:<6} p50 {:>10?}  p95 {:>10?}  p99 {:>10?}  | avg RR loaded {:>8}  avg reads {:>5}  avg KiB {:>8.1}",
        label,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
        rr_loaded / n,
        reads / n,
        bytes as f64 / n as f64 / 1024.0,
    );
}

fn main() {
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(20_000)
        .num_topics(32)
        .seed(123)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);
    println!(
        "dataset {}: {} users, {} edges",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges()
    );

    let sampling = SamplingConfig { theta_cap: Some(20_000), ..SamplingConfig::fast() };
    let dir = TempDir::new("kbtim-dashboard").expect("temp dir");
    let config = IndexBuildConfig { sampling, ..IndexBuildConfig::default() };
    let report =
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).expect("build");
    println!(
        "index: {} RR sets, {:.1} MiB, built in {:?}\n",
        report.total_theta,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed
    );

    // 120 advertisements: lengths 1..=6, k = 30, Zipf keyword popularity.
    let queries = data.queries(QueryWorkloadConfig {
        min_keywords: 1,
        max_keywords: 6,
        queries_per_length: 20,
        k: 30,
        keyword_skew: 1.0,
    });
    println!("replaying {} advertisements (k = 30):", queries.len());

    let index = KbtimIndex::open(dir.path(), IoStats::new()).expect("open");
    run("RR", &queries, |q| index.query_rr(q).expect("rr"));
    run("IRR", &queries, |q| index.query_irr(q).expect("irr"));

    println!("\n(IRR loads only the partitions the top-k aggregation touches;\n RR always loads the full θ^Q prefix plus every inverted list.)");
}
