//! Concurrency gates for the serving runtime.
//!
//! The refactor's contract extends the serving-tier guarantees one more
//! axis: *how many client threads fire queries, and in what
//! interleaving, must be unobservable in the answers*. These tests pin
//! that down:
//!
//! 1. N threads firing interleaved rr / irr / memory queries against one
//!    shared `Arc<KbtimIndex>` produce answers bit-identical to the
//!    serial order, across all three serving backends (scratch blocks
//!    lease across threads; the persistent exec pool arbitrates or
//!    degrades inline — neither may leak into results);
//! 2. the [`QueryEngine`]'s request coalescing returns the same answer
//!    to every concurrent caller of one request, and its books balance;
//! 3. two indexes opened through one [`PageCache`] share a single
//!    resident copy of every keyword segment while their per-index
//!    [`IoStats`] stay separate;
//! 4. the cross-request **batch planner** returns answers bit-identical
//!    to serial single-query execution for any interleaving of
//!    overlapping-keyword requests, across all three serving backends —
//!    and its books prove the shared keyword decode actually happened
//!    (each distinct keyword decoded once per batch, not once per
//!    request);
//! 5. the **prepared-query cache** is unobservable in answers: with the
//!    cache enabled, every interleaving and every round (cold and hot)
//!    answers bit-identically to the uncached serial path, while the
//!    hit/miss/eviction books balance.

use kbtim::core::theta::SamplingConfig;
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{
    Algo, EngineRequest, IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, MemoryIndex,
    PageCache, QueryEngine, ServingMode, ThetaMode,
};
use kbtim::propagation::model::IcModel;
use kbtim::storage::block::all_modes;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::Query;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const NUM_TOPICS: u32 = 6;
const CLIENT_THREADS: usize = 4;

/// One IRR index on disk: a serial-oracle handle plus, per backend, a
/// shared handle (2 worker threads, so client concurrency also contends
/// the persistent exec pool) and a memory copy.
struct Fixture {
    _dir: TempDir,
    serial: KbtimIndex,
    shared: Vec<(ServingMode, Arc<KbtimIndex>, Arc<MemoryIndex>)>,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(500)
            .num_topics(NUM_TOPICS)
            .seed(117)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(1_500),
                opt_initial_samples: 64,
                opt_max_rounds: 5,
                ..SamplingConfig::fast()
            },
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 16 },
            threads: 4,
            seed: 29,
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("concurrent-equiv").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();

        let serial = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().with_threads(Some(1));
        let shared = all_modes()
            .into_iter()
            .map(|mode| {
                let index = Arc::new(
                    KbtimIndex::open_with(dir.path(), IoStats::new(), mode)
                        .unwrap()
                        .with_threads(Some(2)),
                );
                let memory = Arc::new(MemoryIndex::load(&index).unwrap());
                (mode, index, memory)
            })
            .collect();
        Fixture { _dir: dir, serial, shared }
    })
}

/// The bit-comparable face of an outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Answer {
    seeds: Vec<u32>,
    marginal_gains: Vec<u64>,
    coverage: u64,
    theta_q: u64,
}

impl Answer {
    fn of(outcome: &kbtim::index::QueryOutcome) -> Answer {
        Answer {
            seeds: outcome.seeds.clone(),
            marginal_gains: outcome.marginal_gains.clone(),
            coverage: outcome.coverage,
            theta_q: outcome.stats.theta_q,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]
    #[test]
    fn threads_and_interleavings_unobservable(
        raw_queries in proptest::collection::vec(
            (proptest::collection::vec(0u32..NUM_TOPICS, 1..4), 1u32..14),
            2..5,
        ),
    ) {
        let fx = fixture();
        let queries: Vec<Query> = raw_queries
            .into_iter()
            .map(|(mut topics, k)| {
                topics.sort_unstable();
                topics.dedup();
                Query::new(topics, k)
            })
            .collect();

        // Serial order on the oracle handle. Theorem 3 plus the memory
        // copy's bit-equality make one answer per query the reference
        // for all three algorithms.
        let serial: Vec<Answer> = queries
            .iter()
            .map(|q| {
                let rr = fx.serial.query_rr(q).unwrap();
                let irr = fx.serial.query_irr(q).unwrap();
                assert_eq!(rr.seeds, irr.seeds, "Theorem 3 on the oracle");
                Answer::of(&rr)
            })
            .collect();

        for (mode, index, memory) in &fx.shared {
            // CLIENT_THREADS threads, each walking every query at its
            // own rotation and algorithm mix — maximal interleaving of
            // rr/irr/memory against one shared index.
            std::thread::scope(|scope| {
                let joins: Vec<_> = (0..CLIENT_THREADS)
                    .map(|tid| {
                        let index = Arc::clone(index);
                        let memory = Arc::clone(memory);
                        let queries = &queries;
                        scope.spawn(move || {
                            let mut answers = Vec::new();
                            for round in 0..queries.len() {
                                let qi = (round + tid) % queries.len();
                                let q = &queries[qi];
                                let outcome = match (round + tid) % 3 {
                                    0 => index.query_rr(q).unwrap(),
                                    1 => index.query_irr(q).unwrap(),
                                    _ => memory.query(q),
                                };
                                answers.push((qi, Answer::of(&outcome)));
                            }
                            answers
                        })
                    })
                    .collect();
                for join in joins {
                    for (qi, answer) in join.join().expect("client thread panicked") {
                        assert_eq!(
                            answer, serial[qi],
                            "{mode}: concurrent answer for query {qi} diverged from serial"
                        );
                    }
                }
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]
    #[test]
    fn batched_overlapping_queries_match_serial(
        raw_requests in proptest::collection::vec(
            // Topic sets drawn from a narrow range so batches overlap
            // heavily — the regime the planner's shared decode targets.
            (proptest::collection::vec(0u32..NUM_TOPICS, 1..4), 1u32..14, 0usize..4),
            2..7,
        ),
    ) {
        let fx = fixture();
        let requests: Vec<EngineRequest> = raw_requests
            .into_iter()
            .map(|(mut topics, k, algo)| {
                topics.sort_unstable();
                topics.dedup();
                let algo = [Algo::Rr, Algo::Irr, Algo::Auto, Algo::Memory][algo];
                EngineRequest::new(topics, k).with_algo(algo)
            })
            .collect();

        for (mode, index, _) in &fx.shared {
            let engine = Arc::new(
                QueryEngine::with_memory(Arc::clone(index))
                    .unwrap()
                    .with_batch_window(Some(std::time::Duration::from_micros(300))),
            );
            // Serial oracle: the same engine's per-request path,
            // bypassing the planner entirely.
            let serial: Vec<Answer> =
                requests.iter().map(|r| Answer::of(&engine.execute(r).unwrap())).collect();

            // All requests fired at once through the planner; whatever
            // batches the window happens to admit, every answer must be
            // bit-identical to its serial oracle.
            let barrier = std::sync::Barrier::new(requests.len());
            std::thread::scope(|scope| {
                let joins: Vec<_> = requests
                    .iter()
                    .map(|req| {
                        let engine = Arc::clone(&engine);
                        let barrier = &barrier;
                        scope.spawn(move || {
                            barrier.wait();
                            engine.query(req).unwrap()
                        })
                    })
                    .collect();
                for (join, want) in joins.into_iter().zip(&serial) {
                    let got = Answer::of(&join.join().expect("batched client panicked"));
                    assert_eq!(&got, want, "{mode}: batched answer diverged from serial");
                }
            });
            // Books balance: every request either executed or joined a
            // duplicate within its batch.
            assert_eq!(engine.executed() + engine.coalesced(), requests.len() as u64);
            assert_eq!(engine.batched_requests(), requests.len() as u64);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]
    #[test]
    fn merge_cache_unobservable_in_answers(
        raw_requests in proptest::collection::vec(
            (proptest::collection::vec(0u32..NUM_TOPICS, 1..4), 1u32..14, 0usize..4),
            2..6,
        ),
    ) {
        let fx = fixture();
        let requests: Vec<EngineRequest> = raw_requests
            .into_iter()
            .enumerate()
            .map(|(i, (mut topics, k, algo))| {
                topics.sort_unstable();
                topics.dedup();
                // At least one disk request, so the cache sees traffic
                // (memory requests are decode-free and bypass it).
                let algo =
                    if i == 0 { Algo::Rr } else { [Algo::Rr, Algo::Irr, Algo::Auto, Algo::Memory][algo] };
                EngineRequest::new(topics, k).with_algo(algo)
            })
            .collect();

        for (mode, index, _) in &fx.shared {
            let engine = Arc::new(
                QueryEngine::with_memory(Arc::clone(index))
                    .unwrap()
                    .with_batch_window(Some(std::time::Duration::from_micros(300)))
                    .with_merge_cache(8),
            );
            // Serial oracle through the same engine's unbatched,
            // uncached per-request path.
            let serial: Vec<Answer> =
                requests.iter().map(|r| Answer::of(&engine.execute(r).unwrap())).collect();

            // Two concurrent rounds: round one populates the prepared-
            // query cache, round two re-presents every keyword set and
            // is served from it. Whatever batch splits the window
            // admits, every answer in both rounds must be bit-identical
            // to the serial oracle.
            for round in 0..2 {
                let barrier = std::sync::Barrier::new(requests.len());
                std::thread::scope(|scope| {
                    let joins: Vec<_> = requests
                        .iter()
                        .map(|req| {
                            let engine = Arc::clone(&engine);
                            let barrier = &barrier;
                            scope.spawn(move || {
                                barrier.wait();
                                engine.query(req).unwrap()
                            })
                        })
                        .collect();
                    for (join, want) in joins.into_iter().zip(&serial) {
                        let got = Answer::of(&join.join().expect("cached client panicked"));
                        assert_eq!(
                            &got, want,
                            "{mode}: round {round} answer diverged from uncached serial"
                        );
                    }
                });
            }
            // Round two's keyword sets were all resident (capacity 8 >
            // distinct sets, so nothing evicted): the cache must have
            // served at least one group, and its books must balance.
            prop_assert!(engine.merge_cache_hits() > 0, "{mode}: no cache hit in round two");
            prop_assert_eq!(engine.merge_cache_evictions(), 0);
            prop_assert!(engine.merge_cache_len() <= 8);
            prop_assert!(engine.merge_cache_bytes() > 0);
        }
    }
}

#[test]
fn batch_planner_decodes_shared_keywords_once() {
    let fx = fixture();
    let (_, index, _) = &fx.shared[0];
    let engine = Arc::new(
        QueryEngine::new(Arc::clone(index))
            .with_batch_window(Some(std::time::Duration::from_millis(250))),
    );
    // Eight *distinct* requests (different k / algo) over the same two
    // keywords: identical-request coalescing can never fire, so any
    // sharing the books report comes from the planner's keyword arena.
    let requests: Vec<EngineRequest> = (0..8)
        .map(|i| {
            EngineRequest::new([0, 1], 2 + i as u32).with_algo(if i % 2 == 0 {
                Algo::Rr
            } else {
                Algo::Irr
            })
        })
        .collect();
    let serial: Vec<Answer> =
        requests.iter().map(|r| Answer::of(&engine.execute(r).unwrap())).collect();

    // Deterministically assemble one batch: hold admission so every
    // client enqueues as a follower, then release and let a final
    // request lead the whole accumulated batch. (A plain barrier race
    // can serialize on a single-CPU host — under the adaptive window
    // each solo leader drains immediately, leaving nothing shared.)
    engine.hold_admission(true);
    std::thread::scope(|scope| {
        let joins: Vec<_> = requests
            .iter()
            .map(|req| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || engine.query(req).unwrap())
            })
            .collect();
        while engine.pending_admission() < requests.len() {
            std::thread::yield_now();
        }
        engine.hold_admission(false);
        let extra = engine.query(&requests[0]).unwrap();
        assert_eq!(Answer::of(&extra), serial[0]);
        for (join, want) in joins.into_iter().zip(&serial) {
            assert_eq!(&Answer::of(&join.join().unwrap()), want);
        }
    });

    // The accounting contract: 8 distinct requests (the trailing leader
    // coalesces with requests[0] in-batch) × 2 budgeted keywords = 16
    // keyword decodes requested, but each batch decoded each distinct
    // keyword once — everything else is shared. (The admission hold
    // makes one batch certain; the invariants below would hold for any
    // batch split.)
    assert_eq!(engine.batched_requests(), requests.len() as u64 + 1);
    assert_eq!(engine.executed(), requests.len() as u64, "all distinct requests execute");
    assert_eq!(engine.coalesced(), 1, "the trailing leader joins its in-batch duplicate");
    let decoded = engine.keywords_decoded();
    let shared = engine.keyword_decodes_shared();
    assert_eq!(decoded + shared, 16, "requested keyword decodes are either performed or shared");
    assert_eq!(decoded, engine.batches() * 2, "each batch decodes each distinct keyword once");
    assert!(
        shared > 0,
        "concurrent overlapping requests must share decodes ({} batches)",
        engine.batches()
    );
}

#[test]
fn engine_coalesces_concurrent_identical_requests() {
    let fx = fixture();
    let (_, index, _) = &fx.shared[0];
    let engine = Arc::new(QueryEngine::with_memory(Arc::clone(index)).unwrap());
    let serial = Answer::of(&fx.serial.query_rr(&Query::new([0, 1], 8)).unwrap());

    let issued: usize = 12;
    let barrier = std::sync::Barrier::new(issued);
    std::thread::scope(|scope| {
        let joins: Vec<_> = (0..issued)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    // Mix algorithms: identical requests may coalesce,
                    // different ones must not block each other.
                    let algo = if i % 2 == 0 { Algo::Rr } else { Algo::Memory };
                    engine.query(&EngineRequest::new([0, 1], 8).with_algo(algo)).unwrap()
                })
            })
            .collect();
        for join in joins {
            assert_eq!(Answer::of(&join.join().unwrap()), serial);
        }
    });
    assert_eq!(
        engine.executed() + engine.coalesced(),
        issued as u64,
        "every request is either executed or coalesced"
    );
}

#[test]
fn page_cache_dedupes_across_whole_indexes() {
    let fx = fixture();
    let dir = fx._dir.path();
    let cache = PageCache::new();
    let stats_a = IoStats::new();
    let stats_b = IoStats::new();
    let a = KbtimIndex::open_shared(dir, stats_a.clone(), ServingMode::Resident, &cache).unwrap();
    let b = KbtimIndex::open_shared(dir, stats_b.clone(), ServingMode::Resident, &cache).unwrap();

    // Two open indexes, one resident copy of every keyword segment.
    assert_eq!(a.resident_bytes(), b.resident_bytes());
    assert_eq!(
        cache.resident_bytes(),
        a.resident_bytes(),
        "the cache holds one copy, not one per index"
    );
    assert!(cache.segments() > 0);

    // Queries agree with the serial oracle, and each handle's stats
    // count only its own traffic.
    let q = Query::new([0, 1, 2], 6);
    let want = Answer::of(&fx.serial.query_rr(&q).unwrap());
    assert_eq!(Answer::of(&a.query_rr(&q).unwrap()), want);
    assert!(stats_a.cache_hits() > 0);
    assert_eq!(stats_b.cache_hits(), 0, "B idle: shared pages must not blur B's stats");
    assert_eq!(Answer::of(&b.query_irr(&q).unwrap()), want);
    assert!(stats_b.cache_hits() > 0);

    // Dropping both handles releases the pages; the cache pins nothing.
    drop((a, b));
    assert_eq!(cache.segments(), 0);
    assert_eq!(cache.resident_bytes(), 0);
}

#[test]
fn shared_index_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KbtimIndex>();
    assert_send_sync::<MemoryIndex>();
    assert_send_sync::<QueryEngine>();
    assert_send_sync::<Arc<KbtimIndex>>();
}
