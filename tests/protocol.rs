//! Wire-protocol robustness: the JSON subset parser must never panic
//! on any byte sequence, nesting is depth-capped (a hostile `[[[[…`
//! line must fail as a parse error, not a stack overflow), oversized
//! request lines are shed and resynced by the bounded reader, and the
//! new admission/deadline request plumbing parses as documented.

use kbtim::serve::{read_bounded_line, FramedLine, Json, LineFramer, LineRead, ServeRequest};
use proptest::prelude::*;
use std::io::BufReader;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Arbitrary bytes (as lossy UTF-8) through the full request parser:
    /// any outcome is fine, panicking is not.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&line);
        let _ = ServeRequest::parse(&line);
    }

    /// Arbitrary *almost-JSON* — mutated well-formed requests — through
    /// the parser: the adversarial neighborhood of real traffic.
    #[test]
    fn parser_never_panics_near_valid_requests(
        topics in proptest::collection::vec(0u32..100, 0..4),
        k in 0u32..20,
        flip in any::<proptest::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut line =
            format!("{{\"topics\":{topics:?},\"k\":{k},\"deadline_ms\":5}}").into_bytes();
        let at = flip.index(line.len());
        line[at] = byte;
        let line = String::from_utf8_lossy(&line).into_owned();
        let _ = ServeRequest::parse(&line);
    }
}

#[test]
fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
    // Far deeper than any stack could take recursively at one frame
    // per byte; the depth cap must reject it gracefully.
    for open in ["[", "{\"a\":["] {
        let hostile = open.repeat(200_000);
        let err = Json::parse(&hostile).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
    }
    // The cap leaves all realistic protocol nesting untouched.
    let fine = format!("{}1{}", "[".repeat(60), "]".repeat(60));
    assert!(Json::parse(&fine).is_ok());
}

#[test]
fn deadline_ms_field_parses_and_validates() {
    let req = ServeRequest::parse(r#"{"topics":[1],"deadline_ms":250}"#).unwrap();
    assert_eq!(req.deadline_ms, Some(250));
    let req = ServeRequest::parse(r#"{"topics":[1]}"#).unwrap();
    assert_eq!(req.deadline_ms, None);
    // Zero is legal (deterministically expired), negatives and
    // non-numbers are not.
    assert_eq!(
        ServeRequest::parse(r#"{"topics":[1],"deadline_ms":0}"#).unwrap().deadline_ms,
        Some(0)
    );
    for bad in [
        r#"{"topics":[1],"deadline_ms":-5}"#,
        r#"{"topics":[1],"deadline_ms":1.5}"#,
        r#"{"topics":[1],"deadline_ms":"fast"}"#,
    ] {
        assert_eq!(ServeRequest::parse(bad).unwrap_err().code, "bad_request", "{bad}");
    }
}

#[test]
fn bounded_reader_sheds_oversized_lines_and_resyncs() {
    let giant = "x".repeat(300);
    let input = format!("short line\n{giant}\nafter\nnine char\nnine char\n");
    let mut reader = BufReader::with_capacity(16, input.as_bytes());

    assert_eq!(read_bounded_line(&mut reader, 100).unwrap(), LineRead::Line("short line".into()));
    // The 300-byte line exceeds the cap: shed, stream resynced at the
    // next newline — the following request is intact.
    assert_eq!(read_bounded_line(&mut reader, 100).unwrap(), LineRead::TooLong);
    assert_eq!(read_bounded_line(&mut reader, 100).unwrap(), LineRead::Line("after".into()));
    // A line of exactly the cap is allowed (the cap is inclusive), one
    // byte over is not.
    assert_eq!(read_bounded_line(&mut reader, 9).unwrap(), LineRead::Line("nine char".into()));
    assert_eq!(read_bounded_line(&mut reader, 8).unwrap(), LineRead::TooLong);
    assert_eq!(read_bounded_line(&mut reader, 100).unwrap(), LineRead::Eof);

    // CRLF is stripped; a final unterminated line still arrives.
    let mut reader = BufReader::new("a\r\ntail".as_bytes());
    assert_eq!(read_bounded_line(&mut reader, 100).unwrap(), LineRead::Line("a".into()));
    assert_eq!(read_bounded_line(&mut reader, 100).unwrap(), LineRead::Line("tail".into()));
    assert_eq!(read_bounded_line(&mut reader, 100).unwrap(), LineRead::Eof);

    // An oversized *unterminated* trailing chunk is also shed, without
    // ever buffering more than the cap.
    let mut reader = BufReader::with_capacity(16, "yyyyyyyyyyyyyyyyyyyyyyyy".as_bytes());
    assert_eq!(read_bounded_line(&mut reader, 8).unwrap(), LineRead::TooLong);
    assert_eq!(read_bounded_line(&mut reader, 8).unwrap(), LineRead::Eof);
}

proptest! {
    /// The bounded reader agrees with `str::lines` whenever every line
    /// fits the cap, for arbitrary chunking (tiny BufReader capacity).
    #[test]
    fn bounded_reader_matches_lines_under_the_cap(
        lines in proptest::collection::vec("[a-z]{0,40}", 0..8),
    ) {
        let input = lines.iter().map(|l| format!("{l}\n")).collect::<String>();
        let mut reader = BufReader::with_capacity(4, input.as_bytes());
        for want in &lines {
            assert_eq!(
                read_bounded_line(&mut reader, 64).unwrap(),
                LineRead::Line(want.clone()),
            );
        }
        assert_eq!(read_bounded_line(&mut reader, 64).unwrap(), LineRead::Eof);
    }

    /// The incremental framer (epoll front end) and the blocking
    /// bounded reader (stdin / threads front ends) implement one
    /// semantics: identical lines, identical `TooLong` sheds, identical
    /// resync — for arbitrary byte streams (newlines, CRLF, invalid
    /// UTF-8, oversized runs) under arbitrary tearing into chunks.
    #[test]
    fn framer_is_equivalent_to_the_bounded_reader(
        raw in proptest::collection::vec(any::<u8>(), 0..200),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..8),
        cap in 1usize..32,
    ) {
        // Skew toward newlines, CR and invalid UTF-8 — uniform bytes
        // would almost never produce a line boundary or an exact-cap
        // line.
        const ALPHABET: &[u8] = b"aaaabbbb\n\n\n\r\r\xff{\x00";
        let bytes: Vec<u8> = raw.iter().map(|&b| ALPHABET[b as usize % ALPHABET.len()]).collect();
        // Reader side: pull lines until EOF (tiny capacity exercises
        // its own internal chunking independently of ours).
        let mut reader = BufReader::with_capacity(3, &bytes[..]);
        let mut from_reader = Vec::new();
        loop {
            match read_bounded_line(&mut reader, cap).unwrap() {
                LineRead::Eof => break,
                LineRead::Line(line) => from_reader.push(FramedLine::Line(line)),
                LineRead::TooLong => from_reader.push(FramedLine::TooLong),
            }
        }

        // Framer side: the same bytes torn at arbitrary boundaries.
        let mut at: Vec<usize> = cuts.iter().map(|c| c.index(bytes.len() + 1)).collect();
        at.sort_unstable();
        at.dedup();
        let mut framer = LineFramer::new(cap);
        let mut from_framer = Vec::new();
        let mut prev = 0;
        for cut in at.into_iter().chain(std::iter::once(bytes.len())) {
            framer.push(&bytes[prev..cut], &mut from_framer);
            prev = cut;
        }
        if let Some(last) = framer.finish() {
            from_framer.push(last);
        }

        prop_assert_eq!(from_reader, from_framer);
    }
}
