//! Generation-equivalence gates for the mutable delta tier.
//!
//! The tier's whole contract is one sentence: **queries at a fixed
//! generation are bit-identical to a from-scratch flat build of the
//! same logical content.** These tests enforce it three ways:
//!
//! 1. the differential proptest — random mutation batches folded into
//!    an attached delta tier answer every query (rr / irr / auto /
//!    memory, every `ServingMode`, 1 and 2 threads, flat and sharded
//!    bases) with exactly the bytes a from-scratch flat build of the
//!    mutated dataset produces, before *and* after compaction, and a
//!    journal replay on a fresh attach reproduces the same state;
//! 2. the flush/compaction chaos extension — with `flush.build` /
//!    `flush.verify` / `flush.commit` / transient `storage.read`
//!    failpoints armed, a failed flush leaves the published snapshot,
//!    the `CURRENT` pointer, and every query byte untouched, and a
//!    later retry compacts cleanly;
//! 3. the writers-vs-readers proptest — a reader pinned to a
//!    generation keeps getting bit-identical answers while a writer
//!    thread applies batches underneath it.
//!
//! f64s are compared via `.to_bits()` throughout: equivalence here
//! means *equality of bytes*, not approximation.

use kbtim::core::theta::SamplingConfig;
use kbtim::datagen::{Dataset, DatasetConfig, DatasetFamily};
use kbtim::graph::{Graph, NodeId};
use kbtim::index::{
    Algo, DeltaIndex, EngineRequest, IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex,
    Mutation, QueryEngine, QueryOutcome, ThetaMode,
};
use kbtim::propagation::model::IcModel;
use kbtim::storage::block::all_modes;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::{Query, TopicId, UserProfiles};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

const USERS: u32 = 220;
const TOPICS: u32 = 5;

fn base_data() -> &'static Dataset {
    static DATA: OnceLock<Dataset> = OnceLock::new();
    DATA.get_or_init(|| {
        DatasetConfig::family(DatasetFamily::News)
            .num_users(USERS)
            .num_topics(TOPICS)
            .seed(17)
            .build()
    })
}

fn config(shards: usize) -> IndexBuildConfig {
    IndexBuildConfig {
        sampling: SamplingConfig {
            eps: 0.3,
            theta_cap: Some(400),
            opt_initial_samples: 32,
            opt_max_rounds: 3,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 16 },
        threads: 2,
        seed: 7,
        shards,
        ..IndexBuildConfig::default()
    }
}

fn build_into(
    graph: &Graph,
    profiles: &UserProfiles,
    cfg: IndexBuildConfig,
    dir: &std::path::Path,
) {
    let model = IcModel::weighted_cascade(graph);
    IndexBuilder::new(&model, profiles, cfg).build(dir).unwrap();
}

/// Fold a mutation batch into the base dataset the same way the delta
/// tier defines it: users append to the universe, edges append to the
/// edge list (`Graph::from_edges` dedups), a topic weight overwrites
/// the profile entry and weight 0 removes it.
fn fold(data: &Dataset, mutations: &[Mutation]) -> (Graph, UserProfiles) {
    let mut num_users = data.profiles.num_users();
    let mut edges: Vec<(NodeId, NodeId)> = data.graph.edges().collect();
    let mut entries: BTreeMap<(NodeId, TopicId), f32> = BTreeMap::new();
    for user in 0..num_users {
        let (topics, tfs) = data.profiles.user_vector(user);
        for (&topic, &tf) in topics.iter().zip(tfs) {
            entries.insert((user, topic), tf);
        }
    }
    for m in mutations {
        match *m {
            Mutation::IngestUser => num_users += 1,
            Mutation::IngestEdge { from, to } => edges.push((from, to)),
            Mutation::SetTopicWeight { user, topic, weight } => {
                if weight == 0.0 {
                    entries.remove(&(user, topic));
                } else {
                    entries.insert((user, topic), weight);
                }
            }
        }
    }
    let graph = Graph::from_edges(num_users, &edges);
    let flat: Vec<(NodeId, TopicId, f32)> =
        entries.iter().map(|(&(u, t), &tf)| (u, t, tf)).collect();
    let profiles = UserProfiles::from_entries(num_users, data.profiles.num_topics(), &flat);
    (graph, profiles)
}

/// An abstract mutation: indices are drawn over the full `u32` range
/// and reduced modulo the *evolving* universe at concretization, so
/// every generated batch is valid by construction (including edges to
/// users ingested earlier in the same batch).
#[derive(Debug, Clone, Copy)]
enum Spec {
    User,
    Edge(u32, u32),
    Weight(u32, u32, u8),
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    prop_oneof![
        Just(Spec::User),
        (any::<u32>(), any::<u32>()).prop_map(|(a, b)| Spec::Edge(a, b)),
        (any::<u32>(), any::<u32>(), 0u8..=40).prop_map(|(u, t, w)| Spec::Weight(u, t, w)),
    ]
}

fn concretize(specs: &[Spec], base_users: u32, topics: u32) -> Vec<Mutation> {
    let mut users = base_users;
    specs
        .iter()
        .map(|s| match *s {
            Spec::User => {
                users += 1;
                Mutation::IngestUser
            }
            Spec::Edge(a, b) => Mutation::IngestEdge { from: a % users, to: b % users },
            Spec::Weight(u, t, w) => Mutation::SetTopicWeight {
                user: u % users,
                topic: t % topics,
                // A small grid including 0.0, the removal sentinel.
                weight: w as f32 / 20.0,
            },
        })
        .collect()
}

fn assert_bit_identical(got: &QueryOutcome, want: &QueryOutcome, label: &str) {
    assert_eq!(got.seeds, want.seeds, "{label}: seeds");
    assert_eq!(got.marginal_gains, want.marginal_gains, "{label}: marginal gains");
    assert_eq!(got.coverage, want.coverage, "{label}: coverage");
    assert_eq!(
        got.estimated_influence.to_bits(),
        want.estimated_influence.to_bits(),
        "{label}: estimated influence"
    );
    assert_eq!(got.stats.theta_q, want.stats.theta_q, "{label}: theta_q");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The headline differential gate: any mutation batch, queried at a
    /// fixed generation through any backend × thread count × algo over a
    /// flat or sharded base, answers with exactly the bytes a from-scratch
    /// flat build of the same logical content produces — and compaction
    /// into the next segment generation changes none of them.
    #[test]
    fn any_mutation_batch_is_generation_equivalent(
        specs in proptest::collection::vec(spec_strategy(), 0..10),
        raw_topics in proptest::collection::vec(0u32..TOPICS, 1..4),
        k in 1u32..10,
        shards in prop_oneof![Just(1usize), Just(3usize)],
    ) {
        let data = base_data();
        let muts = concretize(&specs, data.profiles.num_users(), TOPICS);
        let mut topics = raw_topics;
        topics.sort_unstable();
        topics.dedup();
        let query = Query::new(topics.clone(), k);

        // Oracle: a from-scratch *flat* build of the folded content.
        let oracle_dir = TempDir::new("delta-equiv-oracle").unwrap();
        let (folded_graph, folded_profiles) = fold(data, &muts);
        build_into(&folded_graph, &folded_profiles, config(1), oracle_dir.path());
        let oracle = KbtimIndex::open(oracle_dir.path(), IoStats::new()).unwrap();
        let expect = oracle.query_rr(&query).unwrap();
        prop_assert_eq!(&oracle.query_irr(&query).unwrap().seeds, &expect.seeds);

        // Subject: the base build with the batch applied to its delta
        // tier. The first attach journals the batch; every later attach
        // (other backends and thread counts) replays that journal, so
        // the matrix doubles as a recovery test.
        let root = TempDir::new("delta-equiv-base").unwrap();
        build_into(&data.graph, &data.profiles, config(shards), root.path());
        let mut first = true;
        for mode in all_modes() {
            for threads in [1usize, 2] {
                let index = Arc::new(
                    KbtimIndex::open_with(root.path(), IoStats::new(), mode)
                        .unwrap()
                        .with_threads(Some(threads)),
                );
                let delta = Arc::new(
                    DeltaIndex::attach(
                        Arc::clone(&index),
                        &data.graph,
                        &data.profiles,
                        config(shards),
                    )
                    .unwrap(),
                );
                if first {
                    delta.apply(&muts).unwrap();
                    first = false;
                } else {
                    prop_assert_eq!(delta.unflushed(), muts.len() as u64, "journal replay");
                }
                let engine = QueryEngine::new(Arc::clone(&index)).with_delta(Arc::clone(&delta));
                for algo in [Algo::Rr, Algo::Irr, Algo::Auto, Algo::Memory] {
                    let got = engine
                        .query(&EngineRequest { topics: topics.clone(), k, algo })
                        .unwrap();
                    assert_bit_identical(&got, &expect, &format!("{mode} t{threads} {algo:?}"));
                }
            }
        }

        // Compact: the flushed generation serves the same bytes, both
        // through the still-attached engine and through a fresh open of
        // the root (which must resolve the new generation).
        let index = Arc::new(KbtimIndex::open(root.path(), IoStats::new()).unwrap());
        let base_gen = index.generation();
        let delta = Arc::new(
            DeltaIndex::attach(Arc::clone(&index), &data.graph, &data.profiles, config(shards))
                .unwrap(),
        );
        let engine = QueryEngine::new(Arc::clone(&index)).with_delta(Arc::clone(&delta));
        if muts.is_empty() {
            prop_assert_eq!(delta.flush().unwrap(), base_gen, "empty tier: flush is a no-op");
        } else {
            prop_assert_eq!(delta.flush().unwrap(), base_gen + 1);
        }
        for algo in [Algo::Rr, Algo::Irr, Algo::Auto, Algo::Memory] {
            let got = engine.query(&EngineRequest { topics: topics.clone(), k, algo }).unwrap();
            assert_bit_identical(&got, &expect, &format!("post-flush {algo:?}"));
        }
        let reopened = KbtimIndex::open(root.path(), IoStats::new()).unwrap();
        if !muts.is_empty() {
            prop_assert_eq!(reopened.generation(), base_gen + 1);
        }
        assert_bit_identical(&reopened.query_rr(&query).unwrap(), &expect, "fresh open");
    }
}

/// Serializes failpoint-arming tests (the registry is process-global).
static GATE: Mutex<()> = Mutex::new(());

fn armed_section() -> MutexGuard<'static, ()> {
    let guard = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    kbtim_fault::reset();
    kbtim_fault::set_seed(42);
    guard
}

/// Chaos extension: flush failpoints at every stage (and a transient
/// storage-read burst mid-compaction) never tear a generation — the
/// published snapshot, the on-disk generation pointer, and every query
/// byte stay exactly where they were, and a later flush retries
/// cleanly from scratch.
#[test]
fn failed_flushes_never_tear_a_generation() {
    let _gate = armed_section();
    let data = base_data();
    let muts = [
        Mutation::IngestUser,
        Mutation::IngestEdge { from: USERS, to: 3 },
        Mutation::SetTopicWeight { user: USERS, topic: 1, weight: 0.6 },
        Mutation::SetTopicWeight { user: 4, topic: 2, weight: 0.0 },
    ];
    let query = Query::new(vec![1, 2], 6);

    let root = TempDir::new("delta-chaos").unwrap();
    build_into(&data.graph, &data.profiles, config(1), root.path());
    let index = Arc::new(KbtimIndex::open(root.path(), IoStats::new()).unwrap());
    let delta =
        DeltaIndex::attach(Arc::clone(&index), &data.graph, &data.profiles, config(1)).unwrap();
    delta.apply(&muts).unwrap();
    let before = delta.snapshot().query(&query).unwrap();
    let generation = delta.generation();

    // Deterministic failures at each flush stage: nothing moves.
    for point in ["flush.build", "flush.verify", "flush.commit"] {
        kbtim_fault::arm(point, "err").unwrap();
        assert!(delta.flush().is_err(), "{point} must surface");
        kbtim_fault::disarm(point);
        assert_eq!(delta.generation(), generation, "{point}: snapshot untouched");
        assert_eq!(delta.unflushed(), muts.len() as u64, "{point}: journal untouched");
        assert_eq!(
            KbtimIndex::open(root.path(), IoStats::new()).unwrap().generation(),
            0,
            "{point}: CURRENT untouched"
        );
        assert_bit_identical(
            &delta.snapshot().query(&query).unwrap(),
            &before,
            &format!("{point}: queries unchanged"),
        );
    }

    // A probabilistic storm over the whole flush family: keep retrying
    // until one attempt gets through; every failed attempt leaves the
    // tier answering identically.
    kbtim_fault::arm("flush.*", "60%err").unwrap();
    let mut attempts = 0;
    loop {
        match delta.flush() {
            Ok(flushed) => {
                assert_eq!(flushed, 1);
                break;
            }
            Err(_) => {
                assert_bit_identical(
                    &delta.snapshot().query(&query).unwrap(),
                    &before,
                    "mid-storm query",
                );
            }
        }
        attempts += 1;
        assert!(attempts < 200, "the storm never let a flush through");
    }
    kbtim_fault::disarm("flush.*");
    assert_eq!(delta.unflushed(), 0);
    assert_bit_identical(&delta.snapshot().query(&query).unwrap(), &before, "post-storm");

    // A transient read burst *during* compaction is masked by the
    // storage retry budget: the next flush (of a fresh batch) succeeds
    // on the first call.
    delta.apply(&[Mutation::SetTopicWeight { user: 9, topic: 1, weight: 0.9 }]).unwrap();
    kbtim_fault::arm("storage.read", "2*err").unwrap();
    assert_eq!(delta.flush().unwrap(), 2, "transient reads are retried, not surfaced");
    kbtim_fault::disarm("storage.read");
    assert_eq!(KbtimIndex::open(root.path(), IoStats::new()).unwrap().generation(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Writers-vs-readers: a reader pinned to a generation keeps getting
    /// bit-identical bytes no matter how many batches a concurrent writer
    /// applies; the writer's batches all land (generation advances once
    /// per batch) and the *new* snapshot reflects them.
    #[test]
    fn pinned_readers_never_see_inflight_writes(
        batches in proptest::collection::vec(
            proptest::collection::vec(spec_strategy(), 1..4), 1..5),
    ) {
        let data = base_data();
        let root = TempDir::new("delta-rw").unwrap();
        build_into(&data.graph, &data.profiles, config(1), root.path());
        let index = Arc::new(KbtimIndex::open(root.path(), IoStats::new()).unwrap());
        let delta = Arc::new(
            DeltaIndex::attach(Arc::clone(&index), &data.graph, &data.profiles, config(1))
                .unwrap(),
        );
        let query = Query::new(vec![0, 2], 6);

        // Pin the pre-write generation.
        let pinned = delta.snapshot();
        let before = pinned.query(&query).unwrap();
        let pinned_gen = pinned.generation();

        // Writer thread: apply every batch. Each batch is concretized
        // against the universe as it stands when the batch lands, so
        // it is valid regardless of interleaving.
        let writer = {
            let delta = Arc::clone(&delta);
            let batches = batches.clone();
            std::thread::spawn(move || {
                for specs in &batches {
                    let users = delta.stats().num_users;
                    let muts = concretize(specs, users, TOPICS);
                    delta.apply(&muts).unwrap();
                }
            })
        };

        // Reader: hammer the pinned snapshot while the writer runs.
        while !writer.is_finished() {
            assert_bit_identical(&pinned.query(&query).unwrap(), &before, "pinned mid-write");
        }
        writer.join().unwrap();

        // Every batch landed: one generation tick per apply, and the
        // pinned view *still* answers identically.
        prop_assert_eq!(delta.generation(), pinned_gen + batches.len() as u64);
        assert_bit_identical(&pinned.query(&query).unwrap(), &before, "pinned post-write");

        // The fresh snapshot serves the union — equivalently to a
        // from-scratch build of the final logical content.
        let final_muts: Vec<Mutation> = {
            // Re-derive the full mutation sequence the writer applied.
            let mut users = data.profiles.num_users();
            let mut all = Vec::new();
            for specs in &batches {
                let muts = concretize(specs, users, TOPICS);
                users += muts.iter().filter(|m| matches!(m, Mutation::IngestUser)).count() as u32;
                all.extend(muts);
            }
            all
        };
        let oracle_dir = TempDir::new("delta-rw-oracle").unwrap();
        let (graph, profiles) = fold(data, &final_muts);
        build_into(&graph, &profiles, config(1), oracle_dir.path());
        let oracle = KbtimIndex::open(oracle_dir.path(), IoStats::new()).unwrap();
        assert_bit_identical(
            &delta.snapshot().query(&query).unwrap(),
            &oracle.query_rr(&query).unwrap(),
            "fresh snapshot vs from-scratch",
        );
    }
}
