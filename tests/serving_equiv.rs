//! Serving-tier equivalence gates for the zero-copy `BlockSource` path.
//!
//! The refactor's contract is absolute: which backend serves the bytes
//! (positioned file reads, the resident page arena, or an mmap mapping)
//! and how many worker threads decode them must be *unobservable* in
//! query answers. These property tests pin that down:
//!
//! 1. `query_rr` / `query_irr` seeds, marginal gains, coverage and θ^Q
//!    are bit-identical across every `ServingMode` × thread count, and
//!    across repeated queries on one index (scratch-pool reuse must not
//!    leak state between queries);
//! 2. a flipped payload byte is rejected by CRC on every backend,
//!    including the zero-copy ones that verify lazily on first access;
//! 3. zero-copy backends report their accesses as `cache_hits` /
//!    `bytes_served`, never as silent zero-I/O queries.

use kbtim::core::theta::SamplingConfig;
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, MemoryIndex, ServingMode, ThetaMode,
};
use kbtim::propagation::model::IcModel;
use kbtim::storage::block::all_modes;
use kbtim::storage::segment::SegmentWriter;
use kbtim::storage::{BlockSource, IoStats, TempDir};
use kbtim::topics::Query;
use proptest::prelude::*;
use std::sync::OnceLock;

const NUM_TOPICS: u32 = 6;

/// One IRR index on disk, opened through every backend × thread count,
/// plus a `MemoryIndex` loaded through each backend.
struct Fixture {
    _dir: TempDir,
    indexes: Vec<(ServingMode, usize, KbtimIndex)>,
    memories: Vec<(ServingMode, MemoryIndex)>,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(500)
            .num_topics(NUM_TOPICS)
            .seed(77)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(1_500),
                opt_initial_samples: 64,
                opt_max_rounds: 5,
                ..SamplingConfig::fast()
            },
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 16 },
            threads: 4,
            seed: 13,
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("serving-equiv").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();

        let mut indexes = Vec::new();
        let mut memories = Vec::new();
        for mode in all_modes() {
            for threads in [1usize, 8] {
                let index = KbtimIndex::open_with(dir.path(), IoStats::new(), mode)
                    .unwrap()
                    .with_threads(Some(threads));
                indexes.push((mode, threads, index));
            }
            let via = KbtimIndex::open_with(dir.path(), IoStats::new(), mode).unwrap();
            memories.push((mode, MemoryIndex::load(&via).unwrap()));
        }
        Fixture { _dir: dir, indexes, memories }
    })
}

proptest! {
    #[test]
    fn backends_and_threads_bit_identical(
        raw_topics in proptest::collection::vec(0u32..NUM_TOPICS, 1..4),
        k in 1u32..16,
    ) {
        let fx = fixture();
        let mut topics = raw_topics;
        topics.sort_unstable();
        topics.dedup();
        let query = Query::new(topics, k);

        // Baseline: file backend, one thread.
        let (_, _, baseline) = &fx.indexes[0];
        let rr = baseline.query_rr(&query).unwrap();
        let irr = baseline.query_irr(&query).unwrap();
        prop_assert_eq!(&rr.seeds, &irr.seeds, "Theorem 3 on the baseline");

        for (mode, threads, index) in &fx.indexes {
            // Two rounds: the second runs entirely on pooled scratch, so
            // any state leaking between queries would diverge here.
            for round in 0..2 {
                let r = index.query_rr(&query).unwrap();
                prop_assert_eq!(&r.seeds, &rr.seeds, "rr {} t{} round {}", mode, threads, round);
                prop_assert_eq!(&r.marginal_gains, &rr.marginal_gains);
                prop_assert_eq!(r.coverage, rr.coverage);
                prop_assert_eq!(r.stats.theta_q, rr.stats.theta_q);
                prop_assert_eq!(r.stats.rr_sets_loaded, rr.stats.rr_sets_loaded);

                let i = index.query_irr(&query).unwrap();
                prop_assert_eq!(&i.seeds, &irr.seeds, "irr {} t{} round {}", mode, threads, round);
                prop_assert_eq!(&i.marginal_gains, &irr.marginal_gains);
                prop_assert_eq!(i.coverage, irr.coverage);
                prop_assert_eq!(i.stats.rr_sets_loaded, irr.stats.rr_sets_loaded);
                prop_assert_eq!(i.stats.partitions_loaded, irr.stats.partitions_loaded);
            }
        }

        for (mode, memory) in &fx.memories {
            let m = memory.query(&query);
            prop_assert_eq!(&m.seeds, &rr.seeds, "memory via {}", mode);
            prop_assert_eq!(m.coverage, rr.coverage);
            prop_assert_eq!(m.stats.theta_q, rr.stats.theta_q);
        }
    }

    #[test]
    fn flipped_payload_byte_rejected_on_every_backend(
        blocks in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 1..64),
            1..4,
        ),
        target in any::<proptest::sample::Index>(),
        victim_byte in any::<proptest::sample::Index>(),
    ) {
        // Write the blocks as a segment, flip one payload byte of one
        // block, then demand a CRC rejection from every backend.
        let dir = TempDir::new("serving-crc").unwrap();
        let path = dir.path().join("seg.bin");
        let mut writer = SegmentWriter::create(&path).unwrap();
        for (i, data) in blocks.iter().enumerate() {
            writer.write_block(&format!("b{i}"), data).unwrap();
        }
        writer.finish().unwrap();

        let victim = target.index(blocks.len());
        let byte_in_block = victim_byte.index(blocks[victim].len());
        // Blocks are written back to back after the 16-byte header.
        let flip_at = 16 + blocks[..victim].iter().map(Vec::len).sum::<usize>() + byte_in_block;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[flip_at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        for mode in all_modes() {
            let source = BlockSource::open(&path, IoStats::new(), mode).unwrap();
            prop_assert!(
                source.read_block(&format!("b{victim}")).is_err(),
                "{} must reject the flipped block", mode
            );
            // Untouched blocks still serve on every backend.
            for (i, data) in blocks.iter().enumerate() {
                if i != victim {
                    prop_assert_eq!(&*source.read_block(&format!("b{i}")).unwrap(), &data[..]);
                }
            }
        }
    }
}

#[test]
fn corrupted_index_segment_caught_on_every_backend() {
    // Index-level twin of the proptest above: one flipped byte in a
    // keyword segment must surface through open or validate, whatever
    // backend serves the pages.
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(300).num_topics(4).seed(41).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(600),
            opt_initial_samples: 64,
            opt_max_rounds: 4,
            ..SamplingConfig::fast()
        },
        variant: IndexVariant::Irr { partition_size: 16 },
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("serving-flip").unwrap();
    IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
    let victim = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("kw_"))
        .unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    let target = bytes.len() / 3;
    bytes[target] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    for mode in all_modes() {
        match KbtimIndex::open_with(dir.path(), IoStats::new(), mode) {
            Err(_) => {} // directory/footer damage: also acceptable
            Ok(index) => {
                assert!(index.validate().is_err(), "{mode}: validation must catch the flip");
            }
        }
    }
}

#[test]
fn zero_copy_backends_report_hits_not_reads() {
    let fx = fixture();
    let query = Query::new([0, 1], 5);
    for (mode, _, index) in &fx.indexes {
        let rr = index.query_rr(&query).unwrap();
        let irr = index.query_irr(&query).unwrap();
        match mode {
            ServingMode::File => {
                assert!(rr.stats.io.read_ops > 0, "file rr must count reads");
                assert!(irr.stats.io.read_ops > 0, "file irr must count reads");
                assert_eq!(rr.stats.io.cache_hits, 0);
                assert_eq!(rr.stats.io.bytes_served, 0);
            }
            ServingMode::Resident | ServingMode::Mmap => {
                assert_eq!(rr.stats.io.read_ops, 0, "{mode}: zero-copy must not count reads");
                assert_eq!(rr.stats.io.bytes_read, 0, "{mode}");
                assert!(rr.stats.io.cache_hits > 0, "{mode}: hits must be recorded");
                assert!(rr.stats.io.bytes_served > 0, "{mode}");
                assert!(irr.stats.io.cache_hits > 0, "{mode}");
            }
        }
    }
}

#[test]
fn resident_footprint_reported_per_mode() {
    let fx = fixture();
    for (mode, _, index) in &fx.indexes {
        match mode {
            ServingMode::File => assert_eq!(index.resident_bytes(), 0),
            _ => {
                // Arena/mapping size equals the keyword segments on disk
                // (the catalog is not kept resident).
                let segs = index.disk_bytes().unwrap()
                    - std::fs::metadata(index.dir().join("index.meta")).unwrap().len();
                assert_eq!(index.resident_bytes(), segs, "{mode}");
            }
        }
        assert_eq!(index.serving_mode(), *mode);
    }
}
