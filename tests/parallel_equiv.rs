//! Parallel ≡ sequential equivalence for the refactored execution layer.
//!
//! The deterministic-sharding contract (see `kbtim-exec`): every sampling
//! and coverage path must return **bit-identical** results for any
//! `threads` setting, because work shards, per-shard RNG streams, and
//! merge order depend only on the problem size and the seed — never on
//! the thread count.

use kbtim::core::maxcover::{greedy_max_cover_batch, greedy_max_cover_naive};
use kbtim::core::ris::ris_query;
use kbtim::core::wris::wris_query;
use kbtim::core::SamplingConfig;
use kbtim::datagen::{Dataset, DatasetConfig, DatasetFamily};
use kbtim::index::{IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, ThetaMode};
use kbtim::propagation::model::IcModel;
use kbtim::propagation::sample_batch;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::Query;
use kbtim_codec::Codec;
use kbtim_exec::ExecPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    DatasetConfig::family(DatasetFamily::News).num_users(700).num_topics(8).seed(123).build()
}

fn config_with_threads(threads: usize) -> SamplingConfig {
    SamplingConfig {
        theta_cap: Some(6_000),
        opt_initial_samples: 128,
        opt_max_rounds: 8,
        threads: Some(threads),
        ..SamplingConfig::fast()
    }
}

#[test]
fn wris_query_identical_for_1_vs_8_threads() {
    let data = dataset();
    let model = IcModel::weighted_cascade(&data.graph);
    let query = Query::new([0, 1, 2], 10);

    let mut rng = SmallRng::seed_from_u64(42);
    let single = wris_query(&model, &data.profiles, &query, &config_with_threads(1), &mut rng);
    assert!(!single.seeds.is_empty());

    let mut rng = SmallRng::seed_from_u64(42);
    let parallel = wris_query(&model, &data.profiles, &query, &config_with_threads(8), &mut rng);

    assert_eq!(single.seeds, parallel.seeds, "seed sets must match bit-for-bit");
    assert_eq!(single.marginal_gains, parallel.marginal_gains);
    assert_eq!(single.coverage, parallel.coverage);
    assert_eq!(single.theta, parallel.theta);
    // f64s must be *identical*, not merely close: both runs consumed the
    // same RNG draws in the same order.
    assert_eq!(single.opt_estimate.to_bits(), parallel.opt_estimate.to_bits());
    assert_eq!(single.estimated_influence.to_bits(), parallel.estimated_influence.to_bits());
}

#[test]
fn ris_query_identical_for_1_vs_8_threads() {
    let data = dataset();
    let model = IcModel::weighted_cascade(&data.graph);

    let mut rng = SmallRng::seed_from_u64(7);
    let single = ris_query(&model, 12, &config_with_threads(1), &mut rng);
    assert!(!single.seeds.is_empty());

    let mut rng = SmallRng::seed_from_u64(7);
    let parallel = ris_query(&model, 12, &config_with_threads(8), &mut rng);

    assert_eq!(single, parallel, "RIS must be thread-count invariant");
}

fn build_index(data: &Dataset, dir: &std::path::Path, build_threads: usize) {
    let model = IcModel::weighted_cascade(&data.graph);
    let config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(2_500),
            opt_initial_samples: 96,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        codec: Codec::Packed,
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 24 },
        threads: build_threads,
        seed: 55,
        shards: 1,
    };
    IndexBuilder::new(&model, &data.profiles, config).build(dir).unwrap();
}

#[test]
fn query_rr_identical_for_1_vs_8_threads() {
    let data = dataset();
    let dir = TempDir::new("par-eq-rr").unwrap();
    build_index(&data, dir.path(), 4);

    let mut single = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    single.set_threads(Some(1));
    let parallel = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().with_threads(Some(8));

    for q in [Query::new([0, 1], 8), Query::new([0, 1, 2, 3], 15), Query::new([2], 3)] {
        let a = single.query_rr(&q).unwrap();
        let b = parallel.query_rr(&q).unwrap();
        assert_eq!(a.seeds, b.seeds, "query {q:?}");
        assert_eq!(a.marginal_gains, b.marginal_gains, "query {q:?}");
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.stats.theta_q, b.stats.theta_q);
        assert_eq!(a.stats.rr_sets_loaded, b.stats.rr_sets_loaded);
        assert_eq!(a.estimated_influence.to_bits(), b.estimated_influence.to_bits());
    }
}

#[test]
fn query_irr_identical_for_1_vs_8_threads() {
    let data = dataset();
    let dir = TempDir::new("par-eq-irr").unwrap();
    build_index(&data, dir.path(), 4);

    let mut single = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    single.set_threads(Some(1));
    let parallel = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().with_threads(Some(8));

    for q in [Query::new([0, 1], 6), Query::new([1, 2, 3], 10)] {
        let a = single.query_irr(&q).unwrap();
        let b = parallel.query_irr(&q).unwrap();
        assert_eq!(a.seeds, b.seeds, "query {q:?}");
        assert_eq!(a.marginal_gains, b.marginal_gains);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.stats.rr_sets_loaded, b.stats.rr_sets_loaded);
        assert_eq!(a.stats.partitions_loaded, b.stats.partitions_loaded);
    }
}

#[test]
fn index_build_identical_for_1_vs_8_threads_with_batched_sampler() {
    // Build twice with different thread counts and compare segment bytes;
    // this specifically exercises the batched `sample_batch` path inside
    // `build_keyword`.
    let data = dataset();
    let mut digests: Vec<Vec<(String, Vec<u8>)>> = Vec::new();
    for threads in [1usize, 8] {
        let dir = TempDir::new("par-eq-build").unwrap();
        build_index(&data, dir.path(), threads);
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| {
                (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
            })
            .collect();
        files.sort();
        digests.push(files);
    }
    assert_eq!(digests[0].len(), digests[1].len());
    for (a, b) in digests[0].iter().zip(digests[1].iter()) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "file {} differs between 1- and 8-thread builds", a.0);
    }
}

#[test]
fn flat_celf_identical_to_naive_oracle_across_thread_counts() {
    // The flat data path end to end: a sharded arena batch sampled from a
    // real graph, inverted by counting sort, solved by the bitset CELF —
    // must equal the Vec-of-Vec naive oracle bit-for-bit at every thread
    // count (and the batch itself must be thread-count invariant).
    let data = dataset();
    let model = IcModel::weighted_cascade(&data.graph);
    let num_nodes = data.graph.num_nodes();
    let batch = sample_batch(&model, 5_000, 99, &ExecPool::new(Some(1)), |rng| {
        use rand::Rng;
        rng.gen_range(0..num_nodes)
    });
    for threads in [2usize, 8] {
        let check = sample_batch(&model, 5_000, 99, &ExecPool::new(Some(threads)), |rng| {
            use rand::Rng;
            rng.gen_range(0..num_nodes)
        });
        assert_eq!(batch, check, "arena batch diverged at {threads} threads");
    }

    let oracle = greedy_max_cover_naive(&batch.to_vecs(), 25);
    assert!(!oracle.seeds.is_empty());
    for threads in [1usize, 2, 8] {
        let flat = greedy_max_cover_batch(&batch, 25, &ExecPool::new(Some(threads)));
        assert_eq!(flat, oracle, "flat CELF diverged from naive at {threads} threads");
    }
}

#[test]
fn query_auto_exercises_both_paths() {
    // Smoke test for the cost-model dispatch: on an IRR index with
    // δ = 24, k ≤ 6 goes through IRR (partition traces) and large k falls
    // back to the RR prefix scan — and both agree with the explicit calls.
    let data = dataset();
    let dir = TempDir::new("par-eq-auto").unwrap();
    build_index(&data, dir.path(), 4);
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();

    let small = index.query_auto(&Query::new([0, 1], 4)).unwrap();
    assert!(small.stats.partitions_loaded > 0, "small k must take the IRR path");
    assert_eq!(small.seeds, index.query_irr(&Query::new([0, 1], 4)).unwrap().seeds);

    let large = index.query_auto(&Query::new([0, 1], 20)).unwrap();
    assert_eq!(large.stats.partitions_loaded, 0, "large k must take the RR path");
    assert_eq!(large.seeds, index.query_rr(&Query::new([0, 1], 20)).unwrap().seeds);

    // Theorem 3 makes the two paths agree wherever both apply.
    let rr = index.query_rr(&Query::new([0, 1], 4)).unwrap();
    assert_eq!(small.seeds, rr.seeds);
}
