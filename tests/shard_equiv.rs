//! Shard-equivalence gate for the scatter-gather serving path.
//!
//! The sharding contract is absolute: how many user-range shards the
//! segments are partitioned into must be *unobservable* in query
//! answers. RR sampling is global and each in-range user keeps its
//! unchanged rr-id list, so concatenating shard inverted lists in shard
//! order reproduces the flat index's merged instance exactly — seeds,
//! marginal gains, coverage, θ^Q and the influence estimate are
//! bit-identical for every shard count × algorithm × serving backend ×
//! thread count. These tests pin that down, and extend the chaos gate
//! to a sharded engine: armed `storage.read` failpoints may fail
//! requests, but every *successful* answer stays bit-identical to the
//! fault-free oracle and the engine serves clean after disarm.

use kbtim::core::theta::SamplingConfig;
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, MemoryIndex, QueryEngine,
    ServingMode, ThetaMode,
};
use kbtim::propagation::model::IcModel;
use kbtim::serve::{handle_line_ctx, Json, Router, ServeCtx};
use kbtim::storage::block::all_modes;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::Query;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const NUM_TOPICS: u32 = 6;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One dataset built at every shard count; the S=1 build is the oracle.
/// Sharded builds are opened through every backend × thread count, plus
/// a `MemoryIndex` loaded from each sharded layout.
struct Fixture {
    dirs: Vec<(usize, TempDir)>,
    oracle: KbtimIndex,
    indexes: Vec<(usize, ServingMode, usize, KbtimIndex)>,
    memories: Vec<(usize, MemoryIndex)>,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(400)
            .num_topics(NUM_TOPICS)
            .seed(91)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let mut dirs = Vec::new();
        for shards in SHARD_COUNTS {
            let config = IndexBuildConfig {
                sampling: SamplingConfig {
                    theta_cap: Some(1_000),
                    opt_initial_samples: 64,
                    opt_max_rounds: 5,
                    ..SamplingConfig::fast()
                },
                theta_mode: ThetaMode::Compact,
                variant: IndexVariant::Irr { partition_size: 16 },
                threads: 4,
                seed: 13,
                shards,
                ..IndexBuildConfig::default()
            };
            let dir = TempDir::new(&format!("shard-equiv-{shards}")).unwrap();
            IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
            dirs.push((shards, dir));
        }

        let oracle = KbtimIndex::open(dirs[0].1.path(), IoStats::new()).unwrap();
        let mut indexes = Vec::new();
        let mut memories = Vec::new();
        for (shards, dir) in dirs.iter().filter(|(s, _)| *s > 1) {
            for mode in all_modes() {
                for threads in [1usize, 8] {
                    let index = KbtimIndex::open_with(dir.path(), IoStats::new(), mode)
                        .unwrap()
                        .with_threads(Some(threads));
                    assert_eq!(index.num_shards(), *shards);
                    indexes.push((*shards, mode, threads, index));
                }
            }
            let via = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
            memories.push((*shards, MemoryIndex::load(&via).unwrap()));
        }
        Fixture { dirs, oracle, indexes, memories }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn any_shard_count_is_bit_identical_to_flat(
        raw_topics in proptest::collection::vec(0u32..NUM_TOPICS, 1..4),
        k in 1u32..16,
    ) {
        let fx = fixture();
        let mut topics = raw_topics;
        topics.sort_unstable();
        topics.dedup();
        let query = Query::new(topics, k);

        // Flat (S = 1) oracle per algorithm. Theorem 3 makes the IRR
        // seeds equal the RR seeds; auto picks one of the two.
        let rr = fx.oracle.query_rr(&query).unwrap();
        let irr = fx.oracle.query_irr(&query).unwrap();
        let auto = fx.oracle.query_auto(&query).unwrap();
        prop_assert_eq!(&rr.seeds, &irr.seeds, "Theorem 3 on the oracle");

        for (shards, mode, threads, index) in &fx.indexes {
            let tag = || format!("S={shards} {mode} t{threads}");
            // Two rounds so the second runs entirely on pooled scratch.
            for _round in 0..2 {
                for (algo, want) in [("rr", &rr), ("irr", &irr), ("auto", &auto)] {
                    let got = match algo {
                        "rr" => index.query_rr(&query).unwrap(),
                        "irr" => index.query_irr(&query).unwrap(),
                        _ => index.query_auto(&query).unwrap(),
                    };
                    prop_assert_eq!(&got.seeds, &want.seeds, "{} {}", tag(), algo);
                    prop_assert_eq!(&got.marginal_gains, &want.marginal_gains);
                    prop_assert_eq!(got.coverage, want.coverage);
                    prop_assert_eq!(got.stats.theta_q, want.stats.theta_q);
                    prop_assert_eq!(
                        got.estimated_influence.to_bits(),
                        want.estimated_influence.to_bits(),
                        "{} {}: influence must be bit-identical", tag(), algo
                    );
                }
                // The RR accounting identity survives sharding: the
                // shard fan-out decodes each keyword's prefix exactly
                // once across shards.
                let r = index.query_rr(&query).unwrap();
                prop_assert_eq!(r.stats.rr_sets_loaded, r.stats.theta_q, "{}", tag());
            }
        }

        for (shards, memory) in &fx.memories {
            let m = memory.query(&query);
            prop_assert_eq!(&m.seeds, &rr.seeds, "memory from S={}", shards);
            prop_assert_eq!(&m.marginal_gains, &rr.marginal_gains);
            prop_assert_eq!(m.coverage, rr.coverage);
            prop_assert_eq!(m.stats.theta_q, rr.stats.theta_q);
        }
    }
}

#[test]
fn sharded_layouts_validate_and_report_their_shard_count() {
    let fx = fixture();
    for (shards, dir) in &fx.dirs {
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert_eq!(index.num_shards(), *shards);
        let report = index.validate().unwrap();
        assert_eq!(report.shards_checked as usize, *shards);
    }
}

#[test]
fn shard_fingerprints_differ_per_layout() {
    // Different shard counts are different segment generations: a
    // prepared-query cache keyed by the fingerprint must never alias
    // them (satellite of the PageCache/fingerprint contract).
    let fx = fixture();
    let mut fps = Vec::new();
    for (_, dir) in &fx.dirs {
        fps.push(KbtimIndex::open(dir.path(), IoStats::new()).unwrap().segment_fingerprint());
    }
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), SHARD_COUNTS.len(), "layouts must not share a fingerprint");
}

/// Chaos extension: `storage.read` failpoints over a sharded engine.
/// A shard decode that fails fails the whole request (no partial
/// merges); whatever succeeds is bit-identical to the fault-free
/// answer, and the engine serves clean once disarmed.
#[test]
fn sharded_engine_isolates_storage_faults() {
    const LINES: [&str; 4] = [
        r#"{"id":1,"topics":[0,1],"k":5,"algo":"rr"}"#,
        r#"{"id":2,"topics":[1,2],"k":3,"algo":"irr"}"#,
        r#"{"id":3,"topics":[0,3],"k":8,"algo":"auto"}"#,
        r#"{"id":4,"topics":[2,4],"k":4}"#,
    ];
    let fx = fixture();
    let (shards, dir) = &fx.dirs[2]; // S = 4
    assert_eq!(*shards, 4);

    let answer_fields = |response: &str| -> Vec<(String, Json)> {
        let Json::Obj(fields) = Json::parse(response).expect("protocol JSON") else {
            panic!("response is not an object: {response}");
        };
        fields.into_iter().filter(|(key, _)| key != "elapsed_us").collect()
    };

    for mode in all_modes() {
        kbtim_fault::reset();
        let index = KbtimIndex::open_with(dir.path(), IoStats::new(), mode).unwrap();
        let router = Router::single(Arc::new(QueryEngine::new(Arc::new(index))));
        let ctx = ServeCtx::new(64, None);

        // Fault-free oracle from the very engine under test (the
        // proptest above already pins sharded == flat).
        let oracle: Vec<Vec<(String, Json)>> = LINES
            .iter()
            .map(|&line| {
                let response = handle_line_ctx(&router, &ctx, line);
                assert!(response.contains("\"seeds\""), "oracle for {line}: {response}");
                assert!(
                    response.contains("\"shards\":4"),
                    "{mode}: response must report the shard count: {response}"
                );
                answer_fields(&response)
            })
            .collect();

        kbtim_fault::set_seed(0xdead_beef);
        kbtim_fault::arm("storage.read", "30%err").unwrap();
        let mut successes = 0usize;
        for round in 0..8 {
            for (i, &line) in LINES.iter().enumerate() {
                let response = handle_line_ctx(&router, &ctx, line);
                Json::parse(&response).unwrap_or_else(|e| {
                    panic!("{mode} round {round}: unparseable response {response:?}: {e}")
                });
                if response.contains("\"seeds\"") {
                    successes += 1;
                    assert_eq!(
                        answer_fields(&response),
                        oracle[i],
                        "{mode}: a successful answer under faults must be \
                         bit-identical to the fault-free answer"
                    );
                } else {
                    assert!(
                        response.contains("\"code\":\"engine_error\""),
                        "{mode}: storage faults must surface as engine_error: {response}"
                    );
                }
            }
        }
        kbtim_fault::reset();

        // Disarmed, the same engine answers every line cleanly again.
        for (i, &line) in LINES.iter().enumerate() {
            assert_eq!(
                answer_fields(&handle_line_ctx(&router, &ctx, line)),
                oracle[i],
                "{mode}: engine must serve clean answers after the storm \
                 ({successes} chaos requests had succeeded)"
            );
        }
    }
}

#[test]
fn memory_backed_serving_reports_flat_shard_count_of_its_source() {
    // A serve response's `shards` field reflects the disk index behind
    // the engine even when the memory tier answers.
    let fx = fixture();
    let (shards, dir) = &fx.dirs[1]; // S = 2
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    let router = Router::single(Arc::new(QueryEngine::with_memory(Arc::new(index)).unwrap()));
    let ctx = ServeCtx::new(16, None);
    let response =
        handle_line_ctx(&router, &ctx, r#"{"id":9,"topics":[0,1],"k":5,"algo":"memory"}"#);
    assert!(response.contains("\"seeds\""), "{response}");
    assert!(
        response.contains(&format!("\"shards\":{shards}")),
        "response must carry the source shard count: {response}"
    );
}
