//! End-to-end integration: dataset → online engine → disk index → query →
//! Monte-Carlo verification, across every crate in the workspace.

use kbtim::core::{KbTimEngine, SamplingConfig};
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, ThetaMode};
use kbtim::propagation::model::IcModel;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::Query;
use kbtim_codec::Codec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_sampling() -> SamplingConfig {
    SamplingConfig {
        theta_cap: Some(4_000),
        opt_initial_samples: 128,
        opt_max_rounds: 8,
        ..SamplingConfig::fast()
    }
}

fn build_config() -> IndexBuildConfig {
    IndexBuildConfig {
        sampling: small_sampling(),
        codec: Codec::Packed,
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 25 },
        threads: 4,
        seed: 99,
        shards: 1,
    }
}

#[test]
fn full_pipeline_news() {
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(800).num_topics(10).seed(42).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let dir = TempDir::new("e2e-news").unwrap();
    let report =
        IndexBuilder::new(&model, &data.profiles, build_config()).build(dir.path()).unwrap();
    assert!(report.total_theta > 0);

    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    let engine = KbTimEngine::new(&data.graph, &data.profiles, small_sampling());
    let query = Query::new([0, 1, 2], 12);

    // All three query paths must produce seeds of comparable quality.
    let mut rng = SmallRng::seed_from_u64(7);
    let online = engine.wris(&query, &mut rng);
    let rr = index.query_rr(&query).unwrap();
    let irr = index.query_irr(&query).unwrap();
    assert!(!online.seeds.is_empty());
    assert!(!rr.seeds.is_empty());
    assert_eq!(rr.seeds, irr.seeds, "Theorem 3");

    let mut rng = SmallRng::seed_from_u64(8);
    let spread_online = engine.targeted_spread(&online.seeds, &query, 15_000, &mut rng);
    let spread_index = engine.targeted_spread(&rr.seeds, &query, 15_000, &mut rng);
    let rel = (spread_online - spread_index).abs() / spread_online.max(1e-9);
    assert!(rel < 0.1, "online {spread_online} vs index {spread_index} (rel {rel})");

    // The index's internal estimate must track the MC ground truth.
    let est_rel = (rr.estimated_influence - spread_index).abs() / spread_index.max(1e-9);
    assert!(est_rel < 0.25, "estimate {} vs MC {spread_index}", rr.estimated_influence);
}

#[test]
fn index_persists_across_reopen() {
    let data =
        DatasetConfig::family(DatasetFamily::Twitter).num_users(500).num_topics(6).seed(11).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let dir = TempDir::new("e2e-reopen").unwrap();
    IndexBuilder::new(&model, &data.profiles, build_config()).build(dir.path()).unwrap();

    let query = Query::new([0, 1], 8);
    let first = {
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        index.query_irr(&query).unwrap()
    };
    // Fresh process-equivalent reopen: identical answers.
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    let second = index.query_irr(&query).unwrap();
    assert_eq!(first.seeds, second.seeds);
    assert_eq!(first.coverage, second.coverage);
    assert_eq!(first.stats.rr_sets_loaded, second.stats.rr_sets_loaded);
}

#[test]
fn corrupted_segment_is_detected() {
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(300).num_topics(4).seed(13).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let dir = TempDir::new("e2e-corrupt").unwrap();
    IndexBuilder::new(&model, &data.profiles, build_config()).build(dir.path()).unwrap();

    // Flip one byte in the middle of a keyword segment.
    let victim = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("kw_"))
        .expect("keyword segment exists");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xAA;
    std::fs::write(&victim, &bytes).unwrap();

    // Either opening fails (directory damage) or whole-block reads fail the
    // checksum; silent misreads are unacceptable — an error OR identical
    // query output (flip landed in a block this query never touches over a
    // range read) are the only allowed outcomes. We assert that any
    // *successful* full-block path still checksums: query_rr reads the
    // whole `il` block, which covers most of the file.
    match KbtimIndex::open(dir.path(), IoStats::new()) {
        Err(_) => {}
        Ok(index) => {
            let queries: Vec<Query> = (0..4).map(|w| Query::new([w], 5)).collect();
            let mut any_error = false;
            for q in &queries {
                if index.query_rr(q).is_err() {
                    any_error = true;
                }
            }
            assert!(any_error, "corruption must surface as an error on at least one keyword query");
        }
    }
}

#[test]
fn lt_model_end_to_end() {
    use kbtim::propagation::model::LtModel;
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(400).num_topics(5).seed(17).build();
    let mut rng = SmallRng::seed_from_u64(23);
    let model = LtModel::random_weights(&data.graph, &mut rng);
    let dir = TempDir::new("e2e-lt").unwrap();
    IndexBuilder::new(&model, &data.profiles, build_config()).build(dir.path()).unwrap();
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    assert_eq!(index.meta().model_name, "LT");
    let query = Query::new([0, 1], 6);
    let rr = index.query_rr(&query).unwrap();
    let irr = index.query_irr(&query).unwrap();
    assert_eq!(rr.seeds, irr.seeds, "Theorem 3 under LT");
    assert!(!rr.seeds.is_empty());
}

#[test]
fn io_accounting_distinguishes_variants() {
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(1_500).num_topics(8).seed(29).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let dir = TempDir::new("e2e-io").unwrap();
    IndexBuilder::new(&model, &data.profiles, build_config()).build(dir.path()).unwrap();
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();

    // Small k: IRR should load fewer RR sets than the full RR prefix scan.
    let query = Query::new([0, 1, 2], 5);
    let rr = index.query_rr(&query).unwrap();
    let irr = index.query_irr(&query).unwrap();
    assert_eq!(rr.stats.rr_sets_loaded, rr.stats.theta_q);
    assert!(
        irr.stats.rr_sets_loaded < rr.stats.rr_sets_loaded,
        "IRR {} vs RR {}",
        irr.stats.rr_sets_loaded,
        rr.stats.rr_sets_loaded
    );
    assert!(irr.stats.partitions_loaded > 0);
    assert!(rr.stats.io.bytes_read > 0);
}
