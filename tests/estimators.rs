//! Statistical integration tests for the paper's estimators.
//!
//! * Lemma 1: `F_θ(S)/θ · φ_Q` is unbiased for `E[I^Q(S)]` (WRIS).
//! * Lemma 2: the discriminative per-keyword mixture used by the disk
//!   index is distributed like direct WRIS sampling, so index influence
//!   estimates also track ground truth.
//! * Theorem 2 (qualitative): seed quality does not degrade from WRIS to
//!   the index paths.

use kbtim::core::{wris::wris_query, SamplingConfig};
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, ThetaMode};
use kbtim::propagation::model::IcModel;
use kbtim::propagation::spread::monte_carlo_targeted;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::Query;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn wris_estimate_unbiased_lemma1() {
    let data =
        DatasetConfig::family(DatasetFamily::Twitter).num_users(600).num_topics(8).seed(5).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let config = SamplingConfig { theta_cap: Some(30_000), ..SamplingConfig::fast() };
    let query = Query::new([0, 1, 2], 10);

    let mut rng = SmallRng::seed_from_u64(1);
    let result = wris_query(&model, &data.profiles, &query, &config, &mut rng);
    assert!(!result.seeds.is_empty());
    let mc = monte_carlo_targeted(&model, &data.profiles, &query, &result.seeds, 30_000, &mut rng);
    let rel = (result.estimated_influence - mc).abs() / mc;
    assert!(rel < 0.08, "WRIS estimate {} vs MC {mc} (rel {rel:.3})", result.estimated_influence);
}

#[test]
fn discriminative_mixture_matches_direct_sampling_lemma2() {
    // Build an index (per-keyword pools) and compare its influence
    // estimate against both online WRIS and the MC ground truth for the
    // same query — all three must agree within sampling noise.
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(900).num_topics(8).seed(77).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let sampling = SamplingConfig {
        theta_cap: Some(8_000),
        opt_initial_samples: 256,
        ..SamplingConfig::fast()
    };
    let dir = TempDir::new("est-lemma2").unwrap();
    IndexBuilder::new(
        &model,
        &data.profiles,
        IndexBuildConfig {
            sampling,
            variant: IndexVariant::Irr { partition_size: 50 },
            theta_mode: ThetaMode::Compact,
            ..IndexBuildConfig::default()
        },
    )
    .build(dir.path())
    .unwrap();
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();

    let query = Query::new([0, 1], 10);
    let outcome = index.query_rr(&query).unwrap();
    let mut rng = SmallRng::seed_from_u64(2);
    let mc = monte_carlo_targeted(&model, &data.profiles, &query, &outcome.seeds, 30_000, &mut rng);
    let rel = (outcome.estimated_influence - mc).abs() / mc;
    assert!(rel < 0.15, "index estimate {} vs MC {mc} (rel {rel:.3})", outcome.estimated_influence);

    let online = wris_query(&model, &data.profiles, &query, &sampling, &mut rng);
    let mc_online =
        monte_carlo_targeted(&model, &data.profiles, &query, &online.seeds, 30_000, &mut rng);
    let seed_quality_gap = (mc - mc_online).abs() / mc_online;
    assert!(
        seed_quality_gap < 0.08,
        "index seeds {mc} vs online seeds {mc_online} (gap {seed_quality_gap:.3})"
    );
}

#[test]
fn greedy_beats_degree_heuristic() {
    // Sanity on seed *quality*: WRIS seeds must beat a naive
    // highest-out-degree heuristic on targeted spread.
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(1_200).num_topics(10).seed(31).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let config = SamplingConfig { theta_cap: Some(12_000), ..SamplingConfig::fast() };
    let query = Query::new([2, 3], 10);

    let mut rng = SmallRng::seed_from_u64(3);
    let wris = wris_query(&model, &data.profiles, &query, &config, &mut rng);

    let mut by_degree: Vec<u32> = data.graph.nodes().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(data.graph.out_degree(v)));
    let degree_seeds: Vec<u32> = by_degree.into_iter().take(10).collect();

    let mc_wris =
        monte_carlo_targeted(&model, &data.profiles, &query, &wris.seeds, 20_000, &mut rng);
    let mc_degree =
        monte_carlo_targeted(&model, &data.profiles, &query, &degree_seeds, 20_000, &mut rng);
    assert!(
        mc_wris > mc_degree,
        "targeted greedy ({mc_wris:.2}) must beat global degree heuristic ({mc_degree:.2})"
    );
}

#[test]
fn spread_is_monotone_in_k() {
    // Influence spread grows with the seed budget (Table 7's row trend).
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(700).num_topics(6).seed(59).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let sampling = SamplingConfig { theta_cap: Some(6_000), ..SamplingConfig::fast() };
    let dir = TempDir::new("est-monotone").unwrap();
    IndexBuilder::new(
        &model,
        &data.profiles,
        IndexBuildConfig { sampling, ..IndexBuildConfig::default() },
    )
    .build(dir.path())
    .unwrap();
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();

    let mut rng = SmallRng::seed_from_u64(4);
    let mut last = 0.0f64;
    for k in [2u32, 8, 20] {
        let query = Query::new([0, 1], k);
        let outcome = index.query_irr(&query).unwrap();
        let mc =
            monte_carlo_targeted(&model, &data.profiles, &query, &outcome.seeds, 15_000, &mut rng);
        assert!(
            mc >= last - 0.02 * last.abs(),
            "spread at k={k} ({mc:.2}) dropped below previous ({last:.2})"
        );
        last = mc;
    }
}
