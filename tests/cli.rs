//! Integration tests for the `kbtim` command-line tool, exercising the
//! full gen → stats → build → validate → query loop through the binary.

use std::path::PathBuf;
use std::process::Command;

fn kbtim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kbtim"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kbtim-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let root = temp_dir("workflow");
    let data = root.join("data");
    let index = root.join("index");

    // gen
    let out = kbtim()
        .args(["gen", "--family", "news", "--users", "400", "--topics", "6"])
        .args(["--seed", "5", "--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(data.join("graph.txt").is_file());
    assert!(data.join("profiles.tsv").is_file());

    // stats
    let out = kbtim()
        .args(["stats", "--graph", data.join("graph.txt").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edges:"), "{stdout}");

    // build
    let out = kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "800", "--threads", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "build failed: {}", String::from_utf8_lossy(&out.stderr));

    // validate
    let out = kbtim().args(["validate", "--index", index.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "validate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("ok:"));

    // query (both algorithms, same seeds by Theorem 3)
    let run_query = |algo: &str| -> String {
        let out = kbtim()
            .args(["query", "--index", index.to_str().unwrap()])
            .args(["--topics", "0,1", "--k", "8", "--algo", algo])
            .output()
            .unwrap();
        assert!(out.status.success(), "query failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        stdout.lines().next().unwrap_or_default().to_string()
    };
    let rr_seeds = run_query("rr");
    let irr_seeds = run_query("irr");
    assert!(rr_seeds.starts_with("seeds: ["), "{rr_seeds}");
    assert_eq!(rr_seeds, irr_seeds, "Theorem 3 via the CLI");

    // Every serving backend answers identically (and validates).
    for serving in ["file", "resident", "mmap"] {
        let out = kbtim()
            .args(["query", "--index", index.to_str().unwrap()])
            .args(["--topics", "0,1", "--k", "8", "--algo", "rr", "--serving", serving])
            .output()
            .unwrap();
        assert!(out.status.success(), "query --serving {serving} failed");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert_eq!(
            stdout.lines().next().unwrap_or_default(),
            rr_seeds,
            "serving {serving} must match the file backend"
        );
        let out = kbtim()
            .args(["validate", "--index", index.to_str().unwrap(), "--serving", serving])
            .output()
            .unwrap();
        assert!(out.status.success(), "validate --serving {serving} failed");
    }

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn serve_answers_line_protocol_requests() {
    use std::io::Write;

    let root = temp_dir("serve");
    let data = root.join("data");
    let index = root.join("index");
    assert!(kbtim()
        .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
        .args(["--seed", "9", "--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());

    // The serial oracle through the one-shot CLI.
    let oracle = kbtim()
        .args(["query", "--index", index.to_str().unwrap()])
        .args(["--topics", "0,1", "--k", "5", "--algo", "rr"])
        .output()
        .unwrap();
    assert!(oracle.status.success());
    let oracle_seeds = String::from_utf8_lossy(&oracle.stdout)
        .lines()
        .next()
        .unwrap()
        .trim_start_matches("seeds: ")
        .to_string();

    // Same queries through `kbtim serve` on stdin (memory algo enabled;
    // batching forced on so the planner path is exercised through the
    // wire — stdin serving defaults it off, see docs/PROTOCOL.md).
    let mut child = kbtim()
        .args(["serve", "--index", index.to_str().unwrap(), "--memory", "on", "--batch", "200"])
        .args(["--merge-cache", "8"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, r#"{{"id":1,"topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":2,"topics":[0,1],"k":5,"algo":"irr"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":3,"topics":[0,1],"k":5,"algo":"memory"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":4,"nonsense":true}}"#).unwrap();
        writeln!(stdin, "this is not json").unwrap();
        // A repeat of request 1: its keyword set is now resident in the
        // prepared-query cache, and the answer must be unchanged.
        writeln!(stdin, r#"{{"id":6,"topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
    } // stdin drops → EOF → clean exit
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("merge-cache 8 entries"),
        "banner must report the cache: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "one response per request line: {stdout}");

    // rr, irr and memory all return the oracle's seeds (Theorem 3 + the
    // memory copy's bit-equality), tagged with their request ids.
    let want = format!("\"seeds\":{}", oracle_seeds.replace(", ", ","));
    for (line, id) in lines[..3].iter().zip(1..) {
        assert!(line.contains(&format!("\"id\":{id}")), "{line}");
        assert!(line.contains(&want), "response {line} missing {want}");
        assert!(!line.contains("error"), "{line}");
    }
    // The cache-hit replay answers bit-identically to the cold run.
    assert!(lines[5].contains("\"id\":6"), "{}", lines[5]);
    assert!(lines[5].contains(&want), "cached response {} missing {want}", lines[5]);
    // Malformed requests get *structured* error responses (message +
    // machine-readable code, see docs/PROTOCOL.md §Errors), not dropped
    // connections — and a parseable id is echoed even on validation
    // failures, so pipelined clients can attribute the error line.
    assert!(lines[3].contains("\"error\""), "{}", lines[3]);
    assert!(lines[3].contains("\"id\":4"), "{}", lines[3]);
    assert!(lines[3].contains("\"code\":\"unknown_field\""), "{}", lines[3]);
    assert!(lines[4].contains("\"error\""), "{}", lines[4]);
    assert!(lines[4].contains("\"code\":\"parse_error\""), "{}", lines[4]);

    std::fs::remove_dir_all(&root).ok();
}

/// A bare `--index DIR` whose path contains '=' must still parse as a
/// directory, not be misread as a `name=dir` route (only simple names
/// before the '=' count as route names — docs/PROTOCOL.md §Routing).
#[test]
fn serve_accepts_bare_index_paths_containing_equals() {
    use std::io::Write;

    let root = temp_dir("eqpath");
    let data = root.join("data");
    let index = root.join("run=3").join("index");
    assert!(kbtim()
        .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
        .args(["--seed", "9", "--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());
    let mut child = kbtim()
        .args(["serve", "--index", index.to_str().unwrap()])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    writeln!(child.stdin.as_mut().unwrap(), r#"{{"id":1,"topics":[0,1],"k":4}}"#).unwrap();
    child.stdin.take();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"seeds\":["), "{stdout}");
    assert!(!stdout.contains("\"error\""), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

/// Multi-index routing through `kbtim serve --index name=dir` — the wire
/// behavior documented in docs/PROTOCOL.md §Routing: the first index is
/// the default route, `"index"` selects by name, unknown names and
/// unknown fields come back as structured errors.
#[test]
fn serve_routes_between_named_indexes() {
    use std::io::Write;

    let root = temp_dir("route");
    // Two genuinely different indexes (different graphs), so routing
    // mistakes change answers and the assertions below catch them.
    let mut oracle_seeds = Vec::new();
    for (name, seed) in [("alpha", 9), ("beta", 23)] {
        let data = root.join(format!("data-{name}"));
        let index = root.join(format!("index-{name}"));
        assert!(kbtim()
            .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
            .args(["--seed", &seed.to_string(), "--out", data.to_str().unwrap()])
            .status()
            .unwrap()
            .success());
        assert!(kbtim()
            .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
            .args(["--cap", "500", "--threads", "2"])
            .status()
            .unwrap()
            .success());
        let out = kbtim()
            .args(["query", "--index", index.to_str().unwrap()])
            .args(["--topics", "0,1", "--k", "5", "--algo", "rr"])
            .output()
            .unwrap();
        assert!(out.status.success());
        let seeds = String::from_utf8_lossy(&out.stdout)
            .lines()
            .next()
            .unwrap()
            .trim_start_matches("seeds: ")
            .replace(", ", ",");
        oracle_seeds.push(seeds);
    }
    assert_ne!(oracle_seeds[0], oracle_seeds[1], "distinct indexes must answer differently");

    let alpha = format!("alpha={}", root.join("index-alpha").display());
    let beta = format!("beta={}", root.join("index-beta").display());
    let mut child = kbtim()
        .args(["serve", "--index", &alpha, "--index", &beta])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        // 1: no "index" → default route (alpha, the first --index).
        writeln!(stdin, r#"{{"id":1,"topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
        // 2/3: explicit routing to each named index.
        writeln!(stdin, r#"{{"id":2,"index":"alpha","topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":3,"index":"beta","topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
        // 4: unknown index name → structured unknown_index error.
        writeln!(stdin, r#"{{"id":4,"index":"gamma","topics":[0]}}"#).unwrap();
        // 5: the "indx" typo must fail loudly, never route to default.
        writeln!(stdin, r#"{{"id":5,"indx":"beta","topics":[0]}}"#).unwrap();
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "one response per request line: {stdout}");

    let want_alpha = format!("\"seeds\":{}", oracle_seeds[0]);
    let want_beta = format!("\"seeds\":{}", oracle_seeds[1]);
    assert!(lines[0].contains(&want_alpha), "default route must hit alpha: {}", lines[0]);
    assert!(!lines[0].contains("\"index\""), "no routing field → no echo: {}", lines[0]);
    assert!(lines[1].contains(&want_alpha), "{}", lines[1]);
    assert!(lines[1].contains("\"index\":\"alpha\""), "{}", lines[1]);
    assert!(lines[2].contains(&want_beta), "{}", lines[2]);
    assert!(lines[2].contains("\"index\":\"beta\""), "{}", lines[2]);
    assert!(lines[3].contains("\"code\":\"unknown_index\""), "{}", lines[3]);
    assert!(lines[3].contains("alpha, beta"), "error must name the served indexes: {}", lines[3]);
    assert!(lines[4].contains("\"code\":\"unknown_field\""), "{}", lines[4]);
    assert!(lines[4].contains("\"id\":5"), "{}", lines[4]);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn lt_model_build_via_cli() {
    let root = temp_dir("lt");
    let data = root.join("data");
    let index = root.join("index");
    assert!(kbtim()
        .args(["gen", "--family", "twitter", "--users", "300", "--topics", "4"])
        .args(["--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--model", "lt", "--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());
    let out = kbtim().args(["validate", "--index", index.to_str().unwrap()]).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("model LT"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn bad_arguments_fail_cleanly() {
    // Unknown command.
    let out = kbtim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    // Missing required flag.
    let out = kbtim().args(["gen", "--family", "news"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--users"));
    // Bad enum value.
    let out = kbtim()
        .args(["gen", "--family", "myspace", "--users", "10", "--out", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Query against a missing index.
    let out = kbtim().args(["query", "--index", "/nonexistent", "--topics", "0"]).output().unwrap();
    assert!(!out.status.success());
    // Bad serving backend.
    let out = kbtim()
        .args(["query", "--index", "/nonexistent", "--topics", "0", "--serving", "floppy"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--serving"));
}

#[test]
fn help_prints_usage() {
    let out = kbtim().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
