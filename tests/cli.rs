//! Integration tests for the `kbtim` command-line tool, exercising the
//! full gen → stats → build → validate → query loop through the binary.

use std::path::PathBuf;
use std::process::Command;

fn kbtim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kbtim"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kbtim-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let root = temp_dir("workflow");
    let data = root.join("data");
    let index = root.join("index");

    // gen
    let out = kbtim()
        .args(["gen", "--family", "news", "--users", "400", "--topics", "6"])
        .args(["--seed", "5", "--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(data.join("graph.txt").is_file());
    assert!(data.join("profiles.tsv").is_file());

    // stats
    let out = kbtim()
        .args(["stats", "--graph", data.join("graph.txt").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edges:"), "{stdout}");

    // build
    let out = kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "800", "--threads", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "build failed: {}", String::from_utf8_lossy(&out.stderr));

    // validate
    let out = kbtim().args(["validate", "--index", index.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "validate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("ok:"));

    // query (both algorithms, same seeds by Theorem 3)
    let run_query = |algo: &str| -> String {
        let out = kbtim()
            .args(["query", "--index", index.to_str().unwrap()])
            .args(["--topics", "0,1", "--k", "8", "--algo", algo])
            .output()
            .unwrap();
        assert!(out.status.success(), "query failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        stdout.lines().next().unwrap_or_default().to_string()
    };
    let rr_seeds = run_query("rr");
    let irr_seeds = run_query("irr");
    assert!(rr_seeds.starts_with("seeds: ["), "{rr_seeds}");
    assert_eq!(rr_seeds, irr_seeds, "Theorem 3 via the CLI");

    // Every serving backend answers identically (and validates).
    for serving in ["file", "resident", "mmap"] {
        let out = kbtim()
            .args(["query", "--index", index.to_str().unwrap()])
            .args(["--topics", "0,1", "--k", "8", "--algo", "rr", "--serving", serving])
            .output()
            .unwrap();
        assert!(out.status.success(), "query --serving {serving} failed");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert_eq!(
            stdout.lines().next().unwrap_or_default(),
            rr_seeds,
            "serving {serving} must match the file backend"
        );
        let out = kbtim()
            .args(["validate", "--index", index.to_str().unwrap(), "--serving", serving])
            .output()
            .unwrap();
        assert!(out.status.success(), "validate --serving {serving} failed");
    }

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn serve_answers_line_protocol_requests() {
    use std::io::Write;

    let root = temp_dir("serve");
    let data = root.join("data");
    let index = root.join("index");
    assert!(kbtim()
        .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
        .args(["--seed", "9", "--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());

    // The serial oracle through the one-shot CLI.
    let oracle = kbtim()
        .args(["query", "--index", index.to_str().unwrap()])
        .args(["--topics", "0,1", "--k", "5", "--algo", "rr"])
        .output()
        .unwrap();
    assert!(oracle.status.success());
    let oracle_seeds = String::from_utf8_lossy(&oracle.stdout)
        .lines()
        .next()
        .unwrap()
        .trim_start_matches("seeds: ")
        .to_string();

    // Same queries through `kbtim serve` on stdin (memory algo enabled).
    let mut child = kbtim()
        .args(["serve", "--index", index.to_str().unwrap(), "--memory", "on"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, r#"{{"id":1,"topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":2,"topics":[0,1],"k":5,"algo":"irr"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":3,"topics":[0,1],"k":5,"algo":"memory"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":4,"nonsense":true}}"#).unwrap();
        writeln!(stdin, "this is not json").unwrap();
    } // stdin drops → EOF → clean exit
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "one response per request line: {stdout}");

    // rr, irr and memory all return the oracle's seeds (Theorem 3 + the
    // memory copy's bit-equality), tagged with their request ids.
    let want = format!("\"seeds\":{}", oracle_seeds.replace(", ", ","));
    for (line, id) in lines[..3].iter().zip(1..) {
        assert!(line.contains(&format!("\"id\":{id}")), "{line}");
        assert!(line.contains(&want), "response {line} missing {want}");
        assert!(!line.contains("error"), "{line}");
    }
    // Malformed requests get error responses, not dropped connections —
    // and a parseable id is echoed even on validation failures, so
    // pipelined clients can attribute the error line.
    assert!(lines[3].contains("\"error\""), "{}", lines[3]);
    assert!(lines[3].contains("\"id\":4"), "{}", lines[3]);
    assert!(lines[4].contains("\"error\""), "{}", lines[4]);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn lt_model_build_via_cli() {
    let root = temp_dir("lt");
    let data = root.join("data");
    let index = root.join("index");
    assert!(kbtim()
        .args(["gen", "--family", "twitter", "--users", "300", "--topics", "4"])
        .args(["--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--model", "lt", "--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());
    let out = kbtim().args(["validate", "--index", index.to_str().unwrap()]).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("model LT"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn bad_arguments_fail_cleanly() {
    // Unknown command.
    let out = kbtim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    // Missing required flag.
    let out = kbtim().args(["gen", "--family", "news"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--users"));
    // Bad enum value.
    let out = kbtim()
        .args(["gen", "--family", "myspace", "--users", "10", "--out", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Query against a missing index.
    let out = kbtim().args(["query", "--index", "/nonexistent", "--topics", "0"]).output().unwrap();
    assert!(!out.status.success());
    // Bad serving backend.
    let out = kbtim()
        .args(["query", "--index", "/nonexistent", "--topics", "0", "--serving", "floppy"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--serving"));
}

#[test]
fn help_prints_usage() {
    let out = kbtim().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
