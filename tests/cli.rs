//! Integration tests for the `kbtim` command-line tool, exercising the
//! full gen → stats → build → validate → query loop through the binary.

use std::path::PathBuf;
use std::process::Command;

fn kbtim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kbtim"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kbtim-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let root = temp_dir("workflow");
    let data = root.join("data");
    let index = root.join("index");

    // gen
    let out = kbtim()
        .args(["gen", "--family", "news", "--users", "400", "--topics", "6"])
        .args(["--seed", "5", "--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(data.join("graph.txt").is_file());
    assert!(data.join("profiles.tsv").is_file());

    // stats
    let out = kbtim()
        .args(["stats", "--graph", data.join("graph.txt").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edges:"), "{stdout}");

    // build
    let out = kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "800", "--threads", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "build failed: {}", String::from_utf8_lossy(&out.stderr));

    // validate
    let out = kbtim().args(["validate", "--index", index.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "validate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("ok:"));

    // query (both algorithms, same seeds by Theorem 3)
    let run_query = |algo: &str| -> String {
        let out = kbtim()
            .args(["query", "--index", index.to_str().unwrap()])
            .args(["--topics", "0,1", "--k", "8", "--algo", algo])
            .output()
            .unwrap();
        assert!(out.status.success(), "query failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        stdout.lines().next().unwrap_or_default().to_string()
    };
    let rr_seeds = run_query("rr");
    let irr_seeds = run_query("irr");
    assert!(rr_seeds.starts_with("seeds: ["), "{rr_seeds}");
    assert_eq!(rr_seeds, irr_seeds, "Theorem 3 via the CLI");

    // Every serving backend answers identically (and validates).
    for serving in ["file", "resident", "mmap"] {
        let out = kbtim()
            .args(["query", "--index", index.to_str().unwrap()])
            .args(["--topics", "0,1", "--k", "8", "--algo", "rr", "--serving", serving])
            .output()
            .unwrap();
        assert!(out.status.success(), "query --serving {serving} failed");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert_eq!(
            stdout.lines().next().unwrap_or_default(),
            rr_seeds,
            "serving {serving} must match the file backend"
        );
        let out = kbtim()
            .args(["validate", "--index", index.to_str().unwrap(), "--serving", serving])
            .output()
            .unwrap();
        assert!(out.status.success(), "validate --serving {serving} failed");
    }

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn serve_answers_line_protocol_requests() {
    use std::io::Write;

    let root = temp_dir("serve");
    let data = root.join("data");
    let index = root.join("index");
    assert!(kbtim()
        .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
        .args(["--seed", "9", "--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());

    // The serial oracle through the one-shot CLI.
    let oracle = kbtim()
        .args(["query", "--index", index.to_str().unwrap()])
        .args(["--topics", "0,1", "--k", "5", "--algo", "rr"])
        .output()
        .unwrap();
    assert!(oracle.status.success());
    let oracle_seeds = String::from_utf8_lossy(&oracle.stdout)
        .lines()
        .next()
        .unwrap()
        .trim_start_matches("seeds: ")
        .to_string();

    // Same queries through `kbtim serve` on stdin (memory algo enabled;
    // batching forced on so the planner path is exercised through the
    // wire — stdin serving defaults it off, see docs/PROTOCOL.md).
    let mut child = kbtim()
        .args(["serve", "--index", index.to_str().unwrap(), "--memory", "on", "--batch", "200"])
        .args(["--merge-cache", "8"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, r#"{{"id":1,"topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":2,"topics":[0,1],"k":5,"algo":"irr"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":3,"topics":[0,1],"k":5,"algo":"memory"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":4,"nonsense":true}}"#).unwrap();
        writeln!(stdin, "this is not json").unwrap();
        // A repeat of request 1: its keyword set is now resident in the
        // prepared-query cache, and the answer must be unchanged.
        writeln!(stdin, r#"{{"id":6,"topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
    } // stdin drops → EOF → clean exit
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("merge-cache 8 entries"),
        "banner must report the cache: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "one response per request line: {stdout}");

    // rr, irr and memory all return the oracle's seeds (Theorem 3 + the
    // memory copy's bit-equality), tagged with their request ids.
    let want = format!("\"seeds\":{}", oracle_seeds.replace(", ", ","));
    for (line, id) in lines[..3].iter().zip(1..) {
        assert!(line.contains(&format!("\"id\":{id}")), "{line}");
        assert!(line.contains(&want), "response {line} missing {want}");
        assert!(!line.contains("error"), "{line}");
    }
    // The cache-hit replay answers bit-identically to the cold run.
    assert!(lines[5].contains("\"id\":6"), "{}", lines[5]);
    assert!(lines[5].contains(&want), "cached response {} missing {want}", lines[5]);
    // Malformed requests get *structured* error responses (message +
    // machine-readable code, see docs/PROTOCOL.md §Errors), not dropped
    // connections — and a parseable id is echoed even on validation
    // failures, so pipelined clients can attribute the error line.
    assert!(lines[3].contains("\"error\""), "{}", lines[3]);
    assert!(lines[3].contains("\"id\":4"), "{}", lines[3]);
    assert!(lines[3].contains("\"code\":\"unknown_field\""), "{}", lines[3]);
    assert!(lines[4].contains("\"error\""), "{}", lines[4]);
    assert!(lines[4].contains("\"code\":\"parse_error\""), "{}", lines[4]);

    std::fs::remove_dir_all(&root).ok();
}

/// A bare `--index DIR` whose path contains '=' must still parse as a
/// directory, not be misread as a `name=dir` route (only simple names
/// before the '=' count as route names — docs/PROTOCOL.md §Routing).
#[test]
fn serve_accepts_bare_index_paths_containing_equals() {
    use std::io::Write;

    let root = temp_dir("eqpath");
    let data = root.join("data");
    let index = root.join("run=3").join("index");
    assert!(kbtim()
        .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
        .args(["--seed", "9", "--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());
    let mut child = kbtim()
        .args(["serve", "--index", index.to_str().unwrap()])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    writeln!(child.stdin.as_mut().unwrap(), r#"{{"id":1,"topics":[0,1],"k":4}}"#).unwrap();
    child.stdin.take();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"seeds\":["), "{stdout}");
    assert!(!stdout.contains("\"error\""), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

/// Multi-index routing through `kbtim serve --index name=dir` — the wire
/// behavior documented in docs/PROTOCOL.md §Routing: the first index is
/// the default route, `"index"` selects by name, unknown names and
/// unknown fields come back as structured errors.
#[test]
fn serve_routes_between_named_indexes() {
    use std::io::Write;

    let root = temp_dir("route");
    // Two genuinely different indexes (different graphs), so routing
    // mistakes change answers and the assertions below catch them.
    let mut oracle_seeds = Vec::new();
    for (name, seed) in [("alpha", 9), ("beta", 23)] {
        let data = root.join(format!("data-{name}"));
        let index = root.join(format!("index-{name}"));
        assert!(kbtim()
            .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
            .args(["--seed", &seed.to_string(), "--out", data.to_str().unwrap()])
            .status()
            .unwrap()
            .success());
        assert!(kbtim()
            .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
            .args(["--cap", "500", "--threads", "2"])
            .status()
            .unwrap()
            .success());
        let out = kbtim()
            .args(["query", "--index", index.to_str().unwrap()])
            .args(["--topics", "0,1", "--k", "5", "--algo", "rr"])
            .output()
            .unwrap();
        assert!(out.status.success());
        let seeds = String::from_utf8_lossy(&out.stdout)
            .lines()
            .next()
            .unwrap()
            .trim_start_matches("seeds: ")
            .replace(", ", ",");
        oracle_seeds.push(seeds);
    }
    assert_ne!(oracle_seeds[0], oracle_seeds[1], "distinct indexes must answer differently");

    let alpha = format!("alpha={}", root.join("index-alpha").display());
    let beta = format!("beta={}", root.join("index-beta").display());
    let mut child = kbtim()
        .args(["serve", "--index", &alpha, "--index", &beta])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        // 1: no "index" → default route (alpha, the first --index).
        writeln!(stdin, r#"{{"id":1,"topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
        // 2/3: explicit routing to each named index.
        writeln!(stdin, r#"{{"id":2,"index":"alpha","topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":3,"index":"beta","topics":[0,1],"k":5,"algo":"rr"}}"#).unwrap();
        // 4: unknown index name → structured unknown_index error.
        writeln!(stdin, r#"{{"id":4,"index":"gamma","topics":[0]}}"#).unwrap();
        // 5: the "indx" typo must fail loudly, never route to default.
        writeln!(stdin, r#"{{"id":5,"indx":"beta","topics":[0]}}"#).unwrap();
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "one response per request line: {stdout}");

    let want_alpha = format!("\"seeds\":{}", oracle_seeds[0]);
    let want_beta = format!("\"seeds\":{}", oracle_seeds[1]);
    assert!(lines[0].contains(&want_alpha), "default route must hit alpha: {}", lines[0]);
    assert!(!lines[0].contains("\"index\""), "no routing field → no echo: {}", lines[0]);
    assert!(lines[1].contains(&want_alpha), "{}", lines[1]);
    assert!(lines[1].contains("\"index\":\"alpha\""), "{}", lines[1]);
    assert!(lines[2].contains(&want_beta), "{}", lines[2]);
    assert!(lines[2].contains("\"index\":\"beta\""), "{}", lines[2]);
    assert!(lines[3].contains("\"code\":\"unknown_index\""), "{}", lines[3]);
    assert!(lines[3].contains("alpha, beta"), "error must name the served indexes: {}", lines[3]);
    assert!(lines[4].contains("\"code\":\"unknown_field\""), "{}", lines[4]);
    assert!(lines[4].contains("\"id\":5"), "{}", lines[4]);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn lt_model_build_via_cli() {
    let root = temp_dir("lt");
    let data = root.join("data");
    let index = root.join("index");
    assert!(kbtim()
        .args(["gen", "--family", "twitter", "--users", "300", "--topics", "4"])
        .args(["--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--model", "lt", "--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());
    let out = kbtim().args(["validate", "--index", index.to_str().unwrap()]).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("model LT"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn bad_arguments_fail_cleanly() {
    // Unknown command.
    let out = kbtim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    // Missing required flag.
    let out = kbtim().args(["gen", "--family", "news"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--users"));
    // Bad enum value.
    let out = kbtim()
        .args(["gen", "--family", "myspace", "--users", "10", "--out", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Query against a missing index.
    let out = kbtim().args(["query", "--index", "/nonexistent", "--topics", "0"]).output().unwrap();
    assert!(!out.status.success());
    // Bad serving backend.
    let out = kbtim()
        .args(["query", "--index", "/nonexistent", "--topics", "0", "--serving", "floppy"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--serving"));
}

#[test]
fn help_prints_usage() {
    let out = kbtim().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

/// Overload control, deadlines and the request-line cap over the real
/// wire (stdin mode): `--max-queue 0` sheds deterministically with
/// `overloaded`, `deadline_ms: 0` expires at admission, an oversized
/// line is shed with `bad_request` and the stream resyncs, and the
/// drain path reports final stats on stderr.
#[test]
fn serve_overload_deadline_and_line_cap() {
    use std::io::Write;

    let root = temp_dir("harden");
    let data = root.join("data");
    let index = root.join("index");
    assert!(kbtim()
        .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
        .args(["--seed", "9", "--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());

    // A reject-everything admission queue: every parsed request sheds.
    let mut child = kbtim()
        .args(["serve", "--index", index.to_str().unwrap(), "--max-queue", "0"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    writeln!(child.stdin.as_mut().unwrap(), r#"{{"id":1,"topics":[0,1],"k":4}}"#).unwrap();
    child.stdin.take();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"code\":\"overloaded\""), "{stdout}");
    assert!(stdout.contains("\"id\":1"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("max-queue 0"), "banner must report the bound: {stderr}");
    assert!(stderr.contains("drained (served=0 shed=1"), "final stats: {stderr}");

    // Deadlines and the line cap, on a serving queue that admits.
    let mut child = kbtim()
        .args(["serve", "--index", index.to_str().unwrap()])
        .args(["--deadline-ms", "30000", "--max-line", "256"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        // 1: generous server default deadline → normal answer.
        writeln!(stdin, r#"{{"id":1,"topics":[0,1],"k":4}}"#).unwrap();
        // 2: the request's own deadline_ms overrides — zero is expired
        // at admission, deterministically.
        writeln!(stdin, r#"{{"id":2,"topics":[0,1],"k":4,"deadline_ms":0}}"#).unwrap();
        // 3: an oversized line (no valid JSON needed) is shed…
        writeln!(stdin, "{}", "x".repeat(4096)).unwrap();
        // 4: …and the stream resyncs: the next request still answers.
        writeln!(stdin, r#"{{"id":4,"topics":[0,1],"k":4}}"#).unwrap();
    }
    child.stdin.take();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "one response per request line: {stdout}");
    assert!(lines[0].contains("\"seeds\""), "{}", lines[0]);
    assert!(lines[1].contains("\"code\":\"deadline_exceeded\""), "{}", lines[1]);
    assert!(lines[1].contains("\"id\":2"), "{}", lines[1]);
    assert!(lines[2].contains("\"code\":\"bad_request\""), "{}", lines[2]);
    assert!(lines[2].contains("exceeds 256 bytes"), "{}", lines[2]);
    assert!(lines[3].contains("\"seeds\""), "resync after the giant line: {}", lines[3]);
    assert!(lines[3].contains("\"id\":4"), "{}", lines[3]);

    // Environment arming end-to-end: a production process that never
    // calls the fault API programmatically must still honor
    // KBTIM_FAILPOINTS (regression: the inject fast path used to skip
    // registry init, leaving env arming dead in exactly this binary).
    let mut child = kbtim()
        .args(["serve", "--index", index.to_str().unwrap()])
        .env("KBTIM_FAILPOINTS", "engine.greedy=1*panic")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        // `rr` pins the path with the engine.greedy stage (solo IRR's
        // NRA interleaves its greedy with loading — no separate stage).
        writeln!(stdin, r#"{{"id":1,"topics":[0,1],"k":4,"algo":"rr"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":2,"topics":[0,1],"k":4,"algo":"rr"}}"#).unwrap();
    }
    child.stdin.take();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("\"code\":\"internal_error\""), "env-armed panic: {}", lines[0]);
    assert!(lines[1].contains("\"seeds\""), "contained, budget spent: {}", lines[1]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drained (served=1 shed=0"), "{stderr}");
    assert!(stderr.contains("panicked=1"), "{stderr}");

    std::fs::remove_dir_all(&root).ok();
}

/// TCP serving with graceful drain: concurrent connections answer the
/// same bytes as stdin mode, stdin-EOF flips the shutdown latch, the
/// nonblocking accept loop stops taking new work, and the process
/// exits cleanly with final stats.
#[test]
fn serve_tcp_drains_gracefully_on_stdin_eof() {
    use std::io::{BufRead, BufReader, Read, Write};

    let root = temp_dir("tcp");
    let data = root.join("data");
    let index = root.join("index");
    assert!(kbtim()
        .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
        .args(["--seed", "9", "--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());

    let mut child = kbtim()
        .args(["serve", "--index", index.to_str().unwrap(), "--listen", "127.0.0.1:0"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // The ephemeral port is announced on stderr.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(stderr.read_line(&mut line).unwrap() > 0, "server died before listening");
        if let Some(at) = line.find("listening on ") {
            break line[at + "listening on ".len()..].trim().to_string();
        }
    };

    // Two concurrent connections, a few requests each.
    let clients: Vec<_> = (0..2)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let stream = std::net::TcpStream::connect(&addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut answers = Vec::new();
                for id in 0..3 {
                    writeln!(writer, r#"{{"id":{id},"topics":[{c},1],"k":4}}"#).unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).unwrap();
                    answers.push(response);
                }
                answers
            })
        })
        .collect();
    for client in clients {
        for response in client.join().unwrap() {
            assert!(response.contains("\"seeds\""), "{response}");
            assert!(!response.contains("\"error\""), "{response}");
        }
    }

    // stdin EOF → drain → clean exit with final stats.
    child.stdin.take();
    let status = child.wait().unwrap();
    assert!(status.success(), "drain must exit cleanly");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("drained (served=6"), "final stats after 6 requests: {rest}");

    std::fs::remove_dir_all(&root).ok();
}

/// `--front-end` selection over the real binary: both TCP front ends
/// answer a pipelined burst with ids echoed (responses matched as a
/// set — the epoll loop does not promise cross-id ordering), the
/// banner names the active front end, every response carries it as a
/// `front_end` field, and flag validation fails cleanly.
#[test]
fn serve_front_end_selection_and_pipelining() {
    use std::io::{BufRead, BufReader, Read, Write};

    let root = temp_dir("frontend");
    let data = root.join("data");
    let index = root.join("index");
    assert!(kbtim()
        .args(["gen", "--family", "news", "--users", "300", "--topics", "4"])
        .args(["--seed", "9", "--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(kbtim()
        .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
        .args(["--cap", "500", "--threads", "2"])
        .status()
        .unwrap()
        .success());

    let front_ends: &[&str] =
        if cfg!(target_os = "linux") { &["epoll", "threads"] } else { &["threads"] };
    for fe in front_ends {
        let mut child = kbtim()
            .args(["serve", "--index", index.to_str().unwrap(), "--listen", "127.0.0.1:0"])
            .args(["--front-end", fe, "--max-conns", "64"])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let mut banner = String::new();
        let addr = loop {
            let mut line = String::new();
            assert!(stderr.read_line(&mut line).unwrap() > 0, "server died before listening");
            banner.push_str(&line);
            if let Some(at) = line.find("listening on ") {
                break line[at + "listening on ".len()..].trim().to_string();
            }
        };
        assert!(
            banner.contains(&format!("front-end {fe}")),
            "banner names the front end: {banner}"
        );

        // One pipelined burst: every request written before any
        // response is read.
        let stream = std::net::TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let ids: Vec<u64> = (10..16).collect();
        for id in &ids {
            writeln!(writer, r#"{{"id":{id},"topics":[0,1],"k":4}}"#).unwrap();
        }
        let mut seen = Vec::new();
        for _ in &ids {
            let mut response = String::new();
            assert!(reader.read_line(&mut response).unwrap() > 0, "server closed early");
            assert!(response.contains("\"seeds\""), "{response}");
            assert!(
                response.contains(&format!("\"front_end\":\"{fe}\"")),
                "responses report the active front end: {response}"
            );
            let at = response.find("\"id\":").expect("id echoed") + "\"id\":".len();
            let digits: String = response[at..].chars().take_while(char::is_ascii_digit).collect();
            seen.push(digits.parse::<u64>().unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, ids, "every pipelined request answered exactly once by id");

        drop(writer);
        drop(reader);
        child.stdin.take();
        let status = child.wait().unwrap();
        assert!(status.success(), "front end {fe} must drain cleanly");
        let mut rest = String::new();
        stderr.read_to_string(&mut rest).unwrap();
        assert!(rest.contains("drained (served=6"), "front end {fe} final stats: {rest}");
    }

    // Flag validation: --front-end without --listen, and a bad value.
    let out = kbtim()
        .args(["serve", "--index", index.to_str().unwrap(), "--front-end", "epoll"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--front-end requires --listen"));
    let out = kbtim()
        .args(["serve", "--index", index.to_str().unwrap()])
        .args(["--listen", "127.0.0.1:0", "--front-end", "kqueue"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--front-end must be"));
    // A zero outbox cap would shed every request with even one
    // response byte unflushed — reject the typo like the neighbors.
    let out = kbtim()
        .args(["serve", "--index", index.to_str().unwrap()])
        .args(["--listen", "127.0.0.1:0", "--outbox-cap", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--outbox-cap must be positive"));

    std::fs::remove_dir_all(&root).ok();
}
