//! Chaos gate for the hardened serving runtime: concurrent clients ×
//! randomly armed failpoints × every serving backend.
//!
//! The contract under injected faults:
//!
//! 1. every request gets exactly one response, and every response is
//!    parseable protocol JSON;
//! 2. nothing deadlocks or hangs (a global watchdog bounds the run);
//! 3. the server never dies — after the storm, the same engine answers
//!    fault-free requests bit-identically to the oracle;
//! 4. every *successful* answer under faults is bit-identical to the
//!    fault-free serial oracle (delays and retries may slow a query,
//!    but can never change it).
//!
//! Deterministic by construction: the vendored proptest derives its
//! case seed from the test name, and the failpoint registry draws from
//! a seeded counter hash, so a failing run replays exactly.

use kbtim::core::theta::SamplingConfig;
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, QueryEngine, ServingMode, ThetaMode,
};
use kbtim::propagation::model::IcModel;
use kbtim::serve::{handle_line, handle_line_ctx, Json, Router, ServeCtx};
use kbtim::storage::block::all_modes;
use kbtim::storage::{IoStats, TempDir};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The failpoint registry is process-global; the two storm tests must
/// not arm and reset it under each other. (A poisoned lock is fine —
/// the state is re-armed from scratch each case.)
static STORM_LOCK: Mutex<()> = Mutex::new(());

const NUM_CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 8;
const WATCHDOG: Duration = Duration::from_secs(120);

/// Valid request lines the clients cycle through. All succeed
/// fault-free (generous deadline on the one that carries one).
const LINES: [&str; 6] = [
    r#"{"id":1,"topics":[0,1],"k":5,"algo":"rr"}"#,
    r#"{"id":2,"topics":[1,2],"k":3,"algo":"irr"}"#,
    r#"{"id":3,"topics":[0,3],"k":8,"algo":"auto"}"#,
    r#"{"id":4,"topics":[2],"k":4}"#,
    r#"{"id":5,"topics":[0,1,2],"k":6,"deadline_ms":30000}"#,
    r#"{"id":6,"topics":[3],"k":2,"algo":"irr"}"#,
];

/// The faults a case may arm: bounded-probability errors, panics and
/// delays on every instrumented hot surface that can fire during a
/// query. Probabilities are low enough that some requests succeed.
const MENU: [(&str, &str); 7] = [
    ("storage.read", "30%err"),
    ("storage.crc", "10%err"),
    ("engine.decode", "30%err"),
    ("engine.merge", "20%err"),
    ("engine.greedy", "20%err"),
    ("engine.greedy", "15%panic"),
    ("exec.dispatch", "25%delay(200)"),
];

const DOCUMENTED_CODES: [&str; 9] = [
    "parse_error",
    "unknown_field",
    "bad_request",
    "unknown_index",
    "engine_error",
    "overloaded",
    "deadline_exceeded",
    "shutting_down",
    "internal_error",
];

fn index_dir() -> &'static TempDir {
    static DIR: OnceLock<TempDir> = OnceLock::new();
    DIR.get_or_init(|| {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(300)
            .num_topics(4)
            .seed(19)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(600),
                opt_initial_samples: 64,
                opt_max_rounds: 4,
                ..SamplingConfig::fast()
            },
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 16 },
            threads: 2,
            seed: 3,
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("chaos-fixture").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        dir
    })
}

/// Fault-free serial oracle: request line → the response's *answer*
/// fields. Answers are backend-invariant, so one map serves every mode.
fn oracle() -> &'static HashMap<&'static str, Vec<(String, Json)>> {
    static ORACLE: OnceLock<HashMap<&'static str, Vec<(String, Json)>>> = OnceLock::new();
    ORACLE.get_or_init(|| {
        // The oracle must be fault-free: drop anything the environment
        // armed (CI runs the suite under a global delay failpoint; the
        // storm below arms its own picks after this).
        kbtim_fault::reset();
        let index =
            KbtimIndex::open_with(index_dir().path(), IoStats::new(), ServingMode::File).unwrap();
        let router = Router::single(Arc::new(QueryEngine::new(Arc::new(index))));
        LINES
            .iter()
            .map(|&line| {
                let response = handle_line(&router, line);
                assert!(response.contains("\"seeds\""), "oracle for {line}: {response}");
                (line, answer_fields(&response))
            })
            .collect()
    })
}

/// The deterministic answer: every response field except the
/// wall-clock and the I/O-strategy counters (`rr_sets_loaded` depends
/// on whether the IRR path terminated early or a batch group loaded
/// the shared union — the *answer* must be identical either way).
fn answer_fields(response: &str) -> Vec<(String, Json)> {
    let Json::Obj(fields) = Json::parse(response).expect("responses are protocol JSON") else {
        panic!("response is not an object: {response}");
    };
    fields
        .into_iter()
        .filter(|(key, _)| !matches!(key.as_str(), "elapsed_us" | "rr_sets_loaded"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    #[test]
    fn concurrent_clients_survive_random_failpoints(
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 1..4),
        fault_seed in any::<u64>(),
        batching in any::<bool>(),
    ) {
        let _storm = STORM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let oracle = oracle();
        for mode in all_modes() {
            kbtim_fault::reset();

            // Build the engine fault-free (open paths have their own
            // dedicated tests); arm only once it serves.
            let index = KbtimIndex::open_with(index_dir().path(), IoStats::new(), mode).unwrap();
            let engine = QueryEngine::new(Arc::new(index))
                .with_batch_window(batching.then(|| Duration::from_micros(100)))
                .with_merge_cache(4);
            let router = Arc::new(Router::single(Arc::new(engine)));
            let ctx = Arc::new(ServeCtx::new(64, None));

            kbtim_fault::set_seed(fault_seed);
            for pick in &picks {
                let (name, spec) = MENU[pick.index(MENU.len())];
                kbtim_fault::arm(name, spec).unwrap();
            }

            let finished = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for client in 0..NUM_CLIENTS {
                let router = Arc::clone(&router);
                let ctx = Arc::clone(&ctx);
                let finished = Arc::clone(&finished);
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for r in 0..REQUESTS_PER_CLIENT {
                        let line = LINES[(client + r * 3) % LINES.len()];
                        got.push((line, handle_line_ctx(&router, &ctx, line)));
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                    got
                }));
            }

            // Global watchdog: a deadlock or hang fails loudly instead
            // of pinning the suite.
            let deadline = Instant::now() + WATCHDOG;
            while finished.load(Ordering::SeqCst) < NUM_CLIENTS {
                prop_assert!(
                    Instant::now() < deadline,
                    "watchdog: {} of {NUM_CLIENTS} clients finished on {mode} \
                     (armed: {:?}, seed {fault_seed})",
                    finished.load(Ordering::SeqCst),
                    picks.iter().map(|p| MENU[p.index(MENU.len())]).collect::<Vec<_>>(),
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            let mut responses = Vec::new();
            for handle in handles {
                let got = handle.join().expect("client threads never die");
                // Exactly one response per request.
                prop_assert_eq!(got.len(), REQUESTS_PER_CLIENT);
                responses.extend(got);
            }
            kbtim_fault::reset();

            let mut successes = 0usize;
            for (line, response) in &responses {
                let json = Json::parse(response);
                prop_assert!(json.is_ok(), "{mode}: unparseable response {response:?}");
                if response.contains("\"seeds\"") {
                    successes += 1;
                    prop_assert_eq!(
                        &answer_fields(response),
                        &oracle[line],
                        "{}: a successful answer under faults must be \
                         bit-identical to the fault-free oracle", mode
                    );
                } else {
                    let code = match json.unwrap().get("code") {
                        Some(Json::Str(code)) => code.clone(),
                        other => panic!("{mode}: error without code: {other:?}"),
                    };
                    prop_assert!(
                        DOCUMENTED_CODES.contains(&code.as_str()),
                        "{mode}: undocumented error code {code}"
                    );
                }
            }

            // The server never dies: the same engine, disarmed, answers
            // every line bit-identically to the oracle again.
            for &line in &LINES {
                prop_assert_eq!(
                    &answer_fields(&handle_line_ctx(&router, &ctx, line)),
                    &oracle[line],
                    "{}: engine must serve clean answers after the storm \
                     ({successes} of {} chaos requests had succeeded)",
                    mode, responses.len()
                );
            }
        }
    }
}

/// The same storm through the epoll front end over real TCP: pipelined
/// clients, random failpoints, responses matched by echoed id. Same
/// contract — one response per request, documented codes only, every
/// success bit-identical to the oracle, and the server outlives the
/// storm.
#[cfg(target_os = "linux")]
mod epoll_storm {
    use super::*;
    use kbtim::serve::{serve_epoll, EpollConfig};
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    /// `LINES` minus their fixed ids — pipelined clients need ids
    /// unique per connection to match responses back.
    const BODIES: [&str; 6] = [
        r#""topics":[0,1],"k":5,"algo":"rr""#,
        r#""topics":[1,2],"k":3,"algo":"irr""#,
        r#""topics":[0,3],"k":8,"algo":"auto""#,
        r#""topics":[2],"k":4"#,
        r#""topics":[0,1,2],"k":6,"deadline_ms":30000"#,
        r#""topics":[3],"k":2,"algo":"irr""#,
    ];

    /// Oracle keyed by body, id stripped from the answer.
    fn body_oracle() -> &'static HashMap<&'static str, Vec<(String, Json)>> {
        static ORACLE: OnceLock<HashMap<&'static str, Vec<(String, Json)>>> = OnceLock::new();
        ORACLE.get_or_init(|| {
            kbtim_fault::reset();
            let index =
                KbtimIndex::open_with(index_dir().path(), IoStats::new(), ServingMode::File)
                    .unwrap();
            let router = Router::single(Arc::new(QueryEngine::new(Arc::new(index))));
            BODIES
                .iter()
                .map(|&body| {
                    let response = handle_line(&router, &format!("{{{body}}}"));
                    assert!(response.contains("\"seeds\""), "oracle for {body}: {response}");
                    (body, strip_identity(answer_fields(&response)))
                })
                .collect()
        })
    }

    /// Drop the per-request and per-front-end fields so answers compare
    /// across ids and front ends.
    fn strip_identity(fields: Vec<(String, Json)>) -> Vec<(String, Json)> {
        fields.into_iter().filter(|(k, _)| !matches!(k.as_str(), "id" | "front_end")).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

        #[test]
        fn epoll_pipelined_clients_survive_random_failpoints(
            picks in proptest::collection::vec(any::<proptest::sample::Index>(), 1..4),
            fault_seed in any::<u64>(),
            batching in any::<bool>(),
        ) {
            let _storm = STORM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let oracle = body_oracle();
            kbtim_fault::reset();

            let index =
                KbtimIndex::open_with(index_dir().path(), IoStats::new(), ServingMode::Mmap)
                    .unwrap();
            let engine = QueryEngine::new(Arc::new(index))
                .with_batch_window(batching.then(|| Duration::from_micros(100)))
                .with_merge_cache(4);
            let router = Arc::new(Router::single(Arc::new(engine)));
            let ctx = Arc::new(ServeCtx::new(64, None).with_front_end("epoll"));
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = {
                let (router, ctx) = (Arc::clone(&router), Arc::clone(&ctx));
                std::thread::spawn(move || {
                    serve_epoll(listener, router, ctx, EpollConfig {
                        workers: 2,
                        ..EpollConfig::default()
                    })
                })
            };

            kbtim_fault::set_seed(fault_seed);
            for pick in &picks {
                let (name, spec) = MENU[pick.index(MENU.len())];
                kbtim_fault::arm(name, spec).unwrap();
            }

            let mut clients = Vec::new();
            for client in 0..NUM_CLIENTS {
                clients.push(std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    // Per-read watchdog: a hang fails loudly instead of
                    // pinning the suite.
                    stream.set_read_timeout(Some(WATCHDOG)).unwrap();
                    let mut want: HashMap<u64, &'static str> = HashMap::new();
                    let mut wire = String::new();
                    for r in 0..REQUESTS_PER_CLIENT {
                        let id = client as u64 * 1000 + r as u64;
                        let body = BODIES[(client + r * 3) % BODIES.len()];
                        wire.push_str(&format!("{{\"id\":{id},{body}}}\n"));
                        want.insert(id, body);
                    }
                    // The whole burst goes out before any response is
                    // read: full pipelining under faults.
                    stream.write_all(wire.as_bytes()).unwrap();
                    let mut reader = BufReader::new(stream);
                    let mut got = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    let mut line = String::new();
                    for _ in 0..REQUESTS_PER_CLIENT {
                        line.clear();
                        assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server closed early");
                        let response = line.trim().to_string();
                        let json = Json::parse(&response).expect("responses are protocol JSON");
                        let Some(Json::Num(id)) = json.get("id") else {
                            panic!("response without echoed id: {response}");
                        };
                        let body = want
                            .remove(&(*id as u64))
                            .expect("echoed id matches exactly one pending request");
                        got.push((body, response));
                    }
                    assert!(want.is_empty(), "every request answered exactly once");
                    got
                }));
            }

            let mut responses = Vec::new();
            for client in clients {
                let got = client.join().expect("client threads never die");
                prop_assert_eq!(got.len(), REQUESTS_PER_CLIENT);
                responses.extend(got);
            }
            kbtim_fault::reset();

            for (body, response) in &responses {
                let json = Json::parse(response).unwrap();
                prop_assert!(
                    matches!(json.get("front_end"), Some(Json::Str(s)) if s == "epoll"),
                    "every epoll response is tagged: {}", response
                );
                if response.contains("\"seeds\"") {
                    prop_assert_eq!(
                        &strip_identity(answer_fields(response)),
                        &oracle[body],
                        "a successful pipelined answer under faults must be \
                         bit-identical to the fault-free oracle"
                    );
                } else {
                    let code = match json.get("code") {
                        Some(Json::Str(code)) => code.clone(),
                        other => panic!("error without code: {other:?}"),
                    };
                    prop_assert!(
                        DOCUMENTED_CODES.contains(&code.as_str()),
                        "undocumented error code {}", code
                    );
                }
            }

            // The server outlives the storm: a fresh connection,
            // disarmed, gets oracle-exact answers for every body.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(WATCHDOG)).unwrap();
            let mut wire = String::new();
            for (i, body) in BODIES.iter().enumerate() {
                wire.push_str(&format!("{{\"id\":{},{body}}}\n", 90_000 + i));
            }
            stream.write_all(wire.as_bytes()).unwrap();
            let mut reader = BufReader::new(stream);
            let mut clean = 0;
            let mut line = String::new();
            for _ in 0..BODIES.len() {
                line.clear();
                assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server closed early");
                let response = line.trim();
                let json = Json::parse(response).unwrap();
                let Some(Json::Num(id)) = json.get("id") else {
                    panic!("response without echoed id: {response}");
                };
                let body = BODIES[*id as usize - 90_000];
                prop_assert_eq!(
                    &strip_identity(answer_fields(response)),
                    &oracle[body],
                    "the epoll server must serve clean answers after the storm"
                );
                clean += 1;
            }
            prop_assert_eq!(clean, BODIES.len());

            ctx.begin_shutdown();
            server.join().expect("serve loop thread").expect("serve loop exits cleanly");
        }
    }
}
