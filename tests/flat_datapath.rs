//! Property tests for the flat arena data path.
//!
//! The hot stages (sampling → inversion → greedy coverage → index
//! serving) now run on CSR arenas ([`RrBatch`], [`InvertedIndex`]) and a
//! word-packed coverage bitset. These tests pin the two contracts the
//! refactor rests on:
//!
//! 1. the arena representations are *lossless* — they round-trip through
//!    the Vec-of-Vec / HashMap oracles (`RrBatch::to_vecs`,
//!    `maxcover::invert`) on arbitrary instances;
//! 2. the bitset CELF loop is *bit-identical* to the naive full-recount
//!    oracle for every thread count.

use kbtim::core::invindex::InvertedIndex;
use kbtim::core::maxcover::{
    greedy_max_cover_batch, greedy_max_cover_naive, greedy_max_cover_with, invert,
};
use kbtim::propagation::RrBatch;
use kbtim_exec::ExecPool;
use proptest::prelude::*;

/// Random RR-set-shaped instances: sorted, deduplicated member lists.
fn rr_instances() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..120, 0..10), 0..150).prop_map(
        |mut sets| {
            for set in &mut sets {
                set.sort_unstable();
                set.dedup();
            }
            sets
        },
    )
}

/// Arbitrary instances: unsorted, possibly with duplicate members.
fn messy_instances() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..60, 0..8), 0..80)
}

proptest! {
    #[test]
    fn rr_batch_roundtrips_vec_of_vec(sets in rr_instances()) {
        let batch = RrBatch::from_sets(&sets);
        prop_assert_eq!(batch.len(), sets.len());
        prop_assert_eq!(batch.total_members(), sets.iter().map(Vec::len).sum::<usize>());
        prop_assert_eq!(batch.to_vecs(), sets);
    }

    #[test]
    fn rr_batch_append_is_concatenation(
        a in rr_instances(),
        b in rr_instances(),
    ) {
        let mut merged = RrBatch::from_sets(&a);
        merged.append(&RrBatch::from_sets(&b));
        let mut both = a;
        both.extend(b);
        prop_assert_eq!(merged, RrBatch::from_sets(&both));
    }

    #[test]
    fn inverted_index_matches_hashmap_oracle(sets in messy_instances()) {
        let inv = InvertedIndex::from_sets(&sets);
        let oracle = invert(&sets);
        prop_assert_eq!(inv.present().len(), oracle.len());
        prop_assert_eq!(
            inv.total_entries(),
            oracle.values().map(Vec::len).sum::<usize>()
        );
        for (&node, list) in &oracle {
            prop_assert_eq!(inv.list(node), list.as_slice(), "node {}", node);
        }
    }

    #[test]
    fn inverted_from_batch_matches_from_sets(sets in rr_instances()) {
        let batch = RrBatch::from_sets(&sets);
        prop_assert_eq!(InvertedIndex::from_batch(&batch), InvertedIndex::from_sets(&sets));
    }

    #[test]
    fn flat_celf_bit_identical_to_naive(sets in messy_instances(), k in 0u32..20) {
        let naive = greedy_max_cover_naive(&sets, k);
        for threads in [1usize, 2, 8] {
            let flat = greedy_max_cover_with(&sets, k, &ExecPool::new(Some(threads)));
            prop_assert_eq!(&flat, &naive, "threads {}", threads);
        }
    }

    #[test]
    fn batch_celf_bit_identical_to_naive(sets in rr_instances(), k in 0u32..20) {
        let batch = RrBatch::from_sets(&sets);
        let naive = greedy_max_cover_naive(&sets, k);
        for threads in [1usize, 4] {
            let flat = greedy_max_cover_batch(&batch, k, &ExecPool::new(Some(threads)));
            prop_assert_eq!(&flat, &naive, "threads {}", threads);
        }
    }
}
