//! Pipelining gate for the epoll front end: N requests in flight per
//! connection over real TCP, written in deliberately torn chunks,
//! responses matched back by the echoed `id` — and every successful
//! answer bit-identical to the fault-free serial oracle.
//!
//! Also the scale claim of the front end: thousands of mostly-idle
//! connections multiplexed onto a fixed worker pool while an active
//! client still gets correct answers.
#![cfg(target_os = "linux")]

use kbtim::core::theta::SamplingConfig;
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, QueryEngine, ServingMode, ThetaMode,
};
use kbtim::propagation::model::IcModel;
use kbtim::serve::{handle_line, serve_epoll, EpollConfig, Json, Router, ServeCtx};
use kbtim::storage::{IoStats, TempDir};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Request bodies (no `id`) the clients draw from. All succeed
/// fault-free; the oracle maps body → answer fields.
const BODIES: [&str; 5] = [
    r#""topics":[0,1],"k":5,"algo":"rr""#,
    r#""topics":[1,2],"k":3,"algo":"irr""#,
    r#""topics":[0,3],"k":8,"algo":"auto""#,
    r#""topics":[2],"k":4"#,
    r#""topics":[0,1,2],"k":6"#,
];

fn index_dir() -> &'static TempDir {
    static DIR: OnceLock<TempDir> = OnceLock::new();
    DIR.get_or_init(|| {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(300)
            .num_topics(4)
            .seed(23)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(600),
                opt_initial_samples: 64,
                opt_max_rounds: 4,
                ..SamplingConfig::fast()
            },
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 16 },
            threads: 2,
            seed: 7,
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("pipeline-fixture").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        dir
    })
}

/// Fault-free serial oracle: body → answer fields (id, wall-clock and
/// I/O counters stripped; answers are backend- and front-end-invariant).
fn oracle() -> &'static HashMap<&'static str, Vec<(String, Json)>> {
    static ORACLE: OnceLock<HashMap<&'static str, Vec<(String, Json)>>> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let index =
            KbtimIndex::open_with(index_dir().path(), IoStats::new(), ServingMode::File).unwrap();
        let router = Router::single(Arc::new(QueryEngine::new(Arc::new(index))));
        BODIES
            .iter()
            .map(|&body| {
                let response = handle_line(&router, &format!("{{{body}}}"));
                assert!(response.contains("\"seeds\""), "oracle for {body}: {response}");
                (body, answer_fields(&response))
            })
            .collect()
    })
}

/// Every response field except the echoed id, the wall-clock, the
/// front-end tag and the I/O-strategy counters — the deterministic
/// answer that must match across front ends and batching modes.
fn answer_fields(response: &str) -> Vec<(String, Json)> {
    let Json::Obj(fields) = Json::parse(response).expect("responses are protocol JSON") else {
        panic!("response is not an object: {response}");
    };
    fields
        .into_iter()
        .filter(|(key, _)| {
            !matches!(key.as_str(), "id" | "elapsed_us" | "rr_sets_loaded" | "front_end")
        })
        .collect()
}

struct Server {
    addr: SocketAddr,
    ctx: Arc<ServeCtx>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Server {
    /// Start an in-process epoll server over the shared fixture.
    fn start(batching: bool, cfg: EpollConfig) -> Server {
        let index =
            KbtimIndex::open_with(index_dir().path(), IoStats::new(), ServingMode::Mmap).unwrap();
        let engine = QueryEngine::new(Arc::new(index))
            .with_batch_window(batching.then(|| Duration::from_micros(100)));
        let router = Arc::new(Router::single(Arc::new(engine)));
        let ctx = Arc::new(ServeCtx::new(1024, None).with_front_end("epoll"));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = {
            let (router, ctx) = (Arc::clone(&router), Arc::clone(&ctx));
            std::thread::spawn(move || serve_epoll(listener, router, ctx, cfg))
        };
        Server { addr, ctx, handle: Some(handle) }
    }

    /// Begin the drain and wait for the loop to exit cleanly.
    fn shutdown(mut self) {
        self.ctx.begin_shutdown();
        self.handle.take().unwrap().join().expect("serve loop thread").expect("serve loop exits");
    }
}

/// One pipelined client: all requests written before any response is
/// read, in torn chunks, then responses collected and matched by id.
fn run_client(addr: SocketAddr, picks: &[usize], chunk: usize, id_base: u64) {
    let oracle = oracle();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();

    let mut wire = String::new();
    let mut want: HashMap<u64, &'static str> = HashMap::new();
    for (seq, &pick) in picks.iter().enumerate() {
        let id = id_base + seq as u64;
        let body = BODIES[pick % BODIES.len()];
        wire.push_str(&format!("{{\"id\":{id},{body}}}\n"));
        want.insert(id, body);
    }
    // Torn writes: the server's framer must reassemble lines split at
    // arbitrary byte boundaries, including mid-token.
    for piece in wire.as_bytes().chunks(chunk.max(1)) {
        stream.write_all(piece).unwrap();
        stream.flush().unwrap();
    }

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for _ in 0..picks.len() {
        line.clear();
        assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server closed early");
        let response = line.trim();
        let json = Json::parse(response).expect("responses are protocol JSON");
        let Some(Json::Num(id)) = json.get("id") else {
            panic!("response without echoed id: {response}");
        };
        let body = want.remove(&(*id as u64)).expect("echoed id matches exactly one request");
        assert!(response.contains("\"front_end\":\"epoll\""), "{response}");
        assert_eq!(
            answer_fields(response),
            oracle[body],
            "pipelined answer for id {id} must be bit-identical to the serial oracle"
        );
    }
    assert!(want.is_empty(), "every request answered exactly once");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Several connections, each with many requests in flight, written
    /// in randomly torn chunks; every response matched by id and
    /// bit-identical to the serial oracle, batching on or off.
    #[test]
    fn pipelined_responses_match_ids_and_oracle(
        per_conn in proptest::collection::vec(
            proptest::collection::vec(any::<usize>(), 1..24), 1..4),
        chunk in 1usize..64,
        batching in any::<bool>(),
    ) {
        let server = Server::start(batching, EpollConfig {
            workers: 2,
            ..EpollConfig::default()
        });
        let clients: Vec<_> = per_conn
            .iter()
            .enumerate()
            .map(|(c, picks)| {
                let picks = picks.clone();
                let addr = server.addr;
                std::thread::spawn(move || run_client(addr, &picks, chunk, c as u64 * 1000))
            })
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }
        server.shutdown();
    }
}

/// The scale claim: thousands of idle connections held open while an
/// active pipelined client still gets oracle-exact answers from a
/// fixed two-worker pool — connections are multiplexed, not threaded.
#[test]
fn thousands_of_idle_connections_do_not_starve_active_clients() {
    const IDLE: usize = 4096;
    let server = Server::start(
        true,
        EpollConfig { max_conns: IDLE + 64, workers: 2, ..EpollConfig::default() },
    );

    let mut idle = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        idle.push(TcpStream::connect(server.addr).unwrap_or_else(|e| {
            panic!("idle connect {i} failed: {e}");
        }));
    }

    // With every idle connection established and registered, an active
    // client pipelines a full mixed burst and gets exact answers.
    let picks: Vec<usize> = (0..32).collect();
    run_client(server.addr, &picks, 17, 500_000);

    drop(idle);
    server.shutdown();
}

/// Write backpressure: a client that pipelines a burst far past a tiny
/// `--outbox-cap` without reading must not grow the server's outbox
/// without bound — the loop pauses reading the connection at the cap
/// (the burst waits in kernel buffers as TCP backpressure) and resumes
/// as the client drains. Every request is still answered exactly once,
/// by id, with either the oracle answer or an `overloaded` shed; if
/// the `EPOLLIN` re-arm were broken the reads below would time out.
#[test]
fn outbox_cap_pauses_reads_and_resumes_as_client_drains() {
    const N: usize = 2000; // burst comfortably larger than one 64 KiB read chunk
    let server =
        Server::start(false, EpollConfig { workers: 2, outbox_cap: 512, ..EpollConfig::default() });
    let oracle = oracle();
    let stream = TcpStream::connect(server.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();

    // Write the whole burst from a separate thread: the test must not
    // deadlock against its own backpressure while it is not yet reading.
    let writer = {
        let mut stream = stream.try_clone().unwrap();
        std::thread::spawn(move || {
            let mut wire = String::new();
            for id in 0..N {
                wire.push_str(&format!("{{\"id\":{id},{}}}\n", BODIES[id % BODIES.len()]));
            }
            stream.write_all(wire.as_bytes()).unwrap();
            stream.flush().unwrap();
        })
    };

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut seen = vec![false; N];
    for _ in 0..N {
        line.clear();
        assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server closed early");
        let response = line.trim();
        let json = Json::parse(response).expect("responses are protocol JSON");
        let Some(Json::Num(id)) = json.get("id") else {
            panic!("response without echoed id: {response}");
        };
        let id = *id as usize;
        assert!(!seen[id], "duplicate response for id {id}");
        seen[id] = true;
        if let Some(Json::Str(code)) = json.get("code") {
            assert_eq!(code, "overloaded", "only backpressure sheds expected: {response}");
        } else {
            assert_eq!(
                answer_fields(response),
                oracle[BODIES[id % BODIES.len()]],
                "successful answer for id {id} must match the serial oracle"
            );
        }
    }
    writer.join().expect("writer thread");
    let (served, shed) = (server.ctx.served(), server.ctx.shed());
    server.shutdown();
    assert_eq!(served + shed, N as u64, "every request served or shed exactly once");
}

/// Draining with requests in flight: the client's already-written
/// burst is answered (or cleanly shed) before the loop exits, and the
/// served/shed books add up.
#[test]
fn drain_answers_inflight_pipeline_before_exit() {
    let server = Server::start(false, EpollConfig { workers: 1, ..EpollConfig::default() });
    let picks: Vec<usize> = (0..8).collect();
    run_client(server.addr, &picks, 9, 900_000);
    let served = server.ctx.served();
    server.shutdown();
    assert!(served >= 8, "all pipelined requests served before drain: {served}");
}
