//! Failure-surface tests driven by the `kbtim-fault` failpoint
//! registry: transient-I/O retry masking, backend degradation on open,
//! injected engine faults, panic containment, and the table of every
//! wire error code in `docs/PROTOCOL.md`.
//!
//! The failpoint registry is process-global, so every test that arms a
//! point holds [`GATE`] for its whole body and resets the registry on
//! entry and exit — the other integration binaries never arm anything.

use kbtim::core::theta::SamplingConfig;
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, QueryEngine, ServingMode, ThetaMode,
};
use kbtim::propagation::model::IcModel;
use kbtim::serve::{handle_line, handle_line_ctx, Json, Router, ServeCtx};
use kbtim::storage::segment::{SegmentReader, SegmentWriter};
use kbtim::storage::{BlockSource, IoStats, TempDir};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Serializes failpoint-arming tests (the registry is process-global).
static GATE: Mutex<()> = Mutex::new(());

/// Take the gate and start from a clean registry; the guard resets
/// again on drop so a panicking test cannot leak armed points.
fn armed_section() -> ArmedSection {
    let guard = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    kbtim_fault::reset();
    kbtim_fault::set_seed(42);
    ArmedSection { _guard: guard }
}

struct ArmedSection {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for ArmedSection {
    fn drop(&mut self) {
        kbtim_fault::reset();
    }
}

/// One small IRR index on disk, shared by every engine-level test.
fn index_dir() -> &'static TempDir {
    static DIR: OnceLock<TempDir> = OnceLock::new();
    DIR.get_or_init(|| {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(300)
            .num_topics(4)
            .seed(11)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(600),
                opt_initial_samples: 64,
                opt_max_rounds: 4,
                ..SamplingConfig::fast()
            },
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 16 },
            threads: 2,
            seed: 7,
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("faults-fixture").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        dir
    })
}

/// Drop the wall-clock field so responses can be compared bit-for-bit.
fn strip_elapsed(response: &str) -> String {
    match response.find(",\"elapsed_us\":") {
        Some(at) => {
            let rest = &response[at + ",\"elapsed_us\":".len()..];
            let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
            format!("{}{}", &response[..at], &rest[end..])
        }
        None => response.to_string(),
    }
}

fn open_engine(mode: ServingMode) -> Arc<QueryEngine> {
    let index = KbtimIndex::open_with(index_dir().path(), IoStats::new(), mode).unwrap();
    Arc::new(QueryEngine::new(Arc::new(index)))
}

fn write_segment(dir: &TempDir) -> std::path::PathBuf {
    let path = dir.path().join("seg.bin");
    let mut writer = SegmentWriter::create(&path).unwrap();
    writer.write_block("a", &[1, 2, 3, 4]).unwrap();
    writer.write_block("b", &[9; 100]).unwrap();
    writer.finish().unwrap();
    path
}

#[test]
fn transient_read_bursts_are_masked_by_retries() {
    let _section = armed_section();
    let dir = TempDir::new("faults-retry").unwrap();
    let path = write_segment(&dir);
    let reader = SegmentReader::open(&path, IoStats::new()).unwrap();

    // A burst of two transient failures sits inside the three-retry
    // budget: the read succeeds and the caller never sees the fault.
    kbtim_fault::arm("storage.read", "2*err").unwrap();
    assert_eq!(&*reader.read_block("a").unwrap(), &[1, 2, 3, 4]);
    assert_eq!(kbtim_fault::fires("storage.read"), 2, "both injected failures were retried");

    // An unbounded failure exhausts the retries and surfaces.
    kbtim_fault::arm("storage.read", "err").unwrap();
    let err = reader.read_block("a").unwrap_err();
    assert!(kbtim::storage::segment::is_transient(&err), "{err}");

    // Disarmed again, the reader still works — no state was poisoned.
    kbtim_fault::disarm("storage.read");
    assert_eq!(&*reader.read_block("b").unwrap(), &[9; 100]);
}

#[test]
fn open_degrades_mmap_to_resident_then_file() {
    let _section = armed_section();
    let dir = TempDir::new("faults-degrade").unwrap();
    let path = write_segment(&dir);

    // A failing mmap(2) setup degrades to the resident backend.
    kbtim_fault::arm("storage.map", "err").unwrap();
    let source = BlockSource::open(&path, IoStats::new(), ServingMode::Mmap).unwrap();
    assert_eq!(source.mode(), ServingMode::Resident, "mmap failure → resident");
    assert_eq!(&*source.read_block("a").unwrap(), &[1, 2, 3, 4]);

    // Two page-load failures in a row walk the whole chain down to
    // positioned file reads (whose own open is the third evaluation,
    // past the budget).
    kbtim_fault::arm("storage.open", "2*err").unwrap();
    let source = BlockSource::open(&path, IoStats::new(), ServingMode::Mmap).unwrap();
    assert_eq!(source.mode(), ServingMode::File, "mmap → resident → file");
    assert_eq!(&*source.read_block("b").unwrap(), &[9; 100]);

    // With every open failing, the error finally surfaces.
    kbtim_fault::arm("storage.open", "err").unwrap();
    assert!(BlockSource::open(&path, IoStats::new(), ServingMode::Mmap).is_err());
}

#[test]
fn corruption_is_fail_fast_and_never_degrades() {
    let _section = armed_section();
    let dir = TempDir::new("faults-crc").unwrap();
    let path = write_segment(&dir);

    for mode in kbtim::storage::block::all_modes() {
        kbtim_fault::reset();
        let source = BlockSource::open(&path, IoStats::new(), mode).unwrap();
        assert_eq!(source.mode(), mode);
        // One injected checksum mismatch fails the read immediately —
        // corruption is never retried and never degrades the backend.
        kbtim_fault::arm("storage.crc", "1*err").unwrap();
        let err = source.read_block("a").unwrap_err();
        assert!(err.to_string().contains("checksum"), "{mode}: {err}");
        assert!(!kbtim::storage::segment::is_transient(&err), "{mode}: corruption ≠ transient");
        // The failure was the injection, not real damage: with the
        // budget spent, the same handle re-verifies and serves.
        assert_eq!(&*source.read_block("a").unwrap(), &[1, 2, 3, 4], "{mode}");
    }
}

#[test]
fn injected_engine_faults_surface_and_scratch_books_survive() {
    let _section = armed_section();
    let engine = open_engine(ServingMode::Resident);
    let req =
        kbtim::index::EngineRequest { topics: vec![0, 1], k: 5, algo: kbtim::index::Algo::Auto };
    let baseline = engine.query(&req).unwrap();

    for point in ["engine.decode", "engine.merge", "engine.greedy"] {
        kbtim_fault::arm(point, "1*err").unwrap();
        let err = engine.query(&req).unwrap_err();
        assert!(err.to_string().contains(point), "{point}: {err}");
        // The early error path must have recycled every leased scratch
        // buffer: the next query runs on the same pool and is
        // bit-identical to the fault-free baseline.
        let again = engine.query(&req).unwrap();
        assert_eq!(again.seeds, baseline.seeds, "after {point}");
        assert_eq!(again.marginal_gains, baseline.marginal_gains, "after {point}");
        assert_eq!(again.coverage, baseline.coverage, "after {point}");
    }
}

#[test]
fn panicking_query_is_contained_and_engine_survives() {
    let _section = armed_section();
    let engine = open_engine(ServingMode::Resident);
    let router = Router::single(Arc::clone(&engine));
    let ctx = ServeCtx::unlimited();
    let line = r#"{"id":1,"topics":[0,1],"k":5}"#;
    let baseline = handle_line_ctx(&router, &ctx, line);
    assert!(baseline.contains("\"seeds\""), "{baseline}");

    // An armed `panic` action unwinds out of the greedy stage; the
    // serve boundary contains it as a structured internal_error…
    kbtim_fault::arm("engine.greedy", "1*panic").unwrap();
    let contained = handle_line_ctx(&router, &ctx, line);
    assert!(contained.contains("\"code\":\"internal_error\""), "{contained}");
    assert!(contained.contains("\"id\":1"), "{contained}");

    // …and the engine keeps serving bit-identical answers afterwards:
    // poisoned locks recovered, scratch and cache books consistent.
    for _ in 0..3 {
        assert_eq!(
            strip_elapsed(&handle_line_ctx(&router, &ctx, line)),
            strip_elapsed(&baseline),
            "engine must survive a panic"
        );
    }
}

#[test]
fn dispatch_panic_is_contained_too() {
    let _section = armed_section();
    let engine = open_engine(ServingMode::File);
    let router = Router::single(Arc::clone(&engine));
    let ctx = ServeCtx::unlimited();
    let line = r#"{"id":2,"topics":[0,1],"k":4,"algo":"rr"}"#;
    let baseline = handle_line_ctx(&router, &ctx, line);
    assert!(baseline.contains("\"seeds\""), "{baseline}");

    kbtim_fault::arm("exec.dispatch", "1*panic").unwrap();
    let contained = handle_line_ctx(&router, &ctx, line);
    assert!(contained.contains("\"code\":\"internal_error\""), "{contained}");
    assert_eq!(strip_elapsed(&handle_line_ctx(&router, &ctx, line)), strip_elapsed(&baseline));
}

/// Satellite: every error code documented in `docs/PROTOCOL.md` is
/// producible over the line protocol, and each response round-trips
/// through the protocol's own JSON parser with the expected code.
#[test]
fn every_documented_error_code_is_producible_and_round_trips() {
    let _section = armed_section();
    let engine = open_engine(ServingMode::Resident);
    let router = Router::single(engine);

    let unlimited = || ServeCtx::unlimited();
    let rejecting = || ServeCtx::new(0, None);
    let draining = || {
        let ctx = ServeCtx::unlimited();
        ctx.begin_shutdown();
        ctx
    };

    // (code, request line, serving context, failpoint to arm)
    type Case = (&'static str, &'static str, ServeCtx, Option<(&'static str, &'static str)>);
    let cases: Vec<Case> = vec![
        ("parse_error", "this is not json", unlimited(), None),
        ("unknown_field", r#"{"topics":[0],"frobnicate":1}"#, unlimited(), None),
        ("bad_request", r#"{"topics":"zero"}"#, unlimited(), None),
        ("unknown_index", r#"{"index":"nope","topics":[0]}"#, unlimited(), None),
        ("engine_error", r#"{"topics":[0]}"#, unlimited(), Some(("engine.decode", "1*err"))),
        ("overloaded", r#"{"id":7,"topics":[0]}"#, rejecting(), None),
        ("deadline_exceeded", r#"{"topics":[0],"deadline_ms":0}"#, unlimited(), None),
        ("shutting_down", r#"{"topics":[0]}"#, draining(), None),
        ("internal_error", r#"{"topics":[0]}"#, unlimited(), Some(("engine.greedy", "1*panic"))),
    ];
    for (code, line, ctx, failpoint) in cases {
        kbtim_fault::reset();
        if let Some((point, spec)) = failpoint {
            kbtim_fault::arm(point, spec).unwrap();
        }
        let response = handle_line_ctx(&router, &ctx, line);
        let json = Json::parse(&response)
            .unwrap_or_else(|e| panic!("{code}: response {response:?} is not JSON: {e}"));
        assert_eq!(
            json.get("code"),
            Some(&Json::Str(code.to_string())),
            "{line:?} must produce {code}: {response}"
        );
        assert!(json.get("error").is_some(), "{code}: {response}");
    }

    // Deadline errors also surface from *inside* the engine (not just
    // the admission check): an armed delay pushes execution past an
    // already-tight deadline.
    kbtim_fault::reset();
    kbtim_fault::arm("engine.merge", "delay(20000)").unwrap();
    let ctx = ServeCtx::new(usize::MAX, Some(Duration::from_millis(5)));
    let response = handle_line_ctx(&router, &ctx, r#"{"id":9,"topics":[0,1],"k":5}"#);
    assert!(response.contains("\"code\":\"deadline_exceeded\""), "{response}");

    // And the success path still renders after all that.
    kbtim_fault::reset();
    let ok = handle_line(&router, r#"{"topics":[0,1],"k":5}"#);
    assert!(ok.contains("\"seeds\""), "{ok}");
}

/// The epoll drain grace is a hard bound: with the engine wedged on a
/// long injected delay and a queue of requests stacked behind a single
/// worker, shutdown must complete within the grace (plus loop slack) —
/// the dispatcher abandons the queued work (dropping it as shed, which
/// releases the admission permits) and detaches rather than joins the
/// wedged worker, instead of draining the queue at one wedged query at
/// a time.
#[cfg(target_os = "linux")]
#[test]
fn epoll_drain_grace_bounds_wedged_queries() {
    use kbtim::serve::{serve_epoll, EpollConfig};
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    let _section = armed_section();
    // Every query sleeps 1.5 s inside the engine; draining the six
    // queued below would take ~9 s on the one worker.
    kbtim_fault::arm("engine.merge", "delay(1500000)").unwrap();

    let router = Arc::new(kbtim::serve::Router::single(open_engine(ServingMode::File)));
    let ctx = Arc::new(ServeCtx::new(1024, None).with_front_end("epoll"));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = {
        let (router, ctx) = (Arc::clone(&router), Arc::clone(&ctx));
        std::thread::spawn(move || {
            let cfg = EpollConfig {
                workers: 1,
                grace: Duration::from_millis(300),
                ..EpollConfig::default()
            };
            serve_epoll(listener, router, ctx, cfg)
        })
    };

    let mut client = TcpStream::connect(addr).unwrap();
    for id in 0..6 {
        writeln!(client, "{{\"id\":{id},\"topics\":[0,1],\"k\":5}}").unwrap();
    }
    client.flush().unwrap();
    // Let the burst be read and admitted (first query is then wedged
    // in its delay, the rest queued) before beginning the drain.
    std::thread::sleep(Duration::from_millis(300));
    let begun = Instant::now();
    ctx.begin_shutdown();
    handle.join().expect("serve loop thread").expect("serve loop exits");
    let elapsed = begun.elapsed();
    // Well under a single query's 1.5 s delay: shutdown waited for the
    // grace, not for the wedged query or the queue behind it.
    assert!(
        elapsed < Duration::from_millis(1400),
        "drain must be bounded by the grace, took {elapsed:?}"
    );
    // The five abandoned queue entries released their permits; only
    // the wedged query's own permit may still be held (its detached
    // worker is mid-delay).
    assert!(ctx.inflight() <= 1, "abandoned queue must release its permits: {}", ctx.inflight());
}

/// The drain contract for a dirty delta tier: when `kbtim serve` shuts
/// down (stdin EOF — the same drain path SIGTERM reaches) with
/// journaled-but-uncompacted writes, it either flushes them within the
/// drain grace — the index root advances one segment generation and
/// the stats line stays clean — or, when compaction cannot complete
/// (flush failpoints armed through the child's environment), the drain
/// stats report `unflushed=N` rather than claiming durability it does
/// not have. Failpoints are armed in the *child* via `KBTIM_FAILPOINTS`,
/// so this test never touches the in-process registry and needs no
/// [`GATE`].
#[test]
fn drain_with_dirty_delta_flushes_or_reports() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::{Command, Stdio};

    let root = std::env::temp_dir().join(format!("kbtim-faults-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let bin = env!("CARGO_BIN_EXE_kbtim");
    let data = root.join("data");
    assert!(Command::new(bin)
        .args(["gen", "--family", "news", "--users", "120", "--topics", "3"])
        .args(["--seed", "5", "--out", data.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // (label, failpoint spec for the child, expected stderr fragment)
    let cases: [(&str, Option<&str>, &str); 2] = [
        // Every flush attempt errors: the drain must not pretend the
        // journal was compacted.
        ("reporting", Some("flush.*=err"), " unflushed=2"),
        // No faults: the dirty journal compacts within the grace and
        // the stats line stays clean.
        ("flushing", None, "drained (served="),
    ];
    for (label, failpoints, fragment) in cases {
        let index = root.join(format!("index-{label}"));
        assert!(Command::new(bin)
            .args(["build", "--data", data.to_str().unwrap(), "--out", index.to_str().unwrap()])
            .args(["--cap", "300", "--threads", "2"])
            .status()
            .unwrap()
            .success());

        let mut cmd = Command::new(bin);
        cmd.args(["serve", "--index", index.to_str().unwrap()])
            .args(["--data", data.to_str().unwrap(), "--cap", "300"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if let Some(spec) = failpoints {
            cmd.env("KBTIM_FAILPOINTS", spec);
        }
        let mut child = cmd.spawn().unwrap();

        // Two mutations, acked before EOF, so the journal is dirty when
        // the drain begins.
        let mut stdin = child.stdin.take().unwrap();
        writeln!(stdin, r#"{{"id":1,"op":"ingest_user"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":2,"op":"set_topic_weight","user":120,"topic":1,"weight":0.7}}"#)
            .unwrap();
        let mut acks = BufReader::new(child.stdout.take().unwrap());
        for id in 1..=2 {
            let mut line = String::new();
            acks.read_line(&mut line).unwrap();
            assert!(line.contains(&format!("\"id\":{id},")), "{label}: ack missing: {line}");
            assert!(line.contains(&format!("\"unflushed\":{id}")), "{label}: {line}");
        }
        drop(stdin);
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "{label}: serve must still exit cleanly");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("drained ("), "{label}: no drain stats: {stderr}");
        assert!(stderr.contains(fragment), "{label}: want {fragment:?} in: {stderr}");

        // The on-disk outcome matches the report: a clean drain
        // committed generation 1; a failed one left the root at 0.
        let reopened = KbtimIndex::open(&index, IoStats::new()).unwrap();
        let want_gen = if failpoints.is_some() { 0 } else { 1 };
        assert_eq!(reopened.generation(), want_gen, "{label}: generation after drain");
        if failpoints.is_none() {
            assert!(
                !stderr.contains("unflushed="),
                "{label}: clean drain must not report: {stderr}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}
