//! Edge cases and failure handling across the public API.

use kbtim::core::{KbTimEngine, SamplingConfig};
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, ThetaMode};
use kbtim::propagation::model::IcModel;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::{Query, UserProfiles};
use kbtim_codec::Codec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn tiny_config() -> IndexBuildConfig {
    IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(600),
            opt_initial_samples: 32,
            opt_max_rounds: 4,
            ..SamplingConfig::fast()
        },
        codec: Codec::Packed,
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 10 },
        threads: 2,
        seed: 7,
        shards: 1,
    }
}

#[test]
fn k_larger_than_population() {
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(50).num_topics(3).seed(1).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let dir = TempDir::new("rob-bigk").unwrap();
    IndexBuilder::new(&model, &data.profiles, tiny_config()).build(dir.path()).unwrap();
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    let query = Query::new([0], 500);
    let rr = index.query_rr(&query).unwrap();
    let irr = index.query_irr(&query).unwrap();
    assert!(rr.seeds.len() <= 50);
    assert_eq!(rr.seeds, irr.seeds);
}

#[test]
fn query_topic_out_of_range_is_empty_not_panic() {
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(100).num_topics(3).seed(2).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let dir = TempDir::new("rob-oob").unwrap();
    IndexBuilder::new(&model, &data.profiles, tiny_config()).build(dir.path()).unwrap();
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    // Topic 99 does not exist in this index: skipped, empty outcome.
    let outcome = index.query_rr(&Query::new([99], 5)).unwrap();
    assert!(outcome.seeds.is_empty());
    assert_eq!(outcome.stats.theta_q, 0);
    // Mixed query: the valid keyword still answers.
    let outcome = index.query_rr(&Query::new([0, 99], 5)).unwrap();
    assert!(outcome.stats.theta_q > 0);
}

#[test]
fn single_user_graph() {
    let graph = kbtim::graph::Graph::from_edges(1, &[]);
    let profiles = UserProfiles::from_entries(1, 2, &[(0, 0, 1.0)]);
    let model = IcModel::weighted_cascade(&graph);
    let dir = TempDir::new("rob-single").unwrap();
    IndexBuilder::new(&model, &profiles, tiny_config()).build(dir.path()).unwrap();
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    let rr = index.query_rr(&Query::new([0], 1)).unwrap();
    assert_eq!(rr.seeds, vec![0]);
    let irr = index.query_irr(&Query::new([0], 1)).unwrap();
    assert_eq!(irr.seeds, vec![0]);
}

#[test]
fn engine_rejects_mismatched_profiles() {
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(60).num_topics(3).seed(3).build();
    let other = UserProfiles::from_entries(10, 3, &[(0, 0, 1.0)]);
    let result =
        std::panic::catch_unwind(|| KbTimEngine::new(&data.graph, &other, SamplingConfig::fast()));
    assert!(result.is_err(), "size mismatch must panic loudly");
}

#[test]
fn open_missing_directory_fails_cleanly() {
    let err = KbtimIndex::open("/nonexistent/kbtim-index", IoStats::new());
    assert!(err.is_err());
}

#[test]
fn empty_profile_dataset_builds_empty_index() {
    let graph = kbtim::graph::gen::cycle(20);
    let profiles = UserProfiles::from_entries(20, 4, &[]);
    let model = IcModel::weighted_cascade(&graph);
    let dir = TempDir::new("rob-empty").unwrap();
    let report = IndexBuilder::new(&model, &profiles, tiny_config()).build(dir.path()).unwrap();
    assert_eq!(report.total_theta, 0);
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
    let outcome = index.query_rr(&Query::new([0, 1, 2, 3], 5)).unwrap();
    assert!(outcome.seeds.is_empty());
}

#[test]
fn zero_probability_edges_confine_influence() {
    // With p = 0 everywhere, each user only ever covers their own RR sets.
    let graph = kbtim::graph::gen::complete(30);
    let entries: Vec<(u32, u32, f32)> = (0..30).map(|v| (v, 0u32, 1.0f32)).collect();
    let profiles = UserProfiles::from_entries(30, 1, &entries);
    let model = IcModel::uniform(&graph, 0.0);
    let mut rng = SmallRng::seed_from_u64(5);
    let engine_result = kbtim::core::wris::wris_query(
        &model,
        &profiles,
        &Query::new([0], 3),
        &SamplingConfig { theta_cap: Some(3_000), ..SamplingConfig::fast() },
        &mut rng,
    );
    // Influence of k seeds is exactly the seeds' own relevance: 3 users'
    // mass out of 30. Greedy picks the 3 *most-sampled* roots, so the
    // coverage estimate sits slightly above the uniform 3/30 baseline
    // (multinomial max order statistics) but can never be below it and
    // stays well under 2x at θ = 3000.
    let phi_q = profiles.phi_q(&Query::new([0], 3));
    let baseline = phi_q * 3.0 / 30.0;
    let est = engine_result.estimated_influence;
    assert!(est >= baseline * 0.999, "estimate {est} below baseline {baseline}");
    assert!(est <= baseline * 1.5, "estimate {est} too far above baseline {baseline}");
    assert_eq!(engine_result.seeds.len(), 3);
}
