//! Property tests for the paper's correctness theorems, randomized over
//! dataset shapes and build configurations.
//!
//! * **Theorem 3**: Algorithm 4 (IRR) returns seeds with the same coverage
//!   scores as Algorithm 2 (RR) — strengthened here to identical seed
//!   *sequences* because both share deterministic tie-breaking.
//! * Codec independence: Raw and Packed indexes answer identically.
//! * Determinism: a build seed fully determines the index bytes.

use kbtim::core::SamplingConfig;
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::index::{IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, ThetaMode};
use kbtim::propagation::model::IcModel;
use kbtim::storage::{IoStats, TempDir};
use kbtim::topics::Query;
use kbtim_codec::Codec;
use proptest::prelude::*;

fn build(
    data: &kbtim::datagen::Dataset,
    dir: &std::path::Path,
    partition_size: u32,
    codec: Codec,
    seed: u64,
) {
    let model = IcModel::weighted_cascade(&data.graph);
    let config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(1_200),
            opt_initial_samples: 64,
            opt_max_rounds: 5,
            ..SamplingConfig::fast()
        },
        codec,
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size },
        threads: 2,
        seed,
        shards: 1,
    };
    IndexBuilder::new(&model, &data.profiles, config).build(dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Theorem 3 across random graph sizes, topic counts, partition sizes
    /// and query shapes.
    #[test]
    fn theorem3_irr_equals_rr(
        users in 80u32..400,
        topics in 2u32..8,
        partition in 1u32..60,
        k in 1u32..25,
        family in prop_oneof![Just(DatasetFamily::News), Just(DatasetFamily::Twitter)],
        data_seed in 0u64..1000,
        build_seed in 0u64..1000,
    ) {
        let data = DatasetConfig::family(family)
            .num_users(users)
            .num_topics(topics)
            .seed(data_seed)
            .build();
        let dir = TempDir::new("prop-thm3").unwrap();
        build(&data, dir.path(), partition, Codec::Packed, build_seed);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();

        // Query over up to 3 held topics.
        let held: Vec<u32> =
            (0..topics).filter(|&w| data.profiles.doc_freq(w) > 0).collect();
        prop_assume!(!held.is_empty());
        let query = Query::new(held.into_iter().take(3), k);

        let rr = index.query_rr(&query).unwrap();
        let irr = index.query_irr(&query).unwrap();
        prop_assert_eq!(&rr.seeds, &irr.seeds);
        prop_assert_eq!(&rr.marginal_gains, &irr.marginal_gains);
        prop_assert_eq!(rr.coverage, irr.coverage);
        prop_assert!((rr.estimated_influence - irr.estimated_influence).abs() < 1e-9);
    }

    /// The list codec is an implementation detail: Raw and Packed indexes
    /// built from the same seed answer queries identically.
    #[test]
    fn codec_independence(
        users in 100u32..300,
        k in 1u32..15,
        seed in 0u64..500,
    ) {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(users)
            .num_topics(5)
            .seed(seed)
            .build();
        let dir_raw = TempDir::new("prop-raw").unwrap();
        let dir_packed = TempDir::new("prop-packed").unwrap();
        build(&data, dir_raw.path(), 20, Codec::Raw, seed);
        build(&data, dir_packed.path(), 20, Codec::Packed, seed);
        let raw = KbtimIndex::open(dir_raw.path(), IoStats::new()).unwrap();
        let packed = KbtimIndex::open(dir_packed.path(), IoStats::new()).unwrap();

        let held: Vec<u32> = (0..5).filter(|&w| data.profiles.doc_freq(w) > 0).collect();
        prop_assume!(!held.is_empty());
        let query = Query::new(held.into_iter().take(2), k);
        let a = raw.query_rr(&query).unwrap();
        let b = packed.query_rr(&query).unwrap();
        prop_assert_eq!(a.seeds, b.seeds);
        prop_assert_eq!(a.coverage, b.coverage);
        let a = raw.query_irr(&query).unwrap();
        let b = packed.query_irr(&query).unwrap();
        prop_assert_eq!(a.seeds, b.seeds);
    }
}

/// A fixed build seed determines the index bit-for-bit, regardless of
/// thread count (regression guard for the parallel builder).
#[test]
fn deterministic_builds() {
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(400).num_topics(6).seed(3).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let mut digests = Vec::new();
    for threads in [1usize, 8] {
        let dir = TempDir::new("prop-det").unwrap();
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(1_000),
                opt_initial_samples: 64,
                opt_max_rounds: 5,
                ..SamplingConfig::fast()
            },
            threads,
            seed: 12345,
            ..IndexBuildConfig::default()
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "seg"))
            .map(|e| {
                (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
            })
            .collect();
        files.sort();
        digests.push(files);
    }
    assert_eq!(digests[0].len(), digests[1].len());
    for (a, b) in digests[0].iter().zip(digests[1].iter()) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "segment {} differs across thread counts", a.0);
    }
}
