//! Property tests for segment-file round trips and range reads.

use kbtim_storage::segment::{SegmentReader, SegmentWriter};
use kbtim_storage::{IoStats, TempDir};
use proptest::prelude::*;

fn blocks() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    proptest::collection::vec(("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..512)), 0..8)
        .prop_map(|mut blocks| {
            // Unique names (duplicates are a writer error by design).
            blocks.sort_by(|a, b| a.0.cmp(&b.0));
            blocks.dedup_by(|a, b| a.0 == b.0);
            blocks
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Whatever is written comes back, block by block, checksum-verified.
    #[test]
    fn segment_roundtrip(blocks in blocks()) {
        let dir = TempDir::new("seg-prop").unwrap();
        let path = dir.path().join("seg.bin");
        let mut writer = SegmentWriter::create(&path).unwrap();
        for (name, data) in &blocks {
            writer.write_block(name, data).unwrap();
        }
        writer.finish().unwrap();

        let reader = SegmentReader::open(&path, IoStats::new()).unwrap();
        prop_assert_eq!(reader.blocks().len(), blocks.len());
        for (name, data) in &blocks {
            prop_assert_eq!(&reader.read_block(name).unwrap(), data);
            prop_assert_eq!(reader.block_len(name).unwrap(), data.len() as u64);
        }
    }

    /// Arbitrary in-bounds range reads return exactly the right bytes.
    #[test]
    fn range_reads_match_slices(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        cuts in proptest::collection::vec((0usize..2048, 0usize..512), 1..10),
    ) {
        let dir = TempDir::new("seg-prop-range").unwrap();
        let path = dir.path().join("seg.bin");
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.write_block("data", &data).unwrap();
        writer.finish().unwrap();

        let reader = SegmentReader::open(&path, IoStats::new()).unwrap();
        for (start, len) in cuts {
            let start = start % data.len();
            let len = len.min(data.len() - start);
            let got = reader.read_range("data", start as u64, len as u64).unwrap();
            prop_assert_eq!(&got[..], &data[start..start + len]);
        }
    }

    /// Any single-bit flip in the payload area is caught by a whole-block
    /// read (or by open, if it lands in the framing).
    #[test]
    fn bit_flips_never_pass_silently(
        data in proptest::collection::vec(any::<u8>(), 8..256),
        flip_at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let dir = TempDir::new("seg-prop-flip").unwrap();
        let path = dir.path().join("seg.bin");
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.write_block("data", &data).unwrap();
        writer.finish().unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let idx = flip_at.index(bytes.len());
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        match SegmentReader::open(&path, IoStats::new()) {
            Err(_) => {} // framing/directory damage detected at open
            Ok(reader) => match reader.read_block("data") {
                Err(_) => {} // checksum mismatch detected at read
                Ok(read_back) => {
                    // The flip landed outside both the directory and this
                    // block's payload+checksum coverage is impossible: the
                    // whole file is either framing (validated) or payload
                    // (checksummed). The only legal success is... none.
                    prop_assert!(
                        read_back == data,
                        "corrupted data returned without error"
                    );
                    // If data matches, the flip must have hit padding that
                    // does not exist in this format — fail loudly so we
                    // notice if the format ever grows unchecked regions.
                    prop_assert!(false, "flip at byte {idx} bit {bit} went undetected");
                }
            },
        }
    }
}
