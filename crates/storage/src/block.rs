//! The zero-copy serving tier: one [`BlockSource`] behind every query path.
//!
//! The paper charges every query for the bytes and positioned reads it
//! performs (Table 6, Figures 5–7), which the positioned-file
//! [`SegmentReader`] models faithfully — but a production serving tier
//! wants the opposite trade: segments that are already resident should
//! hand out **borrowed `&[u8]` views** of their pages instead of copying
//! every block into a fresh allocation. [`BlockSource`] is that seam. It
//! exposes the same named-block/range API as [`SegmentReader`] over three
//! backends selected by [`ServingMode`]:
//!
//! * [`ServingMode::File`] — the existing positioned-read path: every
//!   access copies into a buffer and is counted as read ops/bytes/seeks.
//!   The faithful-measurement backend.
//! * [`ServingMode::Resident`] — the segment is loaded **once** into a
//!   shared page arena at open; block and range views borrow from it.
//!   Accesses are counted as `cache_hits`/`bytes_served`, never as reads.
//! * [`ServingMode::Mmap`] — like `Resident`, but the arena is a
//!   read-only `mmap(2)` of the file (Linux; other platforms silently
//!   fall back to `Resident`). Pages are shared with the kernel cache,
//!   so a disk index and an in-memory serving copy cost the bytes once.
//!
//! Integrity: the `File` backend verifies a block's CRC on every
//! `read_block`, exactly as before. The zero-copy backends verify each
//! block's CRC **once, on first access** (block *or* range — range reads
//! are therefore checksummed here, which the file backend cannot do), and
//! remember the verification in an atomic flag; a flipped byte anywhere
//! in a block's payload is rejected on every backend before any caller
//! decodes it.

use crate::cache::PageCache;
use crate::segment::{parse_segment_slice, BlockEntry, BlockInfo, SegmentReader};
use crate::segment::{Result, StorageError};
use crate::{crc32, IoStats};
use std::fs::File;
use std::io::Read;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which backend a [`BlockSource`] serves from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServingMode {
    /// Positioned, counted, copying file reads (the measurement backend).
    #[default]
    File,
    /// Whole segment loaded once into a heap page arena; zero-copy views.
    Resident,
    /// Read-only memory mapping (Linux); falls back to `Resident` where
    /// the shim is unavailable.
    Mmap,
}

impl ServingMode {
    /// Parse the CLI spelling (`file` / `resident` / `mmap`).
    pub fn parse(s: &str) -> Option<ServingMode> {
        match s {
            "file" => Some(ServingMode::File),
            "resident" => Some(ServingMode::Resident),
            "mmap" => Some(ServingMode::Mmap),
            _ => None,
        }
    }

    /// Stable lowercase name (the CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            ServingMode::File => "file",
            ServingMode::Resident => "resident",
            ServingMode::Mmap => "mmap",
        }
    }
}

impl std::fmt::Display for ServingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A block or range view returned by [`BlockSource`]: borrowed straight
/// from the page arena on zero-copy backends, owned on the file backend.
///
/// Dereferences to `[u8]`; decoders take `&[u8]` and never know which
/// backend produced the bytes.
#[derive(Debug)]
pub enum BlockView<'a> {
    /// Bytes copied out of the file by a positioned read.
    Owned(Vec<u8>),
    /// Bytes borrowed from the source's resident/mapped pages.
    Borrowed(&'a [u8]),
}

impl Deref for BlockView<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            BlockView::Owned(v) => v,
            BlockView::Borrowed(s) => s,
        }
    }
}

impl AsRef<[u8]> for BlockView<'_> {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// The pages a zero-copy segment serves from.
enum Backing {
    /// Segment bytes read once onto the heap.
    Heap(Vec<u8>),
    /// Read-only kernel mapping of the segment file.
    #[cfg(target_os = "linux")]
    Map(crate::mmap::MmapRegion),
}

impl Backing {
    fn as_slice(&self) -> &[u8] {
        match self {
            Backing::Heap(bytes) => bytes,
            #[cfg(target_os = "linux")]
            Backing::Map(region) => region.as_slice(),
        }
    }
}

/// The shareable core of a resident/mapped segment: one page arena, the
/// parsed directory and the per-block first-access CRC verification
/// flags.
///
/// This is the unit a [`PageCache`] dedupes — N handles of one segment
/// hold `Arc`s to a single `SegmentPages`, so the bytes (and the
/// verification work) exist once per process while per-handle state
/// ([`IoStats`], serving mode) stays with each [`BlockSource`]. Sharing
/// the `verified` flags is sound because they describe the bytes, not
/// the handle: a block verified through one handle *is* verified for
/// every other handle of the same pages.
pub(crate) struct SegmentPages {
    backing: Backing,
    entries: Vec<BlockEntry>,
    /// `verified[i]` — block `i`'s payload CRC has been checked against
    /// the directory. Relaxed ordering suffices: re-verifying a block on
    /// a race is correct, just redundant.
    verified: Vec<AtomicBool>,
}

impl SegmentPages {
    /// Load (or map) the whole segment at `path` for the given zero-copy
    /// mode.
    pub(crate) fn load(path: &Path, mode: ServingMode) -> Result<SegmentPages> {
        if kbtim_fault::inject("storage.open") {
            return Err(crate::segment::injected_io("storage.open"));
        }
        let backing = match mode {
            ServingMode::Resident => {
                let mut file = File::open(path)?;
                let mut bytes = Vec::new();
                file.read_to_end(&mut bytes)?;
                Backing::Heap(bytes)
            }
            ServingMode::Mmap => {
                if kbtim_fault::inject("storage.map") {
                    return Err(crate::segment::injected_io("storage.map"));
                }
                #[cfg(target_os = "linux")]
                {
                    let file = File::open(path)?;
                    let region = crate::mmap::MmapRegion::map(&file)?;
                    // Queries will touch this mapping soon (start
                    // readahead now) and then access blocks/ranges in
                    // effectively random order (stop speculative
                    // readahead afterwards). Both are best-effort hints.
                    region.advise(crate::mmap::MmapAdvice::WillNeed);
                    region.advise(crate::mmap::MmapAdvice::Random);
                    Backing::Map(region)
                }
                #[cfg(not(target_os = "linux"))]
                {
                    let mut file = File::open(path)?;
                    let mut bytes = Vec::new();
                    file.read_to_end(&mut bytes)?;
                    Backing::Heap(bytes)
                }
            }
            ServingMode::File => unreachable!("file mode uses SegmentReader"),
        };
        let entries = parse_segment_slice(backing.as_slice())?;
        let verified = entries.iter().map(|_| AtomicBool::new(false)).collect();
        Ok(SegmentPages { backing, entries, verified })
    }

    /// Size of the resident arena / mapping in bytes.
    pub(crate) fn len(&self) -> usize {
        self.backing.as_slice().len()
    }

    fn entry_index(&self, name: &str) -> Result<usize> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| StorageError::MissingBlock(name.to_string()))
    }

    /// The whole payload of block `i`, CRC-verified on first access.
    fn verified_payload(&self, i: usize) -> Result<&[u8]> {
        let entry = &self.entries[i];
        let payload =
            &self.backing.as_slice()[entry.offset as usize..(entry.offset + entry.len) as usize];
        if !self.verified[i].load(Ordering::Relaxed) {
            if kbtim_fault::inject("storage.crc") || crc32::checksum(payload) != entry.crc {
                return Err(StorageError::Corrupt(format!(
                    "checksum mismatch in block {}",
                    entry.name
                )));
            }
            self.verified[i].store(true, Ordering::Relaxed);
        }
        Ok(payload)
    }
}

/// One handle's view of a resident or mapped segment: shared pages plus
/// the handle-private accounting.
struct ZeroCopySegment {
    pages: Arc<SegmentPages>,
    stats: IoStats,
    path: PathBuf,
    mode: ServingMode,
}

impl ZeroCopySegment {
    fn read_block(&self, name: &str) -> Result<&[u8]> {
        let i = self.pages.entry_index(name)?;
        let payload = self.pages.verified_payload(i)?;
        self.stats.record_served(payload.len() as u64);
        Ok(payload)
    }

    fn read_range(&self, name: &str, offset: u64, len: u64) -> Result<&[u8]> {
        let i = self.pages.entry_index(name)?;
        let entry_len = self.pages.entries[i].len;
        if offset.checked_add(len).is_none_or(|end| end > entry_len) {
            return Err(StorageError::RangeOutOfBounds {
                block: name.to_string(),
                offset,
                len,
                block_len: entry_len,
            });
        }
        let payload = self.pages.verified_payload(i)?;
        self.stats.record_served(len);
        Ok(&payload[offset as usize..(offset + len) as usize])
    }
}

/// One segment served through a backend-neutral block/range-view API.
///
/// Every method mirrors [`SegmentReader`]; the only behavioral difference
/// between backends is *where the bytes come from* and *which counters
/// record the access* — payload bytes, checksum outcomes, and errors are
/// identical, which the serving-equivalence proptests enforce.
pub struct BlockSource {
    inner: SourceInner,
}

enum SourceInner {
    File(SegmentReader),
    ZeroCopy(ZeroCopySegment),
}

impl BlockSource {
    /// Open `path` with the requested backend, loading a private copy of
    /// the pages (zero-copy modes). See [`BlockSource::open_shared`] for
    /// the deduplicating variant.
    ///
    /// `Mmap` falls back to `Resident` on non-Linux targets (the views
    /// and counters are identical; only the page owner differs).
    ///
    /// A backend that fails to *open* with an I/O error degrades
    /// gracefully instead of failing the caller: `Mmap` → `Resident` →
    /// `File` (served bytes are identical on every backend, so the
    /// answer cannot change — only the counters and residency do).
    /// Structural errors ([`StorageError::Corrupt`]) never degrade: the
    /// data is damaged the same way on every backend.
    pub fn open(path: impl AsRef<Path>, stats: IoStats, mode: ServingMode) -> Result<BlockSource> {
        let path = path.as_ref();
        let mut mode = mode;
        loop {
            match Self::open_exact(path, stats.clone(), mode) {
                Ok(source) => return Ok(source),
                Err(e) => mode = degraded_mode(path, mode, e)?,
            }
        }
    }

    fn open_exact(path: &Path, stats: IoStats, mode: ServingMode) -> Result<BlockSource> {
        let inner = match mode {
            ServingMode::File => SourceInner::File(SegmentReader::open(path, stats)?),
            ServingMode::Resident | ServingMode::Mmap => SourceInner::ZeroCopy(ZeroCopySegment {
                pages: Arc::new(SegmentPages::load(path, mode)?),
                stats,
                path: path.to_path_buf(),
                mode,
            }),
        };
        Ok(BlockSource { inner })
    }

    /// [`BlockSource::open`] through a [`PageCache`]: if the cache
    /// already holds live pages for this segment (same file, same
    /// zero-copy mode), this handle shares them instead of loading its
    /// own copy — N open handles, one resident arena/mapping.
    ///
    /// Sharing is invisible in behavior: payload bytes, checksum
    /// outcomes and errors are identical, and `stats` still counts only
    /// *this* handle's accesses. `File` mode is never cached (it keeps
    /// nothing resident).
    pub fn open_shared(
        path: impl AsRef<Path>,
        stats: IoStats,
        mode: ServingMode,
        cache: &PageCache,
    ) -> Result<BlockSource> {
        let path = path.as_ref();
        let mut mode = mode;
        loop {
            let attempt = (|| {
                let inner = match mode {
                    ServingMode::File => {
                        SourceInner::File(SegmentReader::open(path, stats.clone())?)
                    }
                    ServingMode::Resident | ServingMode::Mmap => {
                        SourceInner::ZeroCopy(ZeroCopySegment {
                            pages: cache.get_or_load(path, mode)?,
                            stats: stats.clone(),
                            path: path.to_path_buf(),
                            mode,
                        })
                    }
                };
                Ok(BlockSource { inner })
            })();
            match attempt {
                Ok(source) => return Ok(source),
                Err(e) => mode = degraded_mode(path, mode, e)?,
            }
        }
    }

    /// Stable identity of the resident page arena this handle serves
    /// from: the arena's base address, or 0 for the file backend. Two
    /// handles deduped through one [`PageCache`] report the same value —
    /// the observable form of "one resident copy".
    pub fn pages_addr(&self) -> usize {
        match &self.inner {
            SourceInner::File(_) => 0,
            SourceInner::ZeroCopy(z) => z.pages.backing.as_slice().as_ptr() as usize,
        }
    }

    /// Wrap an already-open positioned reader as a `File`-mode source.
    pub fn from_reader(reader: SegmentReader) -> BlockSource {
        BlockSource { inner: SourceInner::File(reader) }
    }

    /// The backend this source serves from.
    pub fn mode(&self) -> ServingMode {
        match &self.inner {
            SourceInner::File(_) => ServingMode::File,
            SourceInner::ZeroCopy(z) => z.mode,
        }
    }

    /// Names and sizes of every block.
    pub fn blocks(&self) -> Vec<BlockInfo> {
        match &self.inner {
            SourceInner::File(r) => r.blocks(),
            SourceInner::ZeroCopy(z) => z
                .pages
                .entries
                .iter()
                .map(|e| BlockInfo { name: e.name.clone(), len: e.len })
                .collect(),
        }
    }

    /// Length of a named block's payload in bytes.
    pub fn block_len(&self, name: &str) -> Result<u64> {
        match &self.inner {
            SourceInner::File(r) => r.block_len(name),
            SourceInner::ZeroCopy(z) => Ok(z.pages.entries[z.pages.entry_index(name)?].len),
        }
    }

    /// A view of a whole block, checksum-verified on every backend.
    pub fn read_block(&self, name: &str) -> Result<BlockView<'_>> {
        match &self.inner {
            SourceInner::File(r) => Ok(BlockView::Owned(r.read_block(name)?)),
            SourceInner::ZeroCopy(z) => Ok(BlockView::Borrowed(z.read_block(name)?)),
        }
    }

    /// A view of `len` bytes starting `offset` bytes into the block.
    ///
    /// Zero-copy backends verify the whole containing block's CRC on its
    /// first access; the file backend cannot verify ranges (the CRC
    /// covers whole blocks) and reads them unchecked, as before.
    pub fn read_range(&self, name: &str, offset: u64, len: u64) -> Result<BlockView<'_>> {
        match &self.inner {
            SourceInner::File(r) => Ok(BlockView::Owned(r.read_range(name, offset, len)?)),
            SourceInner::ZeroCopy(z) => Ok(BlockView::Borrowed(z.read_range(name, offset, len)?)),
        }
    }

    /// [`BlockSource::read_block`] through a caller-owned scratch buffer:
    /// zero-copy backends ignore `scratch` and return a borrowed view;
    /// the file backend reads into `scratch` (resized, no allocation in
    /// steady state) and returns a slice of it.
    pub fn read_block_in<'a>(&'a self, name: &str, scratch: &'a mut Vec<u8>) -> Result<&'a [u8]> {
        match &self.inner {
            SourceInner::File(r) => {
                r.read_block_into(name, scratch)?;
                Ok(scratch.as_slice())
            }
            SourceInner::ZeroCopy(z) => z.read_block(name),
        }
    }

    /// [`BlockSource::read_range`] through a caller-owned scratch buffer
    /// (see [`BlockSource::read_block_in`]).
    pub fn read_range_in<'a>(
        &'a self,
        name: &str,
        offset: u64,
        len: u64,
        scratch: &'a mut Vec<u8>,
    ) -> Result<&'a [u8]> {
        match &self.inner {
            SourceInner::File(r) => {
                r.read_range_into(name, offset, len, scratch)?;
                Ok(scratch.as_slice())
            }
            SourceInner::ZeroCopy(z) => z.read_range(name, offset, len),
        }
    }

    /// The shared I/O counters this source records into.
    pub fn stats(&self) -> &IoStats {
        match &self.inner {
            SourceInner::File(r) => r.stats(),
            SourceInner::ZeroCopy(z) => &z.stats,
        }
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        match &self.inner {
            SourceInner::File(r) => r.path(),
            SourceInner::ZeroCopy(z) => &z.path,
        }
    }

    /// Total on-disk size of the segment file.
    pub fn file_len(&self) -> Result<u64> {
        match &self.inner {
            SourceInner::File(r) => r.file_len(),
            SourceInner::ZeroCopy(z) => Ok(z.pages.len() as u64),
        }
    }

    /// Bytes of segment data this source keeps resident (0 for the file
    /// backend; the arena/mapping size otherwise). Mmap pages are shared
    /// with the kernel cache, so this is an upper bound there.
    pub fn resident_bytes(&self) -> u64 {
        match &self.inner {
            SourceInner::File(_) => 0,
            SourceInner::ZeroCopy(z) => z.pages.len() as u64,
        }
    }
}

/// The next backend in the degradation chain after `mode` failed to open
/// with `error`, or the error itself when there is nothing to fall back
/// to (or the failure is structural, not environmental).
fn degraded_mode(path: &Path, mode: ServingMode, error: StorageError) -> Result<ServingMode> {
    let next = match mode {
        ServingMode::Mmap => ServingMode::Resident,
        ServingMode::Resident => ServingMode::File,
        ServingMode::File => return Err(error),
    };
    // Only environmental failures degrade. Structural damage (Corrupt)
    // and a missing/unreadable file fail identically on every backend,
    // so falling back would just retry the same failure.
    match &error {
        StorageError::Io(io)
            if !matches!(
                io.kind(),
                std::io::ErrorKind::NotFound | std::io::ErrorKind::PermissionDenied
            ) => {}
        _ => return Err(error),
    }
    eprintln!(
        "kbtim-storage: {mode} backend failed to open {} ({error}); degrading to {next}",
        path.display()
    );
    Ok(next)
}

/// Every mode that is expected to work on the current platform, for
/// tests and benches that sweep backends.
pub fn all_modes() -> [ServingMode; 3] {
    [ServingMode::File, ServingMode::Resident, ServingMode::Mmap]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentWriter;
    use crate::TempDir;

    fn write_demo(path: &Path) {
        let mut writer = SegmentWriter::create(path).unwrap();
        writer.write_block("alpha", b"hello world").unwrap();
        writer.write_block("beta", b"0123456789").unwrap();
        writer.write_block("empty", b"").unwrap();
        writer.finish().unwrap();
    }

    #[test]
    fn all_backends_serve_identical_bytes() {
        let dir = TempDir::new("blocksrc").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        for mode in all_modes() {
            let src = BlockSource::open(&path, IoStats::new(), mode).unwrap();
            assert_eq!(&*src.read_block("alpha").unwrap(), b"hello world", "{mode}");
            assert_eq!(&*src.read_block("empty").unwrap(), b"", "{mode}");
            assert_eq!(&*src.read_range("beta", 3, 4).unwrap(), b"3456", "{mode}");
            assert_eq!(src.block_len("beta").unwrap(), 10);
            assert_eq!(src.blocks().len(), 3);
            assert!(matches!(
                src.read_range("beta", 8, 5).unwrap_err(),
                StorageError::RangeOutOfBounds { .. }
            ));
            assert!(matches!(src.read_block("nope").unwrap_err(), StorageError::MissingBlock(_)));
        }
    }

    #[test]
    fn scratch_reads_match_view_reads() {
        let dir = TempDir::new("blocksrc-scratch").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let mut scratch = Vec::new();
        for mode in all_modes() {
            let src = BlockSource::open(&path, IoStats::new(), mode).unwrap();
            assert_eq!(src.read_block_in("alpha", &mut scratch).unwrap(), b"hello world");
            assert_eq!(src.read_range_in("beta", 0, 2, &mut scratch).unwrap(), b"01");
        }
    }

    #[test]
    fn file_mode_counts_reads_zero_copy_counts_hits() {
        let dir = TempDir::new("blocksrc-stats").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);

        let stats = IoStats::new();
        let src = BlockSource::open(&path, stats.clone(), ServingMode::File).unwrap();
        src.read_block("alpha").unwrap();
        src.read_range("beta", 0, 4).unwrap();
        assert_eq!(stats.read_ops(), 2);
        assert_eq!(stats.bytes_read(), 11 + 4);
        assert_eq!(stats.cache_hits(), 0);

        for mode in [ServingMode::Resident, ServingMode::Mmap] {
            let stats = IoStats::new();
            let src = BlockSource::open(&path, stats.clone(), mode).unwrap();
            src.read_block("alpha").unwrap();
            src.read_range("beta", 0, 4).unwrap();
            assert_eq!(stats.read_ops(), 0, "{mode}: zero-copy must not count reads");
            assert_eq!(stats.bytes_read(), 0, "{mode}");
            assert_eq!(stats.cache_hits(), 2, "{mode}");
            assert_eq!(stats.bytes_served(), 11 + 4, "{mode}");
        }
    }

    #[test]
    fn corruption_rejected_on_every_backend() {
        let dir = TempDir::new("blocksrc-crc").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        // Flip one payload byte of "alpha" (first block, right after the
        // 16-byte header).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        for mode in all_modes() {
            let src = BlockSource::open(&path, IoStats::new(), mode).unwrap();
            assert!(
                matches!(src.read_block("alpha").unwrap_err(), StorageError::Corrupt(_)),
                "{mode}: flipped byte must fail CRC"
            );
            // Zero-copy backends also catch it on range reads; untouched
            // blocks still serve.
            if mode != ServingMode::File {
                assert!(src.read_range("alpha", 0, 2).is_err(), "{mode}");
            }
            assert_eq!(&*src.read_block("beta").unwrap(), b"0123456789", "{mode}");
        }
    }

    #[test]
    fn verification_happens_once_then_serves() {
        let dir = TempDir::new("blocksrc-once").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let src = BlockSource::open(&path, IoStats::new(), ServingMode::Resident).unwrap();
        // Range before block: the first access verifies, later ones reuse.
        assert_eq!(&*src.read_range("alpha", 6, 5).unwrap(), b"world");
        assert_eq!(&*src.read_block("alpha").unwrap(), b"hello world");
        assert_eq!(src.stats().cache_hits(), 2);
    }

    #[test]
    fn mode_and_resident_bytes_reported() {
        let dir = TempDir::new("blocksrc-mode").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let file_len = std::fs::metadata(&path).unwrap().len();
        let file = BlockSource::open(&path, IoStats::new(), ServingMode::File).unwrap();
        assert_eq!(file.mode(), ServingMode::File);
        assert_eq!(file.resident_bytes(), 0);
        assert_eq!(file.file_len().unwrap(), file_len);
        let res = BlockSource::open(&path, IoStats::new(), ServingMode::Resident).unwrap();
        assert_eq!(res.mode(), ServingMode::Resident);
        assert_eq!(res.resident_bytes(), file_len);
        assert_eq!(res.file_len().unwrap(), file_len);
    }

    #[test]
    fn serving_mode_parse_roundtrip() {
        for mode in all_modes() {
            assert_eq!(ServingMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(ServingMode::parse("disk"), None);
        assert_eq!(ServingMode::default(), ServingMode::File);
    }
}
