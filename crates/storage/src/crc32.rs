//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Every segment block stores a checksum so that bit rot or a bad partial
//! write is detected at read time rather than decoded into a corrupt index.

/// Lazily built 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        let mut crc = self.state;
        for &byte in data {
            crc = table[((crc ^ byte as u32) & 0xff) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Finish and return the checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(checksum(b""), 0x0000_0000);
        assert_eq!(checksum(b"a"), 0xE8B7_BE43);
        assert_eq!(checksum(b"abc"), 0x3524_41C2);
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut streaming = Crc32::new();
        for chunk in data.chunks(7) {
            streaming.update(chunk);
        }
        assert_eq!(streaming.finalize(), checksum(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 128];
        let base = checksum(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(checksum(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
