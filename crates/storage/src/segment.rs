//! Append-once segment files with a named-block directory.
//!
//! A segment holds the on-disk index for one keyword (or a whole index's
//! metadata). Blocks are written once, back to back, by [`SegmentWriter`];
//! a directory with per-block offsets and CRC-32 checksums is appended at
//! the end, followed by a fixed-size footer:
//!
//! ```text
//! +--------+----------------+-----------+--------+
//! | header | block payloads | directory | footer |
//! +--------+----------------+-----------+--------+
//! header    = magic "KBTIMSG1", version u32le, reserved u32le
//! directory = count u32le, then per block:
//!             name_len u16le, name bytes, offset u64le, len u64le, crc u32le
//! footer    = dir_offset u64le, dir_len u64le, dir_crc u32le, magic
//! ```
//!
//! [`SegmentReader`] supports whole-block reads (checksum-verified) and
//! positioned range reads within a block (for loading an RR-set prefix or a
//! single IRR partition without touching the rest of the file). All reads
//! are recorded in a shared [`IoStats`].

use crate::crc32::{self, Crc32};
use crate::IoStats;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

const MAGIC: &[u8; 8] = b"KBTIMSG1";
const VERSION: u32 = 1;
pub(crate) const HEADER_LEN: u64 = 16;
pub(crate) const FOOTER_LEN: u64 = 8 + 8 + 4 + 8;

/// Errors from segment reading/writing.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structural damage: bad magic, truncated framing, or CRC mismatch.
    Corrupt(String),
    /// A requested block name is not present in the directory.
    MissingBlock(String),
    /// A block with the same name was written twice.
    DuplicateBlock(String),
    /// A range read extends past the end of the block.
    RangeOutOfBounds {
        /// Block that was being read.
        block: String,
        /// Requested start offset within the block.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual block length.
        block_len: u64,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt segment: {msg}"),
            StorageError::MissingBlock(name) => write!(f, "missing block: {name}"),
            StorageError::DuplicateBlock(name) => write!(f, "duplicate block: {name}"),
            StorageError::RangeOutOfBounds { block, offset, len, block_len } => {
                write!(f, "range {offset}+{len} out of bounds for block {block} (len {block_len})")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias for fallible storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Whether an error is worth retrying: interrupted or timed-out reads
/// come back fine on the next attempt; corruption and missing blocks
/// never do.
pub fn is_transient(e: &StorageError) -> bool {
    matches!(
        e,
        StorageError::Io(io) if matches!(
            io.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
        )
    )
}

/// Run `op`, retrying transient I/O failures ([`is_transient`]) up to
/// three times with exponential backoff (50 µs, 200 µs, 800 µs) before
/// giving up. Non-transient errors surface immediately.
pub(crate) fn with_read_retries<T>(mut op: impl FnMut() -> Result<T>) -> Result<T> {
    const RETRIES: u32 = 3;
    let mut backoff = Duration::from_micros(50);
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if is_transient(&e) && attempt < RETRIES => {
                attempt += 1;
                std::thread::sleep(backoff);
                backoff *= 4;
            }
            other => return other,
        }
    }
}

/// The error an armed `err`-action failpoint injects on a read path:
/// transient by construction, so the retry tier can mask a bounded burst.
pub(crate) fn injected_io(name: &str) -> StorageError {
    StorageError::Io(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("injected fault: {name}"),
    ))
}

/// Lock recovering from poisoning: a panic elsewhere (e.g. an armed
/// `panic` failpoint unwinding through a request thread) must not wedge
/// every later reader — the guarded state is consistent between lock
/// ops, so the data is safe to reuse.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Debug, Clone)]
pub(crate) struct BlockEntry {
    pub(crate) name: String,
    pub(crate) offset: u64,
    pub(crate) len: u64,
    pub(crate) crc: u32,
}

/// Writes a segment file: header, then blocks, then directory + footer.
#[derive(Debug)]
pub struct SegmentWriter {
    file: BufWriter<File>,
    path: PathBuf,
    position: u64,
    entries: Vec<BlockEntry>,
    open_block: Option<(String, u64, Crc32)>,
    finished: bool,
}

impl SegmentWriter {
    /// Create (truncate) the segment at `path` and write the header.
    pub fn create(path: impl AsRef<Path>) -> Result<SegmentWriter> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut writer = SegmentWriter {
            file: BufWriter::new(file),
            path,
            position: 0,
            entries: Vec::new(),
            open_block: None,
            finished: false,
        };
        writer.file.write_all(MAGIC)?;
        writer.file.write_all(&VERSION.to_le_bytes())?;
        writer.file.write_all(&0u32.to_le_bytes())?;
        writer.position = HEADER_LEN;
        Ok(writer)
    }

    /// Begin a streaming block. Data is appended with [`SegmentWriter::write`]
    /// until [`SegmentWriter::end_block`].
    pub fn begin_block(&mut self, name: &str) -> Result<()> {
        assert!(self.open_block.is_none(), "previous block not closed");
        if self.entries.iter().any(|e| e.name == name) {
            return Err(StorageError::DuplicateBlock(name.to_string()));
        }
        self.open_block = Some((name.to_string(), self.position, Crc32::new()));
        Ok(())
    }

    /// Append payload bytes to the currently open block.
    pub fn write(&mut self, data: &[u8]) -> Result<()> {
        let (_, _, crc) = self.open_block.as_mut().expect("no open block");
        crc.update(data);
        self.file.write_all(data)?;
        self.position += data.len() as u64;
        Ok(())
    }

    /// Close the currently open block, recording its directory entry.
    pub fn end_block(&mut self) -> Result<()> {
        let (name, offset, crc) = self.open_block.take().expect("no open block");
        self.entries.push(BlockEntry {
            name,
            offset,
            len: self.position - offset,
            crc: crc.finalize(),
        });
        Ok(())
    }

    /// Write a complete block in one call.
    pub fn write_block(&mut self, name: &str, data: &[u8]) -> Result<()> {
        self.begin_block(name)?;
        self.write(data)?;
        self.end_block()
    }

    /// Current byte offset within the block being written (0 at block start).
    pub fn block_position(&self) -> u64 {
        let (_, start, _) = self.open_block.as_ref().expect("no open block");
        self.position - start
    }

    /// Write directory + footer and flush everything to disk.
    ///
    /// Returns the total file size in bytes.
    pub fn finish(mut self) -> Result<u64> {
        assert!(self.open_block.is_none(), "block still open at finish");
        let dir_offset = self.position;
        let mut dir = Vec::new();
        dir.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for entry in &self.entries {
            let name = entry.name.as_bytes();
            dir.extend_from_slice(&(name.len() as u16).to_le_bytes());
            dir.extend_from_slice(name);
            dir.extend_from_slice(&entry.offset.to_le_bytes());
            dir.extend_from_slice(&entry.len.to_le_bytes());
            dir.extend_from_slice(&entry.crc.to_le_bytes());
        }
        let dir_crc = crc32::checksum(&dir);
        self.file.write_all(&dir)?;
        self.file.write_all(&dir_offset.to_le_bytes())?;
        self.file.write_all(&(dir.len() as u64).to_le_bytes())?;
        self.file.write_all(&dir_crc.to_le_bytes())?;
        self.file.write_all(MAGIC)?;
        self.file.flush()?;
        self.finished = true;
        let total = dir_offset + dir.len() as u64 + FOOTER_LEN;
        Ok(total)
    }

    /// Path this writer is producing.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Metadata for one block, from the segment directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Block name.
    pub name: String,
    /// Payload length in bytes.
    pub len: u64,
}

/// Reads a segment file with positioned, counted, checksum-verified reads.
///
/// The reader is internally synchronized; `&self` methods may be shared
/// across threads.
#[derive(Debug)]
pub struct SegmentReader {
    file: Mutex<PositionedFile>,
    entries: Vec<BlockEntry>,
    stats: IoStats,
    path: PathBuf,
}

#[derive(Debug)]
struct PositionedFile {
    file: File,
    /// Where the last read ended, for seek accounting.
    last_end: u64,
}

impl PositionedFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8], stats: &IoStats) -> Result<()> {
        let seeked = offset != self.last_end;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)?;
        self.last_end = offset + buf.len() as u64;
        stats.record_read(buf.len() as u64, seeked);
        Ok(())
    }
}

impl SegmentReader {
    /// Open a segment, validating the footer and directory checksums.
    pub fn open(path: impl AsRef<Path>, stats: IoStats) -> Result<SegmentReader> {
        if kbtim_fault::inject("storage.open") {
            return Err(injected_io("storage.open"));
        }
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN + FOOTER_LEN {
            return Err(StorageError::Corrupt("file shorter than framing".into()));
        }

        // Header.
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        check_header(&header)?;

        // Footer.
        let mut footer = [0u8; FOOTER_LEN as usize];
        file.seek(SeekFrom::Start(file_len - FOOTER_LEN))?;
        file.read_exact(&mut footer)?;
        let (dir_offset, dir_len, dir_crc) = check_footer(&footer, file_len)?;

        // Directory.
        let mut dir = vec![0u8; dir_len as usize];
        file.seek(SeekFrom::Start(dir_offset))?;
        file.read_exact(&mut dir)?;
        if crc32::checksum(&dir) != dir_crc {
            return Err(StorageError::Corrupt("directory checksum mismatch".into()));
        }
        let entries = parse_directory(&dir, dir_offset)?;

        Ok(SegmentReader {
            file: Mutex::new(PositionedFile { file, last_end: 0 }),
            entries,
            stats,
            path,
        })
    }

    /// Names and sizes of every block.
    pub fn blocks(&self) -> Vec<BlockInfo> {
        self.entries.iter().map(|e| BlockInfo { name: e.name.clone(), len: e.len }).collect()
    }

    /// Length of a named block's payload in bytes.
    pub fn block_len(&self, name: &str) -> Result<u64> {
        Ok(self.entry(name)?.len)
    }

    /// Read a whole block and verify its checksum.
    pub fn read_block(&self, name: &str) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.read_block_into(name, &mut buf)?;
        Ok(buf)
    }

    /// [`SegmentReader::read_block`] into a caller-owned buffer (resized
    /// to the block length), so steady-state readers allocate nothing.
    pub fn read_block_into(&self, name: &str, buf: &mut Vec<u8>) -> Result<()> {
        let entry = self.entry(name)?.clone();
        buf.clear();
        buf.resize(entry.len as usize, 0);
        with_read_retries(|| {
            if kbtim_fault::inject("storage.read") {
                return Err(injected_io("storage.read"));
            }
            lock_recover(&self.file).read_at(entry.offset, buf, &self.stats)
        })?;
        if kbtim_fault::inject("storage.crc") || crc32::checksum(buf) != entry.crc {
            return Err(StorageError::Corrupt(format!("checksum mismatch in block {name}")));
        }
        Ok(())
    }

    /// Read `len` bytes starting `offset` bytes into the named block.
    ///
    /// Range reads cannot be checksum-verified (the CRC covers the whole
    /// block); they exist so queries can load an RR-set prefix or a single
    /// IRR partition without paying for the full block.
    pub fn read_range(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.read_range_into(name, offset, len, &mut buf)?;
        Ok(buf)
    }

    /// [`SegmentReader::read_range`] into a caller-owned buffer (resized
    /// to `len`).
    pub fn read_range_into(
        &self,
        name: &str,
        offset: u64,
        len: u64,
        buf: &mut Vec<u8>,
    ) -> Result<()> {
        let entry = self.entry(name)?.clone();
        if offset.checked_add(len).is_none_or(|end| end > entry.len) {
            return Err(StorageError::RangeOutOfBounds {
                block: name.to_string(),
                offset,
                len,
                block_len: entry.len,
            });
        }
        buf.clear();
        buf.resize(len as usize, 0);
        with_read_retries(|| {
            if kbtim_fault::inject("storage.read") {
                return Err(injected_io("storage.read"));
            }
            lock_recover(&self.file).read_at(entry.offset + offset, buf, &self.stats)
        })?;
        Ok(())
    }

    /// The shared I/O counters this reader records into.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total on-disk size of the segment file.
    pub fn file_len(&self) -> Result<u64> {
        Ok(std::fs::metadata(&self.path)?.len())
    }

    fn entry(&self, name: &str) -> Result<&BlockEntry> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| StorageError::MissingBlock(name.to_string()))
    }
}

/// Validate the fixed 16-byte header (magic, version, reserved field).
fn check_header(header: &[u8]) -> Result<()> {
    if &header[0..8] != MAGIC {
        return Err(StorageError::Corrupt("bad header magic".into()));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("fixed slice"));
    if version != VERSION {
        return Err(StorageError::Corrupt(format!("unsupported version {version}")));
    }
    let reserved = u32::from_le_bytes(header[12..16].try_into().expect("fixed slice"));
    if reserved != 0 {
        return Err(StorageError::Corrupt("nonzero reserved header field".into()));
    }
    Ok(())
}

/// Validate the fixed footer against the total file length and return
/// `(dir_offset, dir_len, dir_crc)`. Framing arithmetic is checked, so a
/// forged footer can never wrap into "valid" bounds.
fn check_footer(footer: &[u8], file_len: u64) -> Result<(u64, u64, u32)> {
    if &footer[20..28] != MAGIC {
        return Err(StorageError::Corrupt("bad footer magic".into()));
    }
    let dir_offset = u64::from_le_bytes(footer[0..8].try_into().expect("fixed slice"));
    let dir_len = u64::from_le_bytes(footer[8..16].try_into().expect("fixed slice"));
    let dir_crc = u32::from_le_bytes(footer[16..20].try_into().expect("fixed slice"));
    let end = dir_offset.checked_add(dir_len).and_then(|v| v.checked_add(FOOTER_LEN));
    if end != Some(file_len) {
        return Err(StorageError::Corrupt("directory framing mismatch".into()));
    }
    Ok((dir_offset, dir_len, dir_crc))
}

/// A cheap content discriminator for the segment at `path`: the footer's
/// directory CRC (which covers every block's name, extent, *and* payload
/// CRC) mixed with the directory extent. Two rewrites of the same path
/// with different payload bytes produce different tags with CRC-grade
/// probability even when file length and mtime collide — exactly the
/// same-second same-length rewrite a fast flush/compact cycle produces.
/// The [`crate::PageCache`] key and the index fingerprint both fold this
/// in to close that staleness window. One 28-byte read, no payload I/O.
pub fn footer_tag(path: impl AsRef<Path>) -> Result<u64> {
    let mut file = File::open(path.as_ref())?;
    let file_len = file.metadata()?.len();
    if file_len < HEADER_LEN + FOOTER_LEN {
        return Err(StorageError::Corrupt("file shorter than framing".into()));
    }
    let mut footer = [0u8; FOOTER_LEN as usize];
    file.seek(SeekFrom::Start(file_len - FOOTER_LEN))?;
    file.read_exact(&mut footer)?;
    let (dir_offset, dir_len, dir_crc) = check_footer(&footer, file_len)?;
    Ok(((dir_crc as u64) << 32) ^ dir_offset.wrapping_mul(0x9E37_79B9) ^ dir_len)
}

/// Validate the framing of a whole segment held in memory and return its
/// directory. Shared by the resident and mmap backends of
/// [`crate::block::BlockSource`]; runs exactly the same [`check_header`]
/// / [`check_footer`] / directory-CRC / [`parse_directory`] chain as
/// [`SegmentReader::open`], so the two paths cannot drift.
pub(crate) fn parse_segment_slice(bytes: &[u8]) -> Result<Vec<BlockEntry>> {
    let file_len = bytes.len() as u64;
    if file_len < HEADER_LEN + FOOTER_LEN {
        return Err(StorageError::Corrupt("file shorter than framing".into()));
    }
    check_header(&bytes[..HEADER_LEN as usize])?;
    let footer = &bytes[(file_len - FOOTER_LEN) as usize..];
    let (dir_offset, dir_len, dir_crc) = check_footer(footer, file_len)?;
    let dir = &bytes[dir_offset as usize..(dir_offset + dir_len) as usize];
    if crc32::checksum(dir) != dir_crc {
        return Err(StorageError::Corrupt("directory checksum mismatch".into()));
    }
    parse_directory(dir, dir_offset)
}

fn parse_directory(dir: &[u8], dir_offset: u64) -> Result<Vec<BlockEntry>> {
    let corrupt = |msg: &str| StorageError::Corrupt(msg.to_string());
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        if *pos + n > dir.len() {
            return Err(corrupt("directory truncated"));
        }
        let slice = &dir[*pos..*pos + n];
        *pos += n;
        Ok(slice)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("fixed")) as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("fixed")) as usize;
        let name = std::str::from_utf8(take(&mut pos, name_len)?)
            .map_err(|_| corrupt("block name not utf-8"))?
            .to_string();
        let offset = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("fixed"));
        let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("fixed"));
        let crc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("fixed"));
        // Checked: a forged entry must not wrap into "valid" bounds (the
        // zero-copy backends slice payloads straight out of these
        // extents, so out-of-bounds here must be an error, not a panic).
        let end = offset.checked_add(len).ok_or_else(|| corrupt("block extent out of bounds"))?;
        if offset < HEADER_LEN || end > dir_offset {
            return Err(corrupt("block extent out of bounds"));
        }
        entries.push(BlockEntry { name, offset, len, crc });
    }
    if pos != dir.len() {
        return Err(corrupt("trailing bytes in directory"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;

    fn write_demo(path: &Path) {
        let mut writer = SegmentWriter::create(path).unwrap();
        writer.write_block("alpha", b"hello world").unwrap();
        writer.begin_block("beta").unwrap();
        writer.write(b"chunk-1/").unwrap();
        writer.write(b"chunk-2").unwrap();
        writer.end_block().unwrap();
        writer.write_block("empty", b"").unwrap();
        writer.finish().unwrap();
    }

    #[test]
    fn roundtrip_blocks() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let reader = SegmentReader::open(&path, IoStats::new()).unwrap();
        assert_eq!(reader.read_block("alpha").unwrap(), b"hello world");
        assert_eq!(reader.read_block("beta").unwrap(), b"chunk-1/chunk-2");
        assert_eq!(reader.read_block("empty").unwrap(), b"");
        assert_eq!(reader.block_len("beta").unwrap(), 15);
        let names: Vec<String> = reader.blocks().into_iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["alpha", "beta", "empty"]);
    }

    #[test]
    fn range_reads() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let reader = SegmentReader::open(&path, IoStats::new()).unwrap();
        assert_eq!(reader.read_range("alpha", 6, 5).unwrap(), b"world");
        assert_eq!(reader.read_range("beta", 0, 7).unwrap(), b"chunk-1");
        assert!(matches!(
            reader.read_range("alpha", 8, 10).unwrap_err(),
            StorageError::RangeOutOfBounds { .. }
        ));
    }

    #[test]
    fn io_stats_recorded() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let stats = IoStats::new();
        let reader = SegmentReader::open(&path, stats.clone()).unwrap();
        assert_eq!(stats.read_ops(), 0, "open() reads are not charged to queries");
        reader.read_block("alpha").unwrap();
        reader.read_range("alpha", 0, 4).unwrap();
        assert_eq!(stats.read_ops(), 2);
        assert_eq!(stats.bytes_read(), 11 + 4);
    }

    #[test]
    fn sequential_reads_do_not_seek() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let stats = IoStats::new();
        let reader = SegmentReader::open(&path, stats.clone()).unwrap();
        reader.read_range("alpha", 0, 4).unwrap(); // seek (from 0 to header end)
        reader.read_range("alpha", 4, 4).unwrap(); // continues where we left off
        reader.read_range("alpha", 0, 4).unwrap(); // jumps back: seek
        assert_eq!(stats.seeks(), 2);
    }

    #[test]
    fn duplicate_block_rejected() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("dup.seg");
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.write_block("a", b"1").unwrap();
        assert!(matches!(
            writer.write_block("a", b"2").unwrap_err(),
            StorageError::DuplicateBlock(_)
        ));
    }

    #[test]
    fn missing_block_reported() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let reader = SegmentReader::open(&path, IoStats::new()).unwrap();
        assert!(matches!(reader.read_block("nope").unwrap_err(), StorageError::MissingBlock(_)));
    }

    #[test]
    fn corruption_detected_in_block() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        // Flip one payload byte of "alpha" (payload starts right after header).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let reader = SegmentReader::open(&path, IoStats::new()).unwrap();
        assert!(matches!(reader.read_block("alpha").unwrap_err(), StorageError::Corrupt(_)));
    }

    #[test]
    fn corruption_detected_in_directory() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        // Somewhere inside the directory, before the footer.
        bytes[n - FOOTER_LEN as usize - 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentReader::open(&path, IoStats::new()).unwrap_err(),
            StorageError::Corrupt(_)
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(SegmentReader::open(&path, IoStats::new()).is_err());
    }

    #[test]
    fn empty_segment_roundtrips() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("empty.seg");
        let writer = SegmentWriter::create(&path).unwrap();
        writer.finish().unwrap();
        let reader = SegmentReader::open(&path, IoStats::new()).unwrap();
        assert!(reader.blocks().is_empty());
    }

    #[test]
    fn block_position_tracks_stream() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("pos.seg");
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.begin_block("x").unwrap();
        assert_eq!(writer.block_position(), 0);
        writer.write(b"12345").unwrap();
        assert_eq!(writer.block_position(), 5);
        writer.write(b"678").unwrap();
        assert_eq!(writer.block_position(), 8);
        writer.end_block().unwrap();
        writer.finish().unwrap();
    }

    #[test]
    fn file_len_matches_finish_return() {
        let dir = TempDir::new("seg").unwrap();
        let path = dir.path().join("len.seg");
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.write_block("a", &[7u8; 1000]).unwrap();
        let reported = writer.finish().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), reported);
    }
}
