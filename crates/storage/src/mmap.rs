//! Minimal read-only `mmap(2)` shim for Linux.
//!
//! The workspace vendors no platform crates, so the two syscalls the
//! zero-copy serving backend needs are declared as raw `extern "C"`
//! bindings against the C library the binary already links. Only what
//! [`crate::block::BlockSource`] requires is exposed: map a whole file
//! read-only, view it as `&[u8]`, unmap on drop. Everything else (the
//! directory parsing, checksums, counters) is shared with the resident
//! backend and lives in safe code.

use std::fs::File;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::AsRawFd;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
    fn madvise(addr: *mut c_void, length: usize, advice: c_int) -> c_int;
}

const PROT_READ: c_int = 0x1;
const MAP_PRIVATE: c_int = 0x02;
const MADV_RANDOM: c_int = 1;
const MADV_WILLNEED: c_int = 3;

/// Access-pattern hints forwarded to `madvise(2)`.
///
/// Purely advisory: errors are swallowed (a kernel that ignores the hint
/// serves the same bytes, just with default readahead), and on non-Linux
/// targets this whole module is compiled out, so the hint is a no-op by
/// construction — the same shim pattern as the mapping itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MmapAdvice {
    /// Expect random block/range access: disable speculative readahead
    /// so partition-at-a-time IRR queries don't drag neighbouring pages
    /// in with every fault.
    Random,
    /// Expect the mapping to be used soon: start readahead now, so the
    /// first queries after open fault on warm pages.
    WillNeed,
}

/// A read-only, whole-file private mapping. Pages are shared with the
/// kernel page cache, so several mappings of one segment cost its bytes
/// once.
#[derive(Debug)]
pub(crate) struct MmapRegion {
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never handed out mutably; the
// region behaves like an `Arc<[u8]>` that the kernel owns.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Map the whole of `file` read-only. Fails with the OS error if the
    /// kernel refuses (e.g. exhausted address space).
    pub(crate) fn map(file: &File) -> std::io::Result<MmapRegion> {
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty region needs
            // no pages at all.
            return Ok(MmapRegion { ptr: std::ptr::null_mut(), len: 0 });
        }
        // SAFETY: null hint, private read-only mapping over a file
        // descriptor we own for the duration of the call; the kernel
        // validates fd/len/offset and reports MAP_FAILED on error.
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(MmapRegion { ptr, len })
    }

    /// Forward an access-pattern hint to the kernel. Best-effort: a
    /// refused hint changes nothing about correctness, so the return
    /// code is deliberately ignored.
    pub(crate) fn advise(&self, advice: MmapAdvice) {
        if self.len == 0 {
            return;
        }
        let advice = match advice {
            MmapAdvice::Random => MADV_RANDOM,
            MmapAdvice::WillNeed => MADV_WILLNEED,
        };
        // SAFETY: exact ptr/len pair returned by mmap above; madvise
        // never invalidates the mapping.
        unsafe { madvise(self.ptr, self.len, advice) };
    }

    /// The mapped bytes.
    pub(crate) fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len come from a successful PROT_READ mapping that
        // lives as long as `self`; the file is append-once and never
        // truncated by this crate while mapped.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: exact ptr/len pair returned by mmap above.
            unsafe { munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;

    #[test]
    fn maps_file_contents() {
        let dir = TempDir::new("mmap").unwrap();
        let path = dir.path().join("data.bin");
        std::fs::write(&path, b"mapped bytes here").unwrap();
        let file = File::open(&path).unwrap();
        let region = MmapRegion::map(&file).unwrap();
        assert_eq!(region.as_slice(), b"mapped bytes here");
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = TempDir::new("mmap-empty").unwrap();
        let path = dir.path().join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let file = File::open(&path).unwrap();
        let region = MmapRegion::map(&file).unwrap();
        assert!(region.as_slice().is_empty());
    }

    #[test]
    fn advise_is_harmless_on_any_region() {
        let dir = TempDir::new("mmap-advise").unwrap();
        let path = dir.path().join("data.bin");
        std::fs::write(&path, vec![3u8; 4096]).unwrap();
        let file = File::open(&path).unwrap();
        let region = MmapRegion::map(&file).unwrap();
        region.advise(MmapAdvice::WillNeed);
        region.advise(MmapAdvice::Random);
        assert!(region.as_slice().iter().all(|&b| b == 3), "hints must not change the bytes");
        // Empty regions take the early-out path.
        let empty = MmapRegion { ptr: std::ptr::null_mut(), len: 0 };
        empty.advise(MmapAdvice::Random);
    }

    #[test]
    fn mapping_outlives_the_file_handle() {
        let dir = TempDir::new("mmap-close").unwrap();
        let path = dir.path().join("data.bin");
        std::fs::write(&path, vec![7u8; 8192]).unwrap();
        let region = {
            let file = File::open(&path).unwrap();
            MmapRegion::map(&file).unwrap()
            // `file` drops (fd closes) here; the mapping must survive.
        };
        assert!(region.as_slice().iter().all(|&b| b == 7));
    }
}
