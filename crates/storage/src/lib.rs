//! Disk substrate for the KB-TIM indexes.
//!
//! The paper's RR and IRR indexes are *disk-resident*: queries are charged
//! for every byte and every positioned read they perform (Table 6 reports
//! I/O counts, Figures 5–7 report RR sets loaded). This crate provides the
//! small storage layer those measurements sit on:
//!
//! * [`IoStats`] — shared atomic counters for read ops, bytes and seeks,
//!   plus zero-copy `cache_hits`/`bytes_served` for resident backends.
//! * [`crc32`] — checksums protecting every block (corruption is detected,
//!   never silently decoded).
//! * [`segment`] — an append-once segment-file format with a named-block
//!   directory, written by [`segment::SegmentWriter`] and read back with
//!   positioned, counted reads by [`segment::SegmentReader`].
//! * [`block`] — the [`BlockSource`] serving tier: one block/range-view
//!   API over three backends (positioned file reads, a resident page
//!   arena, and an mmap mapping on Linux), so every query path reads
//!   through the same abstraction regardless of where the bytes live.
//! * [`cache`] — the process-wide [`PageCache`]: N open handles of one
//!   segment share a single resident arena/mapping
//!   ([`BlockSource::open_shared`]), with per-handle [`IoStats`] intact.
//! * [`TempDir`] — a scoped scratch directory for tests and benches.
//!
//! The format is deliberately simple (magic, version, blocks, directory,
//! footer) — a purpose-built substitute for the ad-hoc binary files the
//! paper's C++ implementation used, with integrity checking added.

#![deny(missing_docs)]

pub mod block;
pub mod cache;
pub mod crc32;
#[cfg(target_os = "linux")]
pub(crate) mod mmap;
pub mod segment;

pub use block::{BlockSource, BlockView, ServingMode};
pub use cache::PageCache;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters.
///
/// Cloning the handle shares the underlying counters, so a single
/// [`IoStats`] can aggregate activity across every file a query touches.
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    inner: Arc<IoStatsInner>,
}

#[derive(Debug, Default)]
struct IoStatsInner {
    read_ops: AtomicU64,
    bytes_read: AtomicU64,
    seeks: AtomicU64,
    write_ops: AtomicU64,
    bytes_written: AtomicU64,
    cache_hits: AtomicU64,
    bytes_served: AtomicU64,
}

impl IoStats {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one positioned read of `bytes` bytes; `seeked` marks a
    /// non-sequential access (the read did not start where the previous one
    /// ended).
    pub fn record_read(&self, bytes: u64, seeked: bool) {
        self.inner.read_ops.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        if seeked {
            self.inner.seeks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one write of `bytes` bytes.
    pub fn record_write(&self, bytes: u64) {
        self.inner.write_ops.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one zero-copy access of `bytes` bytes served from resident
    /// or memory-mapped pages. These accesses perform no positioned read,
    /// so they must not inflate `read_ops`/`bytes_read` — but silently
    /// reporting zero I/O would make backend comparisons dishonest, so
    /// they are counted separately.
    pub fn record_served(&self, bytes: u64) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_served.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of positioned read calls.
    pub fn read_ops(&self) -> u64 {
        self.inner.read_ops.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.inner.bytes_read.load(Ordering::Relaxed)
    }

    /// Number of non-sequential (seeking) reads.
    pub fn seeks(&self) -> u64 {
        self.inner.seeks.load(Ordering::Relaxed)
    }

    /// Number of write calls.
    pub fn write_ops(&self) -> u64 {
        self.inner.write_ops.load(Ordering::Relaxed)
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.inner.bytes_written.load(Ordering::Relaxed)
    }

    /// Number of zero-copy block/range accesses.
    pub fn cache_hits(&self) -> u64 {
        self.inner.cache_hits.load(Ordering::Relaxed)
    }

    /// Total bytes served from resident/mapped pages without a read.
    pub fn bytes_served(&self) -> u64 {
        self.inner.bytes_served.load(Ordering::Relaxed)
    }

    /// Reset every counter to zero (used between measured queries).
    pub fn reset(&self) {
        self.inner.read_ops.store(0, Ordering::Relaxed);
        self.inner.bytes_read.store(0, Ordering::Relaxed);
        self.inner.seeks.store(0, Ordering::Relaxed);
        self.inner.write_ops.store(0, Ordering::Relaxed);
        self.inner.bytes_written.store(0, Ordering::Relaxed);
        self.inner.cache_hits.store(0, Ordering::Relaxed);
        self.inner.bytes_served.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the counters as plain numbers.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            read_ops: self.read_ops(),
            bytes_read: self.bytes_read(),
            seeks: self.seeks(),
            write_ops: self.write_ops(),
            bytes_written: self.bytes_written(),
            cache_hits: self.cache_hits(),
            bytes_served: self.bytes_served(),
        }
    }
}

/// Immutable copy of [`IoStats`] counters at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Number of positioned read calls.
    pub read_ops: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Number of non-sequential reads.
    pub seeks: u64,
    /// Number of write calls.
    pub write_ops: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of zero-copy block/range accesses (resident/mmap backends).
    pub cache_hits: u64,
    /// Total bytes served zero-copy, without a positioned read.
    pub bytes_served: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            bytes_served: self.bytes_served.saturating_sub(earlier.bytes_served),
        }
    }
}

/// A scratch directory removed on drop.
///
/// Each instance gets a unique path under the system temp dir; tests and
/// benches use it so index files never leak between runs.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh unique directory with the given human-readable prefix.
    pub fn new(prefix: &str) -> std::io::Result<TempDir> {
        use std::sync::atomic::AtomicU32;
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!("{prefix}-{pid}-{n}-{nanos}"));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_stats_accumulate() {
        let stats = IoStats::new();
        stats.record_read(100, false);
        stats.record_read(50, true);
        stats.record_write(8);
        assert_eq!(stats.read_ops(), 2);
        assert_eq!(stats.bytes_read(), 150);
        assert_eq!(stats.seeks(), 1);
        assert_eq!(stats.write_ops(), 1);
        assert_eq!(stats.bytes_written(), 8);
    }

    #[test]
    fn served_counters_are_distinct_from_reads() {
        let stats = IoStats::new();
        stats.record_served(4096);
        stats.record_served(100);
        assert_eq!(stats.cache_hits(), 2);
        assert_eq!(stats.bytes_served(), 4196);
        assert_eq!(stats.read_ops(), 0, "zero-copy hits are not positioned reads");
        assert_eq!(stats.bytes_read(), 0);
        let snap = stats.snapshot();
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.bytes_served, 4196);
        stats.reset();
        assert_eq!(stats.cache_hits(), 0);
        assert_eq!(stats.bytes_served(), 0);
    }

    #[test]
    fn io_stats_shared_between_clones() {
        let a = IoStats::new();
        let b = a.clone();
        b.record_read(10, false);
        assert_eq!(a.read_ops(), 1);
        a.reset();
        assert_eq!(b.read_ops(), 0);
    }

    #[test]
    fn snapshot_since() {
        let stats = IoStats::new();
        stats.record_read(10, true);
        let first = stats.snapshot();
        stats.record_read(30, false);
        let second = stats.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.read_ops, 1);
        assert_eq!(delta.bytes_read, 30);
        assert_eq!(delta.seeks, 0);
    }

    #[test]
    fn temp_dir_created_and_removed() {
        let path;
        {
            let dir = TempDir::new("kbtim-test").unwrap();
            path = dir.path().to_path_buf();
            assert!(path.is_dir());
            std::fs::write(path.join("x"), b"hi").unwrap();
        }
        assert!(!path.exists());
    }

    #[test]
    fn temp_dirs_are_unique() {
        let a = TempDir::new("kbtim-test").unwrap();
        let b = TempDir::new("kbtim-test").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
