//! Process-wide page cache: N open handles of one segment, one resident
//! copy.
//!
//! The zero-copy backends ([`ServingMode::Resident`] / \
//! [`ServingMode::Mmap`]) keep a whole segment's pages alive per open
//! [`crate::BlockSource`]. A serving process routinely opens the same
//! index many times — one handle per client session, a disk index next
//! to its in-memory serving copy, a validator next to a query engine —
//! and without coordination each open would load its own arena.
//! [`PageCache`] is that coordination: a map from *segment identity*
//! (canonical path + file length + mtime + zero-copy mode) to a
//! [`Weak`] reference of the loaded segment pages.
//!
//! * **Dedup**: [`crate::BlockSource::open_shared`] upgrades the weak
//!   entry when the pages are still alive anywhere in the process, so
//!   two handles share one arena (observable via
//!   [`crate::BlockSource::pages_addr`]).
//! * **Lifetime**: the cache holds only `Weak`s — it never pins pages.
//!   When the last handle drops, the arena is freed and the dead entry
//!   is pruned on the next access.
//! * **Accuracy per handle**: [`crate::IoStats`] lives with the handle,
//!   not the pages, so shared pages never blur per-handle accounting.
//! * **Staleness**: the identity includes length and mtime, so a
//!   segment rewritten in place loads fresh pages instead of serving the
//!   old bytes (live handles of the old file keep their old pages, as
//!   they must).
//!
//! One process-wide instance is available via [`PageCache::global`];
//! scoped caches can be constructed for tests or tenant isolation.

use crate::block::SegmentPages;
use crate::segment::Result;
use crate::ServingMode;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::SystemTime;

/// Identity of one loaded segment. Length and mtime guard against a
/// file being replaced at the same path; the footer tag
/// ([`crate::segment::footer_tag`]) guards against the rewrite those
/// two miss — a same-second same-length replacement, which fast
/// flush/compact cycles produce routinely; the mode keeps heap arenas
/// and kernel mappings distinct (they are different objects even over
/// the same bytes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    path: PathBuf,
    len: u64,
    mtime: Option<SystemTime>,
    tag: u64,
    mode: ServingMode,
}

/// One table entry: either live pages (weakly held) or a load in
/// flight that followers of the same key wait on.
enum Slot {
    Ready(Weak<SegmentPages>),
    Loading(Arc<LoadFlight>),
}

impl Slot {
    /// Whether this entry still holds anything reachable.
    fn is_live(&self) -> bool {
        match self {
            Slot::Ready(weak) => weak.strong_count() > 0,
            Slot::Loading(_) => true,
        }
    }
}

/// A cold segment being loaded by one thread. Completion carries the
/// pages on success or `None` on failure — a failed load wakes the
/// followers to retry (and surface their own I/O error) rather than
/// cloning an unclonable error.
struct LoadFlight {
    done: Mutex<Option<Option<Arc<SegmentPages>>>>,
    cv: Condvar,
}

impl LoadFlight {
    fn new() -> LoadFlight {
        LoadFlight { done: Mutex::new(None), cv: Condvar::new() }
    }

    fn complete(&self, pages: Option<Arc<SegmentPages>>) {
        *self.done.lock().expect("load flight poisoned") = Some(pages);
        self.cv.notify_all();
    }

    fn wait(&self) -> Option<Arc<SegmentPages>> {
        let mut done = self.done.lock().expect("load flight poisoned");
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.cv.wait(done).expect("load flight poisoned");
        }
    }
}

/// A process-wide (or scoped) dedup table for resident segment pages.
///
/// Cheap to construct and safe to share by reference from any thread;
/// all methods take `&self`.
#[derive(Default)]
pub struct PageCache {
    inner: Mutex<HashMap<CacheKey, Slot>>,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PageCache { .. }")
    }
}

impl PageCache {
    /// A fresh, empty cache.
    pub fn new() -> PageCache {
        PageCache::default()
    }

    /// The process-wide cache every serving component defaults to.
    pub fn global() -> &'static PageCache {
        static GLOBAL: OnceLock<PageCache> = OnceLock::new();
        GLOBAL.get_or_init(PageCache::new)
    }

    /// Shared pages for the segment at `path` in the given zero-copy
    /// mode: the live copy if one exists, a fresh load otherwise.
    ///
    /// A miss's I/O happens *outside* the table lock: the loader leaves
    /// a [`LoadFlight`] in the slot, so racing opens of the same cold
    /// segment still do the I/O once while opens of *other* segments
    /// proceed unblocked (one process-wide cache must never serialize
    /// unrelated indexes behind one slow load).
    pub(crate) fn get_or_load(&self, path: &Path, mode: ServingMode) -> Result<Arc<SegmentPages>> {
        debug_assert!(mode != ServingMode::File, "file mode keeps nothing resident");
        let meta = std::fs::metadata(path)?;
        let key = CacheKey {
            path: std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf()),
            len: meta.len(),
            mtime: meta.modified().ok(),
            tag: crate::segment::footer_tag(path)?,
            mode,
        };
        enum Action {
            Use(Arc<SegmentPages>),
            Wait(Arc<LoadFlight>),
            Load(Arc<LoadFlight>),
        }
        loop {
            let action = {
                let mut table = self.inner.lock().expect("page cache poisoned");
                let live = match table.get(&key) {
                    Some(Slot::Ready(weak)) => weak.upgrade().map(Action::Use),
                    Some(Slot::Loading(flight)) => Some(Action::Wait(Arc::clone(flight))),
                    None => None,
                };
                live.unwrap_or_else(|| {
                    // Miss (or dead entry): this thread becomes the
                    // loader and leaves a flight for followers.
                    let flight = Arc::new(LoadFlight::new());
                    table.insert(key.clone(), Slot::Loading(Arc::clone(&flight)));
                    Action::Load(flight)
                })
            };
            match action {
                Action::Use(pages) => return Ok(pages),
                Action::Wait(flight) => {
                    if let Some(pages) = flight.wait() {
                        return Ok(pages);
                    }
                    // The loader we waited on failed; retry — we either
                    // become the loader ourselves (and surface the real
                    // I/O error) or join a newer successful load.
                }
                Action::Load(flight) => {
                    let loaded = SegmentPages::load(path, mode);
                    let mut table = self.inner.lock().expect("page cache poisoned");
                    return match loaded {
                        Ok(pages) => {
                            let pages = Arc::new(pages);
                            table.insert(key, Slot::Ready(Arc::downgrade(&pages)));
                            flight.complete(Some(Arc::clone(&pages)));
                            Ok(pages)
                        }
                        Err(e) => {
                            table.remove(&key);
                            flight.complete(None);
                            Err(e)
                        }
                    };
                }
            }
        }
    }

    /// Number of segments with live (still-referenced or loading)
    /// pages.
    pub fn segments(&self) -> usize {
        let mut table = self.inner.lock().expect("page cache poisoned");
        table.retain(|_, slot| slot.is_live());
        table.len()
    }

    /// Total bytes of live resident arenas/mappings, each counted once
    /// however many handles share it — the honest process footprint,
    /// where summing per-handle `resident_bytes` would double-count.
    pub fn resident_bytes(&self) -> u64 {
        let mut table = self.inner.lock().expect("page cache poisoned");
        table.retain(|_, slot| slot.is_live());
        table
            .values()
            .filter_map(|slot| match slot {
                Slot::Ready(weak) => weak.upgrade().map(|pages| pages.len() as u64),
                Slot::Loading(_) => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentWriter;
    use crate::{BlockSource, IoStats, TempDir};

    fn write_demo(path: &Path) {
        let mut writer = SegmentWriter::create(path).unwrap();
        writer.write_block("alpha", b"hello world").unwrap();
        writer.write_block("beta", b"0123456789").unwrap();
        writer.finish().unwrap();
    }

    #[test]
    fn two_handles_share_one_copy() {
        let dir = TempDir::new("pagecache").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let file_len = std::fs::metadata(&path).unwrap().len();
        let cache = PageCache::new();

        let a =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache).unwrap();
        let b =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache).unwrap();
        assert_eq!(a.pages_addr(), b.pages_addr(), "both handles must serve one arena");
        assert_ne!(a.pages_addr(), 0);
        assert_eq!(cache.segments(), 1);
        assert_eq!(cache.resident_bytes(), file_len, "one copy, not two");
        // Each handle still reports its full view.
        assert_eq!(a.resident_bytes(), file_len);
        assert_eq!(b.resident_bytes(), file_len);
        // Bytes identical through both.
        assert_eq!(&*a.read_block("alpha").unwrap(), b"hello world");
        assert_eq!(&*b.read_block("alpha").unwrap(), b"hello world");
    }

    #[test]
    fn per_handle_stats_stay_separate() {
        let dir = TempDir::new("pagecache-stats").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let cache = PageCache::new();
        let stats_a = IoStats::new();
        let stats_b = IoStats::new();
        let a = BlockSource::open_shared(&path, stats_a.clone(), ServingMode::Resident, &cache)
            .unwrap();
        let b = BlockSource::open_shared(&path, stats_b.clone(), ServingMode::Resident, &cache)
            .unwrap();
        a.read_block("alpha").unwrap();
        a.read_range("beta", 0, 4).unwrap();
        b.read_block("beta").unwrap();
        assert_eq!(stats_a.cache_hits(), 2, "only A's accesses on A's counters");
        assert_eq!(stats_a.bytes_served(), 11 + 4);
        assert_eq!(stats_b.cache_hits(), 1);
        assert_eq!(stats_b.bytes_served(), 10);
    }

    #[test]
    fn unshared_opens_do_not_dedupe() {
        let dir = TempDir::new("pagecache-unshared").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let a = BlockSource::open(&path, IoStats::new(), ServingMode::Resident).unwrap();
        let b = BlockSource::open(&path, IoStats::new(), ServingMode::Resident).unwrap();
        assert_ne!(a.pages_addr(), b.pages_addr(), "plain open keeps private pages");
    }

    #[test]
    fn dead_entries_pruned_and_reloaded() {
        let dir = TempDir::new("pagecache-prune").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let cache = PageCache::new();
        let first_addr = {
            let src =
                BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache)
                    .unwrap();
            assert_eq!(cache.segments(), 1);
            src.pages_addr()
        };
        // Last handle dropped: the cache no longer pins anything.
        assert_eq!(cache.segments(), 0);
        assert_eq!(cache.resident_bytes(), 0);
        // A later open loads fresh pages (possibly at a new address).
        let src =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache).unwrap();
        assert_ne!(src.pages_addr(), 0);
        let _ = first_addr; // identity of freed pages is meaningless
        assert_eq!(cache.segments(), 1);
    }

    #[test]
    fn rewritten_file_is_not_served_stale() {
        let dir = TempDir::new("pagecache-stale").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let cache = PageCache::new();
        let old =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache).unwrap();
        assert_eq!(&*old.read_block("alpha").unwrap(), b"hello world");

        // Replace the segment at the same path with different content
        // (different length → different identity even on coarse mtime).
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.write_block("alpha", b"replacement!!").unwrap();
        writer.finish().unwrap();

        let new =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache).unwrap();
        assert_eq!(&*new.read_block("alpha").unwrap(), b"replacement!!");
        // The old handle keeps its old (still-valid) pages.
        assert_eq!(&*old.read_block("alpha").unwrap(), b"hello world");
        assert_ne!(old.pages_addr(), new.pages_addr());
    }

    #[test]
    fn same_length_same_mtime_rewrite_is_not_served_stale() {
        // The staleness window the footer tag closes: a rewrite that
        // preserves both the file length and the mtime (fast
        // flush/compact cycles land within one mtime tick routinely) —
        // path + len + mtime alone would serve the old pages.
        let dir = TempDir::new("pagecache-stale-tag").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let before = std::fs::metadata(&path).unwrap();
        let cache = PageCache::new();
        let old =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache).unwrap();
        assert_eq!(&*old.read_block("alpha").unwrap(), b"hello world");

        // Same block names, same payload lengths, different bytes —
        // the rewritten file is byte-length-identical to the original.
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.write_block("alpha", b"jello world").unwrap();
        writer.write_block("beta", b"9876543210").unwrap();
        writer.finish().unwrap();
        let after = std::fs::metadata(&path).unwrap();
        assert_eq!(before.len(), after.len(), "rewrite must be length-preserving");
        // Pin the mtime back to the original's: the worst case of two
        // rebuilds inside one filesystem timestamp tick, deterministic.
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_modified(before.modified().unwrap()).unwrap();
        drop(file);
        assert_eq!(
            std::fs::metadata(&path).unwrap().modified().unwrap(),
            before.modified().unwrap()
        );

        let new =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache).unwrap();
        assert_eq!(&*new.read_block("alpha").unwrap(), b"jello world", "stale pages served");
        // The old handle keeps its old (still-valid) pages.
        assert_eq!(&*old.read_block("alpha").unwrap(), b"hello world");
        assert_ne!(old.pages_addr(), new.pages_addr());
    }

    #[test]
    fn modes_cached_separately() {
        let dir = TempDir::new("pagecache-modes").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let cache = PageCache::new();
        let res =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache).unwrap();
        let map =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::Mmap, &cache).unwrap();
        // A heap arena and a kernel mapping are distinct objects.
        assert_ne!(res.pages_addr(), map.pages_addr());
        assert_eq!(cache.segments(), 2);
        // Same bytes through both, of course.
        assert_eq!(&*res.read_block("beta").unwrap(), &*map.read_block("beta").unwrap());
    }

    #[test]
    fn file_mode_bypasses_the_cache() {
        let dir = TempDir::new("pagecache-file").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let cache = PageCache::new();
        let src =
            BlockSource::open_shared(&path, IoStats::new(), ServingMode::File, &cache).unwrap();
        assert_eq!(src.pages_addr(), 0);
        assert_eq!(cache.segments(), 0);
        assert_eq!(&*src.read_block("alpha").unwrap(), b"hello world");
    }

    #[test]
    fn global_cache_is_one_instance() {
        assert!(std::ptr::eq(PageCache::global(), PageCache::global()));
    }

    #[test]
    fn failed_load_clears_the_slot() {
        let dir = TempDir::new("pagecache-fail").unwrap();
        let path = dir.path().join("bogus.seg");
        std::fs::write(&path, b"not a segment at all").unwrap();
        let cache = PageCache::new();
        let err = BlockSource::open_shared(&path, IoStats::new(), ServingMode::Resident, &cache);
        assert!(err.is_err(), "garbage must not parse");
        // No loading flight left behind: the table is empty and a valid
        // segment opens fine afterwards.
        assert_eq!(cache.segments(), 0);
        let good = dir.path().join("good.seg");
        write_demo(&good);
        let src =
            BlockSource::open_shared(&good, IoStats::new(), ServingMode::Resident, &cache).unwrap();
        assert_eq!(&*src.read_block("alpha").unwrap(), b"hello world");
    }

    #[test]
    fn racing_cold_opens_share_one_load() {
        let dir = TempDir::new("pagecache-race").unwrap();
        let path = dir.path().join("demo.seg");
        write_demo(&path);
        let cache = PageCache::new();
        let clients = 8;
        let barrier = std::sync::Barrier::new(clients);
        // Keep every handle alive until the end: the cache holds only
        // weak references, so a dropped handle would legitimately force
        // the next open to reload.
        let sources: Vec<BlockSource> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..clients)
                .map(|_| {
                    let (cache, path, barrier) = (&cache, &path, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        BlockSource::open_shared(path, IoStats::new(), ServingMode::Resident, cache)
                            .unwrap()
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        // One loader, everyone else joined its flight or upgraded the
        // live entry: a single arena.
        let addrs: Vec<usize> = sources.iter().map(BlockSource::pages_addr).collect();
        assert!(addrs.windows(2).all(|w| w[0] == w[1]), "{addrs:?}");
        assert_eq!(cache.segments(), 1);
    }
}
