//! Property tests for the CSR graph invariants.

use kbtim_graph::{Graph, NodeId};
use proptest::prelude::*;

fn edge_list(
    max_nodes: u32,
    max_edges: usize,
) -> impl Strategy<Value = (u32, Vec<(NodeId, NodeId)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..max_edges);
        (Just(n), edges)
    })
}

proptest! {
    /// Forward and reverse CSR views describe the same edge set.
    #[test]
    fn forward_and_reverse_mirror((n, edges) in edge_list(60, 300)) {
        let g = Graph::from_edges(n, &edges);
        let mut fwd: Vec<(u32, u32)> = g.edges().collect();
        let mut rev: Vec<(u32, u32)> = g
            .nodes()
            .flat_map(|v| g.in_neighbors(v).iter().map(move |&u| (u, v)).collect::<Vec<_>>())
            .collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        prop_assert_eq!(fwd, rev);
    }

    /// Dedup + self-loop removal is exactly what construction performs.
    #[test]
    fn edge_count_matches_cleaned_input((n, edges) in edge_list(60, 300)) {
        let g = Graph::from_edges(n, &edges);
        let mut cleaned: Vec<(u32, u32)> =
            edges.iter().copied().filter(|&(u, v)| u != v).collect();
        cleaned.sort_unstable();
        cleaned.dedup();
        prop_assert_eq!(g.num_edges(), cleaned.len() as u64);
        for (u, v) in cleaned {
            prop_assert!(g.has_edge(u, v));
        }
    }

    /// Degree sums both equal |E|.
    #[test]
    fn degree_sums((n, edges) in edge_list(60, 300)) {
        let g = Graph::from_edges(n, &edges);
        let out_sum: u64 = g.nodes().map(|v| g.out_degree(v) as u64).sum();
        let in_sum: u64 = g.nodes().map(|v| g.in_degree(v) as u64).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
    }

    /// Neighbour slices are sorted and unique.
    #[test]
    fn neighbor_slices_sorted_unique((n, edges) in edge_list(50, 250)) {
        let g = Graph::from_edges(n, &edges);
        for v in g.nodes() {
            prop_assert!(g.out_neighbors(v).windows(2).all(|w| w[0] < w[1]));
            prop_assert!(g.in_neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Edge-list text round trip preserves the graph exactly.
    #[test]
    fn edge_list_io_roundtrip((n, edges) in edge_list(40, 150)) {
        let g = Graph::from_edges(n, &edges);
        let dir = std::env::temp_dir()
            .join(format!("kbtim-graph-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g-{n}-{}.txt", edges.len()));
        kbtim_graph::io::write_edge_list(&g, &path).unwrap();
        let back = kbtim_graph::io::read_edge_list(&path, Some(n)).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(g, back);
    }
}
