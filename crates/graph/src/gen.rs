//! Synthetic graph generators.
//!
//! The paper evaluates on SNAP's Twitter (dense, heavy-tailed) and News
//! (sparse, lighter-tailed) graphs, which are not redistributable here. The
//! generators below reproduce the *shape* properties the algorithms are
//! sensitive to — in-degree distribution and density (Table 2, Figure 4) —
//! with deterministic seeds:
//!
//! * [`preferential_attachment`] — directed Barabási–Albert-style growth
//!   producing power-law in/out-degree tails (Twitter-like).
//! * [`erdos_renyi`] — uniform random digraph (light-tailed control).
//! * Deterministic shapes ([`line()`], [`cycle`], [`star`], [`complete`]) for
//!   exact-answer tests.

use crate::{Graph, NodeId};
use rand::Rng;

/// Configuration for [`preferential_attachment`].
#[derive(Debug, Clone, Copy)]
pub struct PrefAttachConfig {
    /// Number of nodes to grow.
    pub num_nodes: u32,
    /// Edges created by each arriving node.
    pub edges_per_node: u32,
    /// Probability that an edge also gets its reverse inserted, producing
    /// reciprocal follow relationships. `1.0` makes hubs both highly
    /// influential and highly influenceable (Twitter-like); `0.0` keeps the
    /// graph strictly one-directional (news hyperlink-like).
    pub reciprocal_prob: f64,
}

impl Default for PrefAttachConfig {
    fn default() -> Self {
        PrefAttachConfig { num_nodes: 1000, edges_per_node: 4, reciprocal_prob: 0.5 }
    }
}

/// Directed preferential-attachment graph.
///
/// Each arriving node `u` draws `edges_per_node` targets from an endpoint
/// pool (the classic Barabási–Albert repeated-endpoint trick: sampling a
/// uniform element of the pool is equivalent to degree-proportional
/// sampling) and adds `u → t`, plus `t → u` with `reciprocal_prob`.
/// Targets attract future edges proportionally to their degree, producing
/// the heavy in-degree tail of Figure 4.
pub fn preferential_attachment(config: PrefAttachConfig, rng: &mut impl Rng) -> Graph {
    let n = config.num_nodes;
    let m = config.edges_per_node.max(1);
    if n == 0 {
        return Graph::from_edges(0, &[]);
    }
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n as usize * m as usize);
    // Endpoint pool: every time a node participates in an edge it is pushed,
    // so uniform pool sampling is degree-proportional sampling.
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * n as usize * m as usize);
    pool.push(0);

    for u in 1..n {
        let picks = m.min(u);
        for _ in 0..picks {
            let t = pool[rng.gen_range(0..pool.len())];
            if t == u {
                continue;
            }
            edges.push((u, t));
            pool.push(t);
            if rng.gen_bool(config.reciprocal_prob) {
                edges.push((t, u));
            }
        }
        pool.push(u);
    }
    Graph::from_edges(n, &edges)
}

/// Uniform random digraph with (approximately) `num_edges` edges.
pub fn erdos_renyi(num_nodes: u32, num_edges: u64, rng: &mut impl Rng) -> Graph {
    if num_nodes < 2 {
        return Graph::from_edges(num_nodes, &[]);
    }
    let mut edges = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_nodes);
        let v = rng.gen_range(0..num_nodes);
        edges.push((u, v));
    }
    Graph::from_edges(num_nodes, &edges)
}

/// Path `0 → 1 → 2 → … → n-1`.
pub fn line(num_nodes: u32) -> Graph {
    let edges: Vec<_> = (1..num_nodes).map(|v| (v - 1, v)).collect();
    Graph::from_edges(num_nodes, &edges)
}

/// Cycle `0 → 1 → … → n-1 → 0`.
pub fn cycle(num_nodes: u32) -> Graph {
    if num_nodes < 2 {
        return Graph::from_edges(num_nodes, &[]);
    }
    let edges: Vec<_> = (0..num_nodes).map(|v| (v, (v + 1) % num_nodes)).collect();
    Graph::from_edges(num_nodes, &edges)
}

/// Star with node 0 at the centre pointing at every other node.
pub fn star(num_nodes: u32) -> Graph {
    let edges: Vec<_> = (1..num_nodes).map(|v| (0, v)).collect();
    Graph::from_edges(num_nodes, &edges)
}

/// Complete digraph (every ordered pair, no self-loops).
pub fn complete(num_nodes: u32) -> Graph {
    let mut edges = Vec::new();
    for u in 0..num_nodes {
        for v in 0..num_nodes {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(num_nodes, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pa_grows_requested_nodes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = preferential_attachment(
            PrefAttachConfig { num_nodes: 500, edges_per_node: 3, reciprocal_prob: 0.5 },
            &mut rng,
        );
        assert_eq!(g.num_nodes(), 500);
        assert!(g.num_edges() > 500, "expected >1 edge per node, got {}", g.num_edges());
    }

    #[test]
    fn pa_has_heavy_tail() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = preferential_attachment(
            PrefAttachConfig { num_nodes: 5000, edges_per_node: 4, reciprocal_prob: 1.0 },
            &mut rng,
        );
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let avg = g.avg_degree();
        // Power-law graphs have hubs far above the mean.
        assert!(
            (max_in as f64) > 10.0 * avg,
            "max in-degree {max_in} not heavy-tailed vs avg {avg:.1}"
        );
    }

    #[test]
    fn pa_deterministic_under_seed() {
        let config = PrefAttachConfig { num_nodes: 300, edges_per_node: 2, reciprocal_prob: 0.3 };
        let g1 = preferential_attachment(config, &mut SmallRng::seed_from_u64(9));
        let g2 = preferential_attachment(config, &mut SmallRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn pa_zero_nodes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = preferential_attachment(
            PrefAttachConfig { num_nodes: 0, edges_per_node: 3, reciprocal_prob: 0.5 },
            &mut rng,
        );
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn er_density_close_to_requested() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = erdos_renyi(2000, 10_000, &mut rng);
        // Duplicates/self-loops remove a small fraction.
        assert!(g.num_edges() > 9_500 && g.num_edges() <= 10_000);
    }

    #[test]
    fn special_shapes() {
        let l = line(5);
        assert_eq!(l.num_edges(), 4);
        assert_eq!(l.out_neighbors(0), &[1]);
        assert_eq!(l.in_degree(0), 0);

        let c = cycle(4);
        assert_eq!(c.num_edges(), 4);
        assert!(c.nodes().all(|v| c.in_degree(v) == 1 && c.out_degree(v) == 1));

        let s = star(6);
        assert_eq!(s.out_degree(0), 5);
        assert!(s.nodes().skip(1).all(|v| s.in_degree(v) == 1));

        let k = complete(4);
        assert_eq!(k.num_edges(), 12);
    }

    #[test]
    fn tiny_shapes_do_not_panic() {
        assert_eq!(line(0).num_edges(), 0);
        assert_eq!(line(1).num_edges(), 0);
        assert_eq!(cycle(1).num_edges(), 0);
        assert_eq!(star(1).num_edges(), 0);
        assert_eq!(complete(1).num_edges(), 0);
    }
}
