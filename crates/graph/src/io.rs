//! Plain-text edge-list persistence (SNAP-compatible format).
//!
//! Lines are `u<whitespace>v`; `#`-prefixed lines are comments. This is the
//! format SNAP distributes social graphs in, so real datasets can be
//! dropped in as a substitute for the synthetic generators.

use crate::{Graph, NodeId};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A line failed to parse; carries the 1-based line number and content.
    Parse(usize, String),
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "i/o error: {e}"),
            EdgeListError::Parse(line, content) => {
                write!(f, "parse error on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Write a graph as a `u v` edge list with a comment header.
pub fn write_edge_list(graph: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "# kbtim edge list: nodes={} edges={}", graph.num_nodes(), graph.num_edges())?;
    for (u, v) in graph.edges() {
        writeln!(out, "{u}\t{v}")?;
    }
    out.flush()
}

/// Read an edge list. Node count is `max id + 1` unless `num_nodes` forces a
/// larger value (for graphs with trailing isolated nodes).
pub fn read_edge_list(
    path: impl AsRef<Path>,
    num_nodes: Option<u32>,
) -> Result<Graph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut line = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u32> { s.and_then(|t| t.parse().ok()) };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) if parts.next().is_none() => {
                max_id = max_id.max(u).max(v);
                edges.push((u, v));
            }
            _ => return Err(EdgeListError::Parse(line_no, trimmed.to_string())),
        }
    }
    let inferred = if edges.is_empty() { 0 } else { max_id + 1 };
    let n = num_nodes.map_or(inferred, |forced| forced.max(inferred));
    Ok(Graph::from_edges(n, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kbtim-graph-io-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("graph.txt")
    }

    #[test]
    fn roundtrip() {
        let g = gen::cycle(50);
        let path = temp_path("roundtrip");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path, None).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let path = temp_path("comments");
        std::fs::write(&path, "# header\n\n0 1\n  \n1\t2\n").unwrap();
        let g = read_edge_list(&path, None).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forced_node_count() {
        let path = temp_path("forced");
        std::fs::write(&path, "0 1\n").unwrap();
        let g = read_edge_list(&path, Some(10)).unwrap();
        assert_eq!(g.num_nodes(), 10);
        // Forcing fewer nodes than the max id is ignored in favour of validity.
        let g2 = read_edge_list(&path, Some(1)).unwrap();
        assert_eq!(g2.num_nodes(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_lines_error_with_position() {
        let path = temp_path("bad");
        std::fs::write(&path, "0 1\nnot numbers\n").unwrap();
        match read_edge_list(&path, None).unwrap_err() {
            EdgeListError::Parse(line, content) => {
                assert_eq!(line, 2);
                assert_eq!(content, "not numbers");
            }
            other => panic!("expected parse error, got {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn extra_columns_rejected() {
        let path = temp_path("cols");
        std::fs::write(&path, "0 1 2\n").unwrap();
        assert!(matches!(read_edge_list(&path, None).unwrap_err(), EdgeListError::Parse(1, _)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_empty_graph() {
        let path = temp_path("empty");
        std::fs::write(&path, "").unwrap();
        let g = read_edge_list(&path, None).unwrap();
        assert_eq!(g.num_nodes(), 0);
        std::fs::remove_file(&path).ok();
    }
}
