//! Degree statistics: the numbers behind Table 2 and Figure 4.

use crate::Graph;

/// Summary degree statistics for a graph (one row of Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_nodes: u32,
    /// `|E|`.
    pub num_edges: u64,
    /// Average degree `|E|/|V|`.
    pub avg_degree: f64,
    /// Largest in-degree.
    pub max_in_degree: u32,
    /// Largest out-degree.
    pub max_out_degree: u32,
}

/// Compute summary statistics.
pub fn graph_stats(graph: &Graph) -> GraphStats {
    GraphStats {
        num_nodes: graph.num_nodes(),
        num_edges: graph.num_edges(),
        avg_degree: graph.avg_degree(),
        max_in_degree: graph.nodes().map(|v| graph.in_degree(v)).max().unwrap_or(0),
        max_out_degree: graph.nodes().map(|v| graph.out_degree(v)).max().unwrap_or(0),
    }
}

/// Exact in-degree histogram: `(degree, number_of_nodes)` pairs sorted by
/// degree, skipping empty degrees. This is the raw series of Figure 4.
pub fn in_degree_histogram(graph: &Graph) -> Vec<(u32, u64)> {
    degree_histogram(graph.nodes().map(|v| graph.in_degree(v)))
}

/// Exact out-degree histogram, same format as [`in_degree_histogram`].
pub fn out_degree_histogram(graph: &Graph) -> Vec<(u32, u64)> {
    degree_histogram(graph.nodes().map(|v| graph.out_degree(v)))
}

fn degree_histogram(degrees: impl Iterator<Item = u32>) -> Vec<(u32, u64)> {
    let mut counts: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for d in degrees {
        *counts.entry(d).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// Log-binned histogram for plotting heavy tails on log-log axes: bucket
/// `i` covers degrees `[base^i, base^(i+1))` and reports the node count.
///
/// Returns `(bucket_lower_bound, count)` pairs; degree-0 nodes are reported
/// in a leading `(0, count)` bucket.
pub fn log_binned_in_degrees(graph: &Graph, base: f64) -> Vec<(u32, u64)> {
    assert!(base > 1.0, "log base must exceed 1");
    let mut zero = 0u64;
    let mut buckets: Vec<u64> = Vec::new();
    for v in graph.nodes() {
        let d = graph.in_degree(v);
        if d == 0 {
            zero += 1;
            continue;
        }
        let idx = (d as f64).log(base).floor() as usize;
        if buckets.len() <= idx {
            buckets.resize(idx + 1, 0);
        }
        buckets[idx] += 1;
    }
    let mut out = Vec::new();
    if zero > 0 {
        out.push((0, zero));
    }
    for (i, &count) in buckets.iter().enumerate() {
        if count > 0 {
            out.push((base.powi(i as i32).floor() as u32, count));
        }
    }
    out
}

/// Least-squares slope of `log(count)` vs `log(degree)` over the nonzero
/// part of an in-degree histogram — a quick power-law-exponent probe used
/// by tests to check that generated graphs are heavy-tailed.
pub fn log_log_slope(histogram: &[(u32, u64)]) -> Option<f64> {
    let points: Vec<(f64, f64)> = histogram
        .iter()
        .filter(|&&(d, c)| d > 0 && c > 0)
        .map(|&(d, c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn stats_on_star() {
        let g = gen::star(11);
        let s = graph_stats(&g);
        assert_eq!(s.num_nodes, 11);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.max_out_degree, 10);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.avg_degree - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_every_node() {
        let g = gen::star(11);
        let hist = in_degree_histogram(&g);
        assert_eq!(hist, vec![(0, 1), (1, 10)]);
        let total: u64 = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn out_histogram_on_line() {
        let g = gen::line(4);
        assert_eq!(out_degree_histogram(&g), vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn log_binned_buckets_sum_to_node_count() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gen::preferential_attachment(
            gen::PrefAttachConfig { num_nodes: 2000, edges_per_node: 3, reciprocal_prob: 1.0 },
            &mut rng,
        );
        let binned = log_binned_in_degrees(&g, 2.0);
        let total: u64 = binned.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 2000);
        // Lower bounds strictly increase.
        assert!(binned.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn pa_slope_is_negative_er_is_flat_tailed() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pa = gen::preferential_attachment(
            gen::PrefAttachConfig { num_nodes: 8000, edges_per_node: 4, reciprocal_prob: 1.0 },
            &mut rng,
        );
        let slope = log_log_slope(&in_degree_histogram(&pa)).unwrap();
        assert!(slope < -0.8, "PA slope should be steeply negative, got {slope}");
    }

    #[test]
    fn slope_none_for_degenerate() {
        assert_eq!(log_log_slope(&[]), None);
        assert_eq!(log_log_slope(&[(1, 5)]), None);
        assert_eq!(log_log_slope(&[(0, 5), (0, 7)]), None);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::Graph::from_edges(0, &[]);
        let s = graph_stats(&g);
        assert_eq!(s.max_in_degree, 0);
        assert_eq!(s.num_edges, 0);
    }
}
