//! Directed social-graph substrate for KB-TIM.
//!
//! The paper models the social network as a directed graph `G = (V, E)`
//! where an edge `u → v` means user `u` can influence user `v` (§2.1).
//! Everything downstream — RR-set sampling, Monte-Carlo spread, index
//! construction — only needs fast forward/backward adjacency scans, so the
//! graph is stored as a pair of CSR (compressed sparse row) arrays:
//!
//! * forward: `out_neighbors(u)` — used by forward influence simulation;
//! * reverse: `in_neighbors(v)` — used by reverse-reachable sampling, where
//!   walks traverse edges *backwards* from a sampled root.
//!
//! Construction dedups parallel edges and drops self-loops; node ids are
//! dense `0..n`. The [`gen`] module provides the synthetic generators used
//! to reproduce the paper's two dataset families, [`stats`] the degree
//! statistics behind Table 2 / Figure 4, and [`io`] plain-text edge-list
//! persistence.

pub mod gen;
pub mod io;
pub mod stats;

/// Dense node identifier (`0..n`).
pub type NodeId = u32;

/// Immutable directed graph in dual-CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_nodes: u32,
    /// Forward CSR: `fwd_targets[fwd_offsets[u]..fwd_offsets[u+1]]` are the
    /// nodes `u` points at, sorted ascending.
    fwd_offsets: Vec<u64>,
    fwd_targets: Vec<NodeId>,
    /// Reverse CSR: `rev_sources[rev_offsets[v]..rev_offsets[v+1]]` are the
    /// nodes pointing at `v`, sorted ascending.
    rev_offsets: Vec<u64>,
    rev_sources: Vec<NodeId>,
}

impl Graph {
    /// Build a graph with `num_nodes` nodes from a directed edge list.
    ///
    /// Self-loops are dropped and parallel edges deduplicated, matching the
    /// usual cleaning applied to SNAP social graphs.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: u32, edges: &[(NodeId, NodeId)]) -> Graph {
        let mut cleaned: Vec<(NodeId, NodeId)> = edges
            .iter()
            .copied()
            .inspect(|&(u, v)| {
                assert!(u < num_nodes && v < num_nodes, "edge ({u},{v}) out of range");
            })
            .filter(|&(u, v)| u != v)
            .collect();
        cleaned.sort_unstable();
        cleaned.dedup();

        let n = num_nodes as usize;
        let mut fwd_offsets = vec![0u64; n + 1];
        for &(u, _) in &cleaned {
            fwd_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            fwd_offsets[i + 1] += fwd_offsets[i];
        }
        let fwd_targets: Vec<NodeId> = cleaned.iter().map(|&(_, v)| v).collect();

        // Reverse CSR: counting sort by target.
        let mut rev_offsets = vec![0u64; n + 1];
        for &(_, v) in &cleaned {
            rev_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            rev_offsets[i + 1] += rev_offsets[i];
        }
        let mut cursor = rev_offsets.clone();
        let mut rev_sources = vec![0 as NodeId; cleaned.len()];
        for &(u, v) in &cleaned {
            let slot = cursor[v as usize];
            rev_sources[slot as usize] = u;
            cursor[v as usize] += 1;
        }
        // Sources within each bucket are already ascending because `cleaned`
        // is sorted by (u, v) and the counting sort is stable in u.

        Graph { num_nodes, fwd_offsets, fwd_targets, rev_offsets, rev_sources }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of (deduplicated) directed edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.fwd_targets.len() as u64
    }

    /// Nodes that `u` points at (people `u` can influence), ascending.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.fwd_offsets[u as usize] as usize;
        let hi = self.fwd_offsets[u as usize + 1] as usize;
        &self.fwd_targets[lo..hi]
    }

    /// Nodes pointing at `v` (people who can influence `v`), ascending.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.rev_offsets[v as usize] as usize;
        let hi = self.rev_offsets[v as usize + 1] as usize;
        &self.rev_sources[lo..hi]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> u32 {
        (self.fwd_offsets[u as usize + 1] - self.fwd_offsets[u as usize]) as u32
    }

    /// In-degree of `v` — the `N_v` of the paper's IC probability
    /// `p(e) = 1/N_v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> u32 {
        (self.rev_offsets[v as usize + 1] - self.rev_offsets[v as usize]) as u32
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes
    }

    /// Iterator over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes).flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Average degree `|E| / |V|` (in- and out-averages coincide).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// `true` when `u → v` exists. Binary search over the CSR row.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_adjacency() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[NodeId]);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (2, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[] as &[NodeId]);
        assert_eq!(g.out_neighbors(2), &[0]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = Graph::from_edges(10, &[(0, 9)]);
        assert_eq!(g.num_edges(), 1);
        for v in 1..9 {
            assert_eq!(g.out_degree(v), 0);
            assert_eq!(g.in_degree(v), 0);
        }
        assert_eq!(g.in_degree(9), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn edges_iterator_matches_input() {
        let input = vec![(0, 1), (2, 1), (1, 0)];
        let g = Graph::from_edges(3, &input);
        let mut collected: Vec<_> = g.edges().collect();
        collected.sort_unstable();
        let mut expected = input;
        expected.sort_unstable();
        assert_eq!(collected, expected);
    }

    #[test]
    fn has_edge() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn degree_sums_match_edge_count() {
        let g = diamond();
        let out_sum: u64 = g.nodes().map(|v| g.out_degree(v) as u64).sum();
        let in_sum: u64 = g.nodes().map(|v| g.in_degree(v) as u64).sum();
        assert_eq!(out_sum, g.num_edges());
        assert_eq!(in_sum, g.num_edges());
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(0, 4), (0, 2), (0, 3), (4, 0), (1, 0), (3, 0)]);
        assert_eq!(g.out_neighbors(0), &[2, 3, 4]);
        assert_eq!(g.in_neighbors(0), &[1, 3, 4]);
    }
}
