//! Named failpoints for deterministic fault injection.
//!
//! The serving runtime's failure paths — a corrupt block, a slow read, a
//! panicking worker — are rare by construction, which makes them
//! untestable by waiting. This crate puts a *named failpoint* on each
//! such surface: a call to [`inject`] that does nothing until the point
//! is armed, and then fails on purpose, deterministically.
//!
//! # Cost when disarmed
//!
//! The fast path is one relaxed atomic load and a branch ([`inject`]
//! returns `false` immediately when nothing is armed anywhere in the
//! process), so failpoints are compiled into release builds and left in
//! hot loops. The serving benches assert the overhead stays under 2%.
//!
//! # Arming
//!
//! Programmatically ([`arm`], [`disarm`], [`disarm_all`]) or through the
//! `KBTIM_FAILPOINTS` environment variable, read once at first use:
//!
//! ```text
//! KBTIM_FAILPOINTS='storage.read=err;engine.greedy=1%25*delay(100)'
//! ```
//!
//! Each entry is `name=spec`, separated by `;` or `,`. The spec grammar
//! is `[P%][N*]action`:
//!
//! * `P%` — fire with probability `P` (a float, default 100). Draws are
//!   a seeded counter hash per point, so a fixed seed replays the same
//!   fire pattern (see [`set_seed`] and `KBTIM_FAULT_SEED`).
//! * `N*` — a fire budget: trigger at most `N` times, then pass.
//! * `action` — what a fire does:
//!   * `err` — [`inject`] returns `true`; the call site returns its own
//!     injected error.
//!   * `delay(USEC)` — sleep that many microseconds, then pass.
//!   * `panic` — panic with a message naming the failpoint.
//!   * `noop` — never misbehave, but count evaluations (for measuring
//!     how often a site is reached).
//!
//! The special name `*` is a wildcard matched by every failpoint that is
//! not armed by its own name — `KBTIM_FAILPOINTS='*=0.1%delay(50)'`
//! jitters every instrumented site in the process. A name ending in `*`
//! is a *prefix* pattern: `flush.*=3%err` covers `flush.build`,
//! `flush.verify`, and `flush.commit`. Resolution order is exact name,
//! then the longest matching prefix pattern, then the catch-all `*`.
//!
//! # Books
//!
//! [`evaluations`] lists how many times each armed point was reached and
//! how many times it fired; [`reset`] disarms everything and clears the
//! books (tests use it for isolation).

#![deny(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The call site returns its injected error ([`inject`] → `true`).
    Err,
    /// Sleep this many microseconds, then pass.
    Delay(u64),
    /// Panic with a message naming the failpoint.
    Panic,
    /// Pass always — arm a point just to count how often it is reached.
    Noop,
}

/// One armed failpoint's full configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// The effect of a fire.
    pub action: Action,
    /// Fire probability in `0.0..=1.0` (evaluated on a seeded
    /// deterministic counter hash; `1.0` fires every evaluation).
    pub probability: f64,
    /// Remaining fire budget; `None` is unlimited.
    pub budget: Option<u64>,
}

impl Config {
    /// An always-firing, unlimited configuration for `action`.
    pub fn new(action: Action) -> Config {
        Config { action, probability: 1.0, budget: None }
    }
}

/// Parse a spec string (`[P%][N*]action`) into a [`Config`].
///
/// ```
/// use kbtim_fault::{parse_spec, Action};
/// let c = parse_spec("25%3*delay(100)").unwrap();
/// assert_eq!(c.action, Action::Delay(100));
/// assert_eq!(c.probability, 0.25);
/// assert_eq!(c.budget, Some(3));
/// ```
pub fn parse_spec(spec: &str) -> Result<Config, String> {
    let mut rest = spec.trim();
    let mut probability = 1.0f64;
    let mut budget = None;
    if let Some(pos) = rest.find('%') {
        let p: f64 =
            rest[..pos].trim().parse().map_err(|_| format!("bad probability in {spec:?}"))?;
        if !(0.0..=100.0).contains(&p) {
            return Err(format!("probability out of range in {spec:?}"));
        }
        probability = p / 100.0;
        rest = &rest[pos + 1..];
    }
    if let Some(pos) = rest.find('*') {
        let n: u64 = rest[..pos].trim().parse().map_err(|_| format!("bad budget in {spec:?}"))?;
        budget = Some(n);
        rest = &rest[pos + 1..];
    }
    let rest = rest.trim();
    let action = if rest == "err" {
        Action::Err
    } else if rest == "panic" {
        Action::Panic
    } else if rest == "noop" {
        Action::Noop
    } else if let Some(usec) = rest.strip_prefix("delay(").and_then(|r| r.strip_suffix(')')) {
        Action::Delay(usec.trim().parse().map_err(|_| format!("bad delay in {spec:?}"))?)
    } else {
        return Err(format!("unknown failpoint action {rest:?}"));
    };
    Ok(Config { action, probability, budget })
}

/// One registered point's mutable state.
#[derive(Debug)]
struct Point {
    config: Config,
    /// Evaluations so far (drives the deterministic probability draw).
    hits: u64,
    /// Actual fires so far.
    fires: u64,
}

#[derive(Default)]
struct Registry {
    points: HashMap<String, Point>,
    seed: u64,
}

/// Number of armed points; zero keeps [`inject`] on its fast path.
///
/// Starts at [`UNINITIALIZED`] so the very first evaluation anywhere
/// takes the slow path and initializes the registry — otherwise a
/// process that only ever calls [`inject`] (the production binary
/// under `KBTIM_FAILPOINTS`) would never parse its environment arming.
static ARMED: AtomicUsize = AtomicUsize::new(UNINITIALIZED);

const UNINITIALIZED: usize = usize::MAX;

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    let lock = REGISTRY.get_or_init(|| {
        let mut reg = Registry { points: HashMap::new(), seed: 0x9E3779B97F4A7C15 };
        if let Ok(seed) = std::env::var("KBTIM_FAULT_SEED") {
            if let Ok(seed) = seed.trim().parse() {
                reg.seed = seed;
            }
        }
        if let Ok(spec) = std::env::var("KBTIM_FAILPOINTS") {
            for entry in spec.split([';', ',']).map(str::trim).filter(|e| !e.is_empty()) {
                match entry.split_once('=') {
                    Some((name, spec)) => match parse_spec(spec) {
                        Ok(config) => {
                            reg.points.insert(
                                name.trim().to_string(),
                                Point { config, hits: 0, fires: 0 },
                            );
                        }
                        Err(err) => eprintln!("kbtim-fault: ignoring {entry:?}: {err}"),
                    },
                    None => eprintln!("kbtim-fault: ignoring malformed entry {entry:?}"),
                }
            }
        }
        ARMED.store(reg.points.len(), Ordering::Release);
        Mutex::new(reg)
    });
    // A panicking failpoint unwinds holding no lock, but a *user* panic
    // while the registry is borrowed elsewhere must not wedge every
    // later inject: recover the data (registry state is always
    // consistent between lock ops).
    lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// SplitMix64 — the deterministic per-evaluation draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, stable across runs (names key the draw stream so two
    // points armed with the same seed fire on different schedules).
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Evaluate the failpoint `name`.
///
/// Returns `true` when an armed `err` action fires — the call site then
/// returns its own injected error. `delay` sleeps and `panic` panics
/// right here; both otherwise return `false`, as does every disarmed
/// evaluation. When nothing at all is armed this is one relaxed atomic
/// load (the first evaluation in the process takes the slow path once,
/// to load any `KBTIM_FAILPOINTS` environment arming).
#[inline]
pub fn inject(name: &str) -> bool {
    if ARMED.load(Ordering::Acquire) == 0 {
        return false;
    }
    inject_slow(name)
}

#[cold]
fn inject_slow(name: &str) -> bool {
    let action = {
        let mut reg = registry();
        let seed = reg.seed;
        // Exact name first, then the longest matching trailing-`*`
        // prefix pattern (`flush.*` covers `flush.commit`), then the
        // catch-all `*`.
        let key = if reg.points.contains_key(name) {
            Some(name.to_string())
        } else {
            reg.points
                .keys()
                .filter(|k| k.len() > 1 && k.ends_with('*') && name.starts_with(&k[..k.len() - 1]))
                .max_by_key(|k| k.len())
                .cloned()
        };
        let point = match key {
            Some(k) => reg.points.get_mut(&k).expect("key drawn from the map"),
            None => match reg.points.get_mut("*") {
                Some(point) => point,
                None => return false,
            },
        };
        point.hits += 1;
        let fired = match point.config.action {
            Action::Noop => false,
            _ => {
                let within_budget = point.config.budget.is_none_or(|b| point.fires < b);
                let draw = splitmix64(seed ^ hash_name(name) ^ point.hits);
                // Map the draw to [0, 1); p = 1.0 always fires.
                let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
                within_budget && u < point.config.probability
            }
        };
        if !fired {
            return false;
        }
        point.fires += 1;
        point.config.action
    };
    match action {
        Action::Err => true,
        Action::Delay(usec) => {
            std::thread::sleep(Duration::from_micros(usec));
            false
        }
        Action::Panic => panic!("failpoint '{name}' fired: injected panic"),
        Action::Noop => false,
    }
}

/// Arm failpoint `name` with a spec string (see [`parse_spec`]).
pub fn arm(name: &str, spec: &str) -> Result<(), String> {
    arm_with(name, parse_spec(spec)?);
    Ok(())
}

/// Arm failpoint `name` with an explicit [`Config`].
pub fn arm_with(name: &str, config: Config) {
    let mut reg = registry();
    reg.points.insert(name.to_string(), Point { config, hits: 0, fires: 0 });
    ARMED.store(reg.points.len(), Ordering::Release);
}

/// Disarm failpoint `name` (keeping every other point armed).
pub fn disarm(name: &str) {
    let mut reg = registry();
    reg.points.remove(name);
    ARMED.store(reg.points.len(), Ordering::Release);
}

/// Disarm every failpoint (books survive until [`reset`]).
pub fn disarm_all() {
    let mut reg = registry();
    reg.points.clear();
    ARMED.store(0, Ordering::Release);
}

/// Disarm everything and clear the books and re-seed from the default —
/// test isolation in one call.
pub fn reset() {
    let mut reg = registry();
    reg.points.clear();
    ARMED.store(0, Ordering::Release);
}

/// Set the deterministic draw seed (also `KBTIM_FAULT_SEED` at startup).
/// Existing points keep their evaluation counters.
pub fn set_seed(seed: u64) {
    registry().seed = seed;
}

/// Whether any failpoint is currently armed (environment arming
/// included — this initializes the registry if nothing else has).
pub fn any_armed() -> bool {
    !registry().points.is_empty()
}

/// Per-point books: `(name, evaluations, fires)` for every armed point,
/// sorted by name.
pub fn evaluations() -> Vec<(String, u64, u64)> {
    let reg = registry();
    let mut rows: Vec<(String, u64, u64)> =
        reg.points.iter().map(|(n, p)| (n.clone(), p.hits, p.fires)).collect();
    rows.sort();
    rows
}

/// Evaluations recorded for one point (0 when not armed).
pub fn hits(name: &str) -> u64 {
    registry().points.get(name).map_or(0, |p| p.hits)
}

/// Fires recorded for one point (0 when not armed).
pub fn fires(name: &str) -> u64 {
    registry().points.get(name).map_or(0, |p| p.fires)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; tests touching it serialize.
    static GATE: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_inject_is_pass() {
        let _g = lock();
        reset();
        assert!(!inject("nothing.armed"));
        assert!(!any_armed());
    }

    #[test]
    fn err_action_fires_and_counts() {
        let _g = lock();
        reset();
        arm("t.err", "err").unwrap();
        assert!(inject("t.err"));
        assert!(inject("t.err"));
        assert_eq!(hits("t.err"), 2);
        assert_eq!(fires("t.err"), 2);
        assert!(!inject("t.other"), "other names stay clean");
        reset();
        assert!(!inject("t.err"));
    }

    #[test]
    fn budget_caps_fires() {
        let _g = lock();
        reset();
        arm("t.budget", "2*err").unwrap();
        let fired = (0..10).filter(|_| inject("t.budget")).count();
        assert_eq!(fired, 2);
        assert_eq!(hits("t.budget"), 10);
        assert_eq!(fires("t.budget"), 2);
        reset();
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let _g = lock();
        reset();
        set_seed(7);
        arm("t.prob", "25%err").unwrap();
        let pattern_a: Vec<bool> = (0..400).map(|_| inject("t.prob")).collect();
        let fired = pattern_a.iter().filter(|&&f| f).count();
        assert!((50..150).contains(&fired), "~25% of 400, got {fired}");
        // Same seed → same pattern.
        arm("t.prob", "25%err").unwrap();
        set_seed(7);
        let pattern_b: Vec<bool> = (0..400).map(|_| inject("t.prob")).collect();
        assert_eq!(pattern_a, pattern_b);
        // Different seed → different pattern.
        arm("t.prob", "25%err").unwrap();
        set_seed(8);
        let pattern_c: Vec<bool> = (0..400).map(|_| inject("t.prob")).collect();
        assert_ne!(pattern_a, pattern_c);
        reset();
    }

    #[test]
    fn delay_sleeps_then_passes() {
        let _g = lock();
        reset();
        arm("t.delay", "delay(2000)").unwrap();
        let start = std::time::Instant::now();
        assert!(!inject("t.delay"));
        assert!(start.elapsed() >= Duration::from_micros(1500));
        reset();
    }

    #[test]
    fn panic_action_panics_with_name() {
        let _g = lock();
        reset();
        arm("t.panic", "panic").unwrap();
        let caught = std::panic::catch_unwind(|| inject("t.panic"));
        reset();
        let message = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("t.panic"), "{message}");
    }

    #[test]
    fn noop_counts_without_firing() {
        let _g = lock();
        reset();
        arm("t.noop", "noop").unwrap();
        assert!(!inject("t.noop"));
        assert_eq!(hits("t.noop"), 1);
        assert_eq!(fires("t.noop"), 0);
        reset();
    }

    #[test]
    fn wildcard_matches_unarmed_names() {
        let _g = lock();
        reset();
        arm("*", "err").unwrap();
        arm("t.mine", "noop").unwrap();
        assert!(inject("t.anything"), "wildcard catches unarmed names");
        assert!(!inject("t.mine"), "an explicit point shadows the wildcard");
        assert_eq!(fires("*"), 1);
        reset();
    }

    #[test]
    fn prefix_wildcard_matches_by_longest_prefix() {
        let _g = lock();
        reset();
        arm("flush.*", "err").unwrap();
        arm("flush.commit", "noop").unwrap();
        arm("*", "noop").unwrap();
        assert!(!inject("flush.commit"), "an exact point shadows the prefix");
        assert!(inject("flush.build"), "prefix pattern catches the family");
        assert!(inject("flush.verify"));
        assert!(!inject("engine.decode"), "unrelated names fall to the catch-all");
        assert_eq!(fires("flush.*"), 2);
        assert_eq!(hits("*"), 1);
        reset();
        arm("flush.*", "noop").unwrap();
        arm("flush.c*", "err").unwrap();
        assert!(inject("flush.commit"), "the longest matching prefix wins");
        assert!(!inject("flush.build"));
        reset();
    }

    #[test]
    fn spec_parser_accepts_grammar_and_rejects_garbage() {
        assert_eq!(parse_spec("err").unwrap(), Config::new(Action::Err));
        assert_eq!(parse_spec("delay(50)").unwrap().action, Action::Delay(50));
        assert_eq!(parse_spec("50%panic").unwrap().probability, 0.5);
        assert_eq!(parse_spec("3*err").unwrap().budget, Some(3));
        let full = parse_spec("0.5% 2* delay( 10 )").unwrap();
        assert_eq!(full, Config { action: Action::Delay(10), probability: 0.005, budget: Some(2) });
        assert!(parse_spec("explode").is_err());
        assert!(parse_spec("200%err").is_err());
        assert!(parse_spec("x*err").is_err());
        assert!(parse_spec("delay(x)").is_err());
    }

    #[test]
    fn evaluations_lists_books() {
        let _g = lock();
        reset();
        arm("t.a", "noop").unwrap();
        arm("t.b", "err").unwrap();
        inject("t.a");
        inject("t.b");
        let rows = evaluations();
        assert_eq!(rows, vec![("t.a".into(), 1, 0), ("t.b".into(), 1, 1)]);
        reset();
    }
}
