//! Topic space, user profiles and advertisement queries for KB-TIM (§3.1).
//!
//! Each user `v` carries a sparse weighted term vector `tf(w, v)` over a
//! universal topic space `T`; an advertisement is a keyword set `Q.T ⊆ T`.
//! Relevance uses the tf-idf model:
//!
//! ```text
//! φ(v, Q)  = Σ_{w ∈ Q.T}  tf(w, v) · idf(w)          (Eqn 1)
//! φ_Q      = Σ_{v ∈ V}    φ(v, Q)                     (normaliser of Eqn 3)
//! ```
//!
//! [`UserProfiles`] stores the vectors twice — a per-user CSR for scoring
//! `φ(v, Q)` and a per-topic inverted CSR for the per-keyword samplers
//! `ps(v, w) ∝ tf(w, v)` used by offline index construction (§4.1) — plus
//! the per-topic aggregates (`Σ_v tf(w, v)`, document frequency, idf) that
//! the θ formulas (Eqns 8/10) consume.
//!
//! The [`workload`] module generates Zipf-skewed synthetic profiles and
//! keyword-query workloads standing in for the paper's LDA topics and AOL
//! query log (see DESIGN.md for the substitution argument).

pub mod io;
pub mod workload;
pub mod zipf;

use kbtim_graph::NodeId;

/// Dense topic identifier (`0..num_topics`).
pub type TopicId = u32;

/// A KB-TIM advertisement query `Q = (Q.T, Q.k)` (Definition 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    topics: Vec<TopicId>,
    k: u32,
}

impl Query {
    /// Build a query from a keyword set and seed count. Topics are
    /// deduplicated and sorted; `k` must be at least 1.
    pub fn new(topics: impl IntoIterator<Item = TopicId>, k: u32) -> Query {
        assert!(k >= 1, "Q.k must be >= 1");
        let mut topics: Vec<TopicId> = topics.into_iter().collect();
        topics.sort_unstable();
        topics.dedup();
        assert!(!topics.is_empty(), "Q.T must not be empty");
        Query { topics, k }
    }

    /// The keyword set `Q.T`, sorted ascending.
    pub fn topics(&self) -> &[TopicId] {
        &self.topics
    }

    /// Number of seeds requested, `Q.k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of keywords `|Q.T|`.
    pub fn num_topics(&self) -> usize {
        self.topics.len()
    }
}

/// Sparse tf-idf user profiles over a topic space.
///
/// Immutable once built. All `tf` values must be positive and finite; a
/// user/topic pair absent from the structure has `tf = 0`.
#[derive(Debug, Clone)]
pub struct UserProfiles {
    num_users: u32,
    num_topics: u32,
    // Per-user CSR.
    user_offsets: Vec<u64>,
    user_topics: Vec<TopicId>,
    user_tfs: Vec<f32>,
    // Per-topic inverted CSR.
    topic_offsets: Vec<u64>,
    topic_users: Vec<NodeId>,
    topic_tfs: Vec<f32>,
    // Per-topic aggregates.
    tf_sums: Vec<f64>,
    doc_freq: Vec<u32>,
    idf: Vec<f64>,
}

impl UserProfiles {
    /// Build profiles from `(user, topic, tf)` triples.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids, non-positive/non-finite `tf`, or a
    /// duplicate `(user, topic)` pair.
    pub fn from_entries(
        num_users: u32,
        num_topics: u32,
        entries: &[(NodeId, TopicId, f32)],
    ) -> UserProfiles {
        let mut triples: Vec<(NodeId, TopicId, f32)> = entries.to_vec();
        for &(u, w, tf) in &triples {
            assert!(u < num_users, "user {u} out of range");
            assert!(w < num_topics, "topic {w} out of range");
            assert!(tf.is_finite() && tf > 0.0, "tf must be positive and finite, got {tf}");
        }
        triples.sort_unstable_by_key(|t| (t.0, t.1));
        for pair in triples.windows(2) {
            assert!(
                (pair[0].0, pair[0].1) != (pair[1].0, pair[1].1),
                "duplicate (user, topic) entry ({}, {})",
                pair[0].0,
                pair[0].1
            );
        }

        // Per-user CSR.
        let nu = num_users as usize;
        let nt = num_topics as usize;
        let mut user_offsets = vec![0u64; nu + 1];
        for &(u, _, _) in &triples {
            user_offsets[u as usize + 1] += 1;
        }
        for i in 0..nu {
            user_offsets[i + 1] += user_offsets[i];
        }
        let user_topics: Vec<TopicId> = triples.iter().map(|t| t.1).collect();
        let user_tfs: Vec<f32> = triples.iter().map(|t| t.2).collect();

        // Per-topic inverted CSR via stable counting sort.
        let mut topic_offsets = vec![0u64; nt + 1];
        for &(_, w, _) in &triples {
            topic_offsets[w as usize + 1] += 1;
        }
        for i in 0..nt {
            topic_offsets[i + 1] += topic_offsets[i];
        }
        let mut cursor = topic_offsets.clone();
        let mut topic_users = vec![0 as NodeId; triples.len()];
        let mut topic_tfs = vec![0f32; triples.len()];
        for &(u, w, tf) in &triples {
            let slot = cursor[w as usize] as usize;
            topic_users[slot] = u;
            topic_tfs[slot] = tf;
            cursor[w as usize] += 1;
        }

        // Aggregates.
        let mut tf_sums = vec![0f64; nt];
        let mut doc_freq = vec![0u32; nt];
        for &(_, w, tf) in &triples {
            tf_sums[w as usize] += tf as f64;
            doc_freq[w as usize] += 1;
        }
        // idf(w) = ln(1 + |V| / df(w)); topics nobody holds get idf 0 so
        // they contribute nothing anywhere.
        let idf = doc_freq
            .iter()
            .map(|&df| if df == 0 { 0.0 } else { (1.0 + num_users as f64 / df as f64).ln() })
            .collect();

        UserProfiles {
            num_users,
            num_topics,
            user_offsets,
            user_topics,
            user_tfs,
            topic_offsets,
            topic_users,
            topic_tfs,
            tf_sums,
            doc_freq,
            idf,
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Size of the topic space `|T|`.
    pub fn num_topics(&self) -> u32 {
        self.num_topics
    }

    /// Total number of nonzero `(user, topic)` entries.
    pub fn num_entries(&self) -> u64 {
        self.user_topics.len() as u64
    }

    /// `tf(w, v)`, or 0 when the user does not hold the topic.
    pub fn tf(&self, user: NodeId, topic: TopicId) -> f32 {
        let (topics, tfs) = self.user_vector(user);
        match topics.binary_search(&topic) {
            Ok(i) => tfs[i],
            Err(_) => 0.0,
        }
    }

    /// The sparse vector of one user: parallel `(topics, tfs)` slices.
    pub fn user_vector(&self, user: NodeId) -> (&[TopicId], &[f32]) {
        let lo = self.user_offsets[user as usize] as usize;
        let hi = self.user_offsets[user as usize + 1] as usize;
        (&self.user_topics[lo..hi], &self.user_tfs[lo..hi])
    }

    /// The inverted list of one topic: parallel `(users, tfs)` slices,
    /// users ascending.
    pub fn topic_vector(&self, topic: TopicId) -> (&[NodeId], &[f32]) {
        let lo = self.topic_offsets[topic as usize] as usize;
        let hi = self.topic_offsets[topic as usize + 1] as usize;
        (&self.topic_users[lo..hi], &self.topic_tfs[lo..hi])
    }

    /// Document frequency `df(w)`: number of users with `tf(w, v) > 0`.
    pub fn doc_freq(&self, topic: TopicId) -> u32 {
        self.doc_freq[topic as usize]
    }

    /// Inverse document frequency `idf(w) = ln(1 + |V|/df(w))`; 0 for
    /// topics nobody holds.
    pub fn idf(&self, topic: TopicId) -> f64 {
        self.idf[topic as usize]
    }

    /// `Σ_v tf(w, v)` — the factor of Eqns 8–10.
    pub fn tf_sum(&self, topic: TopicId) -> f64 {
        self.tf_sums[topic as usize]
    }

    /// `φ_w = Σ_v tf(w, v) · idf(w)` — one keyword's total relevance mass.
    pub fn keyword_mass(&self, topic: TopicId) -> f64 {
        self.tf_sums[topic as usize] * self.idf[topic as usize]
    }

    /// `φ(v, Q)` — the tf-idf impact of advertisement `Q` on user `v`
    /// (Eqn 1).
    pub fn phi(&self, user: NodeId, query: &Query) -> f64 {
        let (topics, tfs) = self.user_vector(user);
        let mut acc = 0.0f64;
        // Merge-scan: both `topics` and `query.topics()` are sorted.
        let mut qi = 0;
        let qt = query.topics();
        for (i, &w) in topics.iter().enumerate() {
            while qi < qt.len() && qt[qi] < w {
                qi += 1;
            }
            if qi == qt.len() {
                break;
            }
            if qt[qi] == w {
                acc += tfs[i] as f64 * self.idf[w as usize];
            }
        }
        acc
    }

    /// `φ_Q = Σ_v φ(v, Q) = Σ_{w ∈ Q.T} φ_w` — the weighted-sampling
    /// normaliser of Eqn 3.
    pub fn phi_q(&self, query: &Query) -> f64 {
        query.topics().iter().map(|&w| self.keyword_mass(w)).sum()
    }

    /// The per-keyword mixture weight `p_w = φ_w / φ_Q` of Eqn 7.
    ///
    /// Returns 0 for every keyword when `φ_Q = 0` (a query over topics
    /// nobody holds).
    pub fn keyword_proportion(&self, query: &Query, topic: TopicId) -> f64 {
        let phi_q = self.phi_q(query);
        if phi_q <= 0.0 {
            0.0
        } else {
            self.keyword_mass(topic) / phi_q
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two users, three topics:
    ///   user 0: topic 0 → 0.6, topic 1 → 0.4
    ///   user 1: topic 1 → 1.0
    fn sample() -> UserProfiles {
        UserProfiles::from_entries(2, 3, &[(0, 0, 0.6), (0, 1, 0.4), (1, 1, 1.0)])
    }

    #[test]
    fn tf_lookup() {
        let p = sample();
        assert_eq!(p.tf(0, 0), 0.6);
        assert_eq!(p.tf(0, 1), 0.4);
        assert_eq!(p.tf(0, 2), 0.0);
        assert_eq!(p.tf(1, 0), 0.0);
        assert_eq!(p.tf(1, 1), 1.0);
    }

    #[test]
    fn aggregates() {
        let p = sample();
        assert_eq!(p.doc_freq(0), 1);
        assert_eq!(p.doc_freq(1), 2);
        assert_eq!(p.doc_freq(2), 0);
        assert!((p.tf_sum(1) - 1.4).abs() < 1e-6);
        assert_eq!(p.idf(2), 0.0);
        assert!((p.idf(0) - (1.0f64 + 2.0).ln()).abs() < 1e-12);
        assert!((p.idf(1) - (1.0f64 + 1.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn phi_matches_manual_sum() {
        let p = sample();
        let q = Query::new([0, 1], 1);
        let expect0 = 0.6 * p.idf(0) + 0.4 * p.idf(1);
        let expect1 = 1.0 * p.idf(1);
        assert!((p.phi(0, &q) - expect0).abs() < 1e-6);
        assert!((p.phi(1, &q) - expect1).abs() < 1e-6);
        assert!((p.phi_q(&q) - (expect0 + expect1)).abs() < 1e-6);
    }

    #[test]
    fn phi_q_equals_sum_of_keyword_masses() {
        let p = sample();
        let q = Query::new([0, 1, 2], 3);
        let mass: f64 = q.topics().iter().map(|&w| p.keyword_mass(w)).sum();
        assert!((p.phi_q(&q) - mass).abs() < 1e-12);
    }

    #[test]
    fn keyword_proportions_sum_to_one() {
        let p = sample();
        let q = Query::new([0, 1], 2);
        let total: f64 = q.topics().iter().map(|&w| p.keyword_proportion(&q, w)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_topic_query_is_zero_mass() {
        let p = sample();
        let q = Query::new([2], 1);
        assert_eq!(p.phi_q(&q), 0.0);
        assert_eq!(p.keyword_proportion(&q, 2), 0.0);
    }

    #[test]
    fn topic_vector_is_inverted_user_vector() {
        let p = sample();
        let (users, tfs) = p.topic_vector(1);
        assert_eq!(users, &[0, 1]);
        assert_eq!(tfs, &[0.4, 1.0]);
        let (users0, _) = p.topic_vector(0);
        assert_eq!(users0, &[0]);
        let (users2, _) = p.topic_vector(2);
        assert!(users2.is_empty());
    }

    #[test]
    fn query_normalizes_topics() {
        let q = Query::new([3, 1, 3, 2], 5);
        assert_eq!(q.topics(), &[1, 2, 3]);
        assert_eq!(q.k(), 5);
        assert_eq!(q.num_topics(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_entry_panics() {
        UserProfiles::from_entries(2, 2, &[(0, 0, 0.5), (0, 0, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_tf_panics() {
        UserProfiles::from_entries(1, 1, &[(0, 0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "Q.T must not be empty")]
    fn empty_query_panics() {
        Query::new(std::iter::empty(), 1);
    }

    #[test]
    fn no_entries_is_valid() {
        let p = UserProfiles::from_entries(3, 2, &[]);
        assert_eq!(p.num_entries(), 0);
        assert_eq!(p.tf(2, 1), 0.0);
        let q = Query::new([0], 1);
        assert_eq!(p.phi_q(&q), 0.0);
    }
}
