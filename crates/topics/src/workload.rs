//! Synthetic profile and query workload generation.
//!
//! Stands in for the paper's two unavailable inputs (§6.1):
//!
//! * **LDA topic vectors** mined from tweets / news text → Zipf-skewed
//!   sparse profiles: each user holds a few topics (popular topics held by
//!   many users), with per-user weights normalised to sum to 1, exactly
//!   like the preference tables of Figure 1.
//! * **AOL keyword queries** filtered to the topic vocabulary → Zipf-
//!   weighted distinct keyword sets of length 1–6, 100 queries per length.

use crate::zipf::ZipfSampler;
use crate::{Query, TopicId, UserProfiles};
use kbtim_graph::NodeId;
use rand::Rng;

/// Configuration for [`generate_profiles`].
#[derive(Debug, Clone, Copy)]
pub struct ProfileConfig {
    /// Number of users (must match the graph's node count downstream).
    pub num_users: u32,
    /// Size of the topic space `|T|` (the paper uses 200).
    pub num_topics: u32,
    /// Most topics a single user holds (Figure 1 profiles hold 1–4).
    pub max_topics_per_user: u32,
    /// Zipf exponent for topic popularity (≈1 matches social media skew).
    pub topic_skew: f64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig { num_users: 1000, num_topics: 200, max_topics_per_user: 4, topic_skew: 1.0 }
    }
}

/// Generate sparse user profiles.
///
/// Each user draws `1..=max_topics_per_user` distinct topics (count uniform,
/// topics Zipf-ranked) and random positive weights normalised so each
/// user's preferences sum to 1, mirroring the paper's example profiles.
pub fn generate_profiles(config: ProfileConfig, rng: &mut impl Rng) -> UserProfiles {
    assert!(config.num_topics > 0, "need at least one topic");
    assert!(config.max_topics_per_user > 0, "users must hold at least one topic");
    let zipf = ZipfSampler::new(config.num_topics as usize, config.topic_skew);
    let mut entries: Vec<(NodeId, TopicId, f32)> = Vec::new();
    for user in 0..config.num_users {
        let count = rng.gen_range(1..=config.max_topics_per_user) as usize;
        let topics = zipf.sample_distinct(count, rng);
        // Random positive weights, normalised to sum to 1.
        let raw: Vec<f64> = topics.iter().map(|_| rng.gen_range(0.1..1.0)).collect();
        let total: f64 = raw.iter().sum();
        for (topic, weight) in topics.iter().zip(raw.iter()) {
            entries.push((user, *topic as TopicId, (*weight / total) as f32));
        }
    }
    UserProfiles::from_entries(config.num_users, config.num_topics, &entries)
}

/// Configuration for [`generate_profiles_homophilous`].
#[derive(Debug, Clone, Copy)]
pub struct HomophilyConfig {
    /// Base sparsity/skew parameters.
    pub base: ProfileConfig,
    /// Probability that a user's *primary* topic is copied from an
    /// already-assigned graph neighbour instead of drawn from the global
    /// Zipf distribution. 0 reduces to [`generate_profiles`]-like
    /// independence; ~0.8 produces strong topical communities.
    pub homophily: f64,
    /// Fraction of a user's preference mass assigned to the primary topic
    /// (the rest is split over the secondary topics).
    pub primary_weight: f64,
}

impl Default for HomophilyConfig {
    fn default() -> Self {
        HomophilyConfig { base: ProfileConfig::default(), homophily: 0.8, primary_weight: 0.6 }
    }
}

/// Generate profiles whose topics cluster along the graph.
///
/// Real social networks are topically assortative: the communities the
/// paper observes in its News results ("disseminate the advertisement in
/// the more relevant communities") only exist because neighbours share
/// interests. Users are processed in id order (preferential-attachment
/// arrival order, so neighbours with smaller ids are usually assigned
/// already); each user's primary topic is copied from a random assigned
/// neighbour with probability `homophily`, otherwise drawn Zipf-globally.
/// Secondary topics are Zipf-drawn; weights sum to 1 per user with
/// `primary_weight` on the primary topic.
pub fn generate_profiles_homophilous(
    graph: &kbtim_graph::Graph,
    config: HomophilyConfig,
    rng: &mut impl Rng,
) -> UserProfiles {
    let base = config.base;
    assert_eq!(graph.num_nodes(), base.num_users, "graph/profile size mismatch");
    assert!(base.num_topics > 0 && base.max_topics_per_user > 0);
    assert!((0.0..=1.0).contains(&config.homophily));
    assert!(config.primary_weight > 0.0 && config.primary_weight < 1.0);

    let zipf = ZipfSampler::new(base.num_topics as usize, base.topic_skew);
    let mut primary: Vec<Option<TopicId>> = vec![None; base.num_users as usize];
    let mut entries: Vec<(NodeId, TopicId, f32)> = Vec::new();
    let mut neighbor_pool: Vec<TopicId> = Vec::new();

    for user in 0..base.num_users {
        // Collect assigned neighbours (either direction).
        neighbor_pool.clear();
        for &u in graph.out_neighbors(user).iter().chain(graph.in_neighbors(user)) {
            if let Some(topic) = primary[u as usize] {
                neighbor_pool.push(topic);
            }
        }
        let main_topic = if !neighbor_pool.is_empty() && rng.gen_bool(config.homophily) {
            neighbor_pool[rng.gen_range(0..neighbor_pool.len())]
        } else {
            zipf.sample(rng) as TopicId
        };
        primary[user as usize] = Some(main_topic);

        // Secondary topics: Zipf-distinct, excluding the primary.
        let extra = rng.gen_range(0..base.max_topics_per_user) as usize;
        let mut topics = vec![main_topic];
        for candidate in zipf.sample_distinct(extra + 1, rng) {
            if topics.len() > extra {
                break;
            }
            if candidate as TopicId != main_topic {
                topics.push(candidate as TopicId);
            }
        }
        // Weights: primary_weight on the main topic (all of it if the
        // user ended up single-topic), the remainder split randomly.
        if topics.len() == 1 {
            entries.push((user, main_topic, 1.0));
        } else {
            let raw: Vec<f64> = topics[1..].iter().map(|_| rng.gen_range(0.1..1.0)).collect();
            let raw_total: f64 = raw.iter().sum();
            entries.push((user, main_topic, config.primary_weight as f32));
            for (topic, w) in topics[1..].iter().zip(raw.iter()) {
                let share = (1.0 - config.primary_weight) * w / raw_total;
                entries.push((user, *topic, share as f32));
            }
        }
    }
    UserProfiles::from_entries(base.num_users, base.num_topics, &entries)
}

/// Configuration for [`generate_queries`].
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkloadConfig {
    /// Inclusive range of keyword counts (`1..=6` in the paper).
    pub min_keywords: usize,
    /// See `min_keywords`.
    pub max_keywords: usize,
    /// Queries generated per keyword count (100 in the paper).
    pub queries_per_length: usize,
    /// Seeds requested by each query.
    pub k: u32,
    /// Zipf exponent over topic popularity for keyword choice.
    pub keyword_skew: f64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            min_keywords: 1,
            max_keywords: 6,
            queries_per_length: 100,
            k: 30,
            keyword_skew: 1.0,
        }
    }
}

/// Generate the query workload: for each length in
/// `min_keywords..=max_keywords`, `queries_per_length` queries whose
/// keyword sets are distinct Zipf-ranked topics **restricted to topics at
/// least one user holds** (the paper filters AOL queries to its topic
/// vocabulary the same way).
pub fn generate_queries(
    profiles: &UserProfiles,
    config: QueryWorkloadConfig,
    rng: &mut impl Rng,
) -> Vec<Query> {
    assert!(config.min_keywords >= 1 && config.min_keywords <= config.max_keywords);
    // Rank held topics by descending popularity so Zipf rank 0 is the most
    // popular actually-used topic.
    let mut held: Vec<TopicId> =
        (0..profiles.num_topics()).filter(|&w| profiles.doc_freq(w) > 0).collect();
    assert!(!held.is_empty(), "no topic is held by any user");
    held.sort_by(|&a, &b| profiles.doc_freq(b).cmp(&profiles.doc_freq(a)).then(a.cmp(&b)));
    let zipf = ZipfSampler::new(held.len(), config.keyword_skew);

    let mut queries = Vec::new();
    for len in config.min_keywords..=config.max_keywords {
        for _ in 0..config.queries_per_length {
            let ranks = zipf.sample_distinct(len, rng);
            let topics = ranks.into_iter().map(|r| held[r]);
            queries.push(Query::new(topics, config.k));
        }
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn profiles() -> UserProfiles {
        let mut rng = SmallRng::seed_from_u64(17);
        generate_profiles(
            ProfileConfig {
                num_users: 500,
                num_topics: 40,
                max_topics_per_user: 4,
                topic_skew: 1.0,
            },
            &mut rng,
        )
    }

    #[test]
    fn every_user_has_a_profile() {
        let p = profiles();
        for user in 0..p.num_users() {
            let (topics, tfs) = p.user_vector(user);
            assert!(!topics.is_empty(), "user {user} has no topics");
            assert!(topics.len() <= 4);
            let sum: f64 = tfs.iter().map(|&t| t as f64).sum();
            assert!((sum - 1.0).abs() < 1e-4, "user {user} weights sum to {sum}");
        }
    }

    #[test]
    fn popular_topics_have_higher_doc_freq() {
        let p = profiles();
        // Zipf rank 0 (topic 0) should be held by many more users than the
        // tail topic.
        assert!(p.doc_freq(0) > p.doc_freq(39) * 2, "{} vs {}", p.doc_freq(0), p.doc_freq(39));
    }

    #[test]
    fn deterministic_generation() {
        let config = ProfileConfig::default();
        let a = generate_profiles(config, &mut SmallRng::seed_from_u64(5));
        let b = generate_profiles(config, &mut SmallRng::seed_from_u64(5));
        assert_eq!(a.num_entries(), b.num_entries());
        for u in 0..a.num_users() {
            assert_eq!(a.user_vector(u), b.user_vector(u));
        }
    }

    #[test]
    fn query_workload_shape() {
        let p = profiles();
        let mut rng = SmallRng::seed_from_u64(23);
        let config = QueryWorkloadConfig {
            min_keywords: 1,
            max_keywords: 6,
            queries_per_length: 10,
            k: 25,
            keyword_skew: 1.0,
        };
        let queries = generate_queries(&p, config, &mut rng);
        assert_eq!(queries.len(), 60);
        for (i, q) in queries.iter().enumerate() {
            let expected_len = i / 10 + 1;
            assert_eq!(q.num_topics(), expected_len, "query {i}");
            assert_eq!(q.k(), 25);
            // All keywords must be held by someone (φ_Q > 0).
            assert!(p.phi_q(q) > 0.0);
        }
    }

    #[test]
    fn homophilous_profiles_cluster_topics() {
        use kbtim_graph::gen::{preferential_attachment, PrefAttachConfig};
        let mut rng = SmallRng::seed_from_u64(71);
        let g = preferential_attachment(
            PrefAttachConfig { num_nodes: 3000, edges_per_node: 3, reciprocal_prob: 0.5 },
            &mut rng,
        );
        let config = HomophilyConfig {
            base: ProfileConfig {
                num_users: 3000,
                num_topics: 20,
                max_topics_per_user: 3,
                topic_skew: 1.0,
            },
            homophily: 0.85,
            primary_weight: 0.6,
        };
        let p = generate_profiles_homophilous(&g, config, &mut rng);
        // Assortativity probe: how often does an edge connect users whose
        // top topic matches, vs the same statistic on a topic-shuffled
        // null? Homophily must beat the null clearly.
        let top_topic = |v: u32| -> u32 {
            let (topics, tfs) = p.user_vector(v);
            topics[tfs.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0]
        };
        let tops: Vec<u32> = (0..3000).map(top_topic).collect();
        let mut same = 0u32;
        let mut total = 0u32;
        for (u, v) in g.edges() {
            total += 1;
            if tops[u as usize] == tops[v as usize] {
                same += 1;
            }
        }
        let assortativity = same as f64 / total as f64;
        // Null rate = Σ p_i² over the topic marginals.
        let mut counts = [0u32; 20];
        for &t in &tops {
            counts[t as usize] += 1;
        }
        let null: f64 = counts.iter().map(|&c| (c as f64 / 3000.0).powi(2)).sum();
        // The Zipf head keeps the null high (topic 0 dominates); a 20 %
        // lift over it is already strong clustering. (The bar is not
        // tighter because the concrete instance depends on the RNG's
        // bounded-draw algorithm; the vendored generator sits near 1.25×.)
        assert!(
            assortativity > 1.2 * null,
            "assortativity {assortativity:.3} should be well above the null {null:.3}"
        );
    }

    #[test]
    fn homophilous_weights_sum_to_one() {
        use kbtim_graph::gen;
        let mut rng = SmallRng::seed_from_u64(72);
        let g = gen::cycle(200);
        let config = HomophilyConfig {
            base: ProfileConfig {
                num_users: 200,
                num_topics: 10,
                max_topics_per_user: 4,
                topic_skew: 1.0,
            },
            ..HomophilyConfig::default()
        };
        let p = generate_profiles_homophilous(&g, config, &mut rng);
        for user in 0..200 {
            let (topics, tfs) = p.user_vector(user);
            assert!(!topics.is_empty());
            let sum: f64 = tfs.iter().map(|&t| t as f64).sum();
            assert!((sum - 1.0).abs() < 1e-4, "user {user}: {sum}");
        }
    }

    #[test]
    fn zero_homophily_matches_global_popularity() {
        use kbtim_graph::gen;
        let mut rng = SmallRng::seed_from_u64(73);
        let g = gen::line(2000);
        let config = HomophilyConfig {
            base: ProfileConfig {
                num_users: 2000,
                num_topics: 15,
                max_topics_per_user: 1,
                topic_skew: 1.0,
            },
            homophily: 0.0,
            primary_weight: 0.6,
        };
        let p = generate_profiles_homophilous(&g, config, &mut rng);
        // Rank-0 topic should dominate, as in the plain Zipf generator.
        assert!(p.doc_freq(0) > p.doc_freq(14) * 3);
    }

    #[test]
    fn queries_only_use_held_topics() {
        // Profiles where only topics 0 and 1 are held.
        let p = UserProfiles::from_entries(3, 10, &[(0, 0, 1.0), (1, 1, 0.5), (2, 1, 0.5)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let config = QueryWorkloadConfig {
            min_keywords: 1,
            max_keywords: 2,
            queries_per_length: 20,
            k: 1,
            keyword_skew: 1.0,
        };
        for q in generate_queries(&p, config, &mut rng) {
            for &w in q.topics() {
                assert!(w <= 1, "unheld topic {w} in query");
            }
        }
    }
}
