//! Zipf-distributed sampling over ranked items.
//!
//! Topic popularity in social media follows a heavy-tailed rank
//! distribution; the paper's 200 LDA topics and the AOL query keywords are
//! both strongly skewed toward a head of popular topics. `rand` (the only
//! random crate in the allowed dependency set) has no Zipf distribution, so
//! this is a small exact implementation: weights `w_i = 1/(i+1)^s` with
//! inverse-CDF sampling over the precomputed cumulative table.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `s >= 0`.
    ///
    /// `s = 0` degenerates to the uniform distribution; `s ≈ 1` matches
    /// classic Zipf popularity.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` when only one rank exists.
    pub fn is_empty(&self) -> bool {
        false // construction requires n > 0
    }

    /// Probability mass of a single rank.
    pub fn probability(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let lo = if rank == 0 { 0.0 } else { self.cumulative[rank - 1] };
        (self.cumulative[rank] - lo) / total
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        // partition_point: first index whose cumulative weight exceeds x.
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }

    /// Draw `count` *distinct* ranks (at most `len()`); useful for picking
    /// the keyword set of a query. Sampling is by rejection, which is fast
    /// because `count` is tiny (≤ 6 in the paper's workload).
    pub fn sample_distinct(&self, count: usize, rng: &mut impl Rng) -> Vec<usize> {
        let count = count.min(self.len());
        let mut picked = Vec::with_capacity(count);
        // Rejection sampling with a safety valve: fall back to scanning
        // unpicked ranks if the head is exhausted (possible when count is
        // close to len()).
        let mut attempts = 0usize;
        while picked.len() < count {
            let r = self.sample(rng);
            if !picked.contains(&r) {
                picked.push(r);
            }
            attempts += 1;
            if attempts > 64 * count.max(1) {
                for r in 0..self.len() {
                    if picked.len() == count {
                        break;
                    }
                    if !picked.contains(&r) {
                        picked.push(r);
                    }
                }
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(50, 1.0);
        let total: f64 = (0..50).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = ZipfSampler::new(100, 1.2);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(50));
    }

    #[test]
    fn empirical_distribution_matches() {
        let z = ZipfSampler::new(20, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0u32; 20];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.probability(r);
            let observed = count as f64 / draws as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {r}: observed {observed:.4} vs expected {expected:.4}"
            );
        }
    }

    #[test]
    fn distinct_sampling() {
        let z = ZipfSampler::new(8, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for count in 0..=10 {
            let picks = z.sample_distinct(count, &mut rng);
            assert_eq!(picks.len(), count.min(8));
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), picks.len(), "duplicates in {picks:?}");
        }
    }

    #[test]
    fn single_rank() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.probability(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
