//! Plain-text persistence for user profiles.
//!
//! Format: one `user<TAB>topic<TAB>tf` triple per line, `#` comments, a
//! header comment recording the dimensions. Human-inspectable and
//! diff-friendly, in the same spirit as the SNAP edge lists — real topic
//! models exported from other toolchains can be dropped in.

use crate::UserProfiles;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from profile parsing.
#[derive(Debug)]
pub enum ProfileIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse(usize, String),
    /// The `# kbtim profiles:` header is missing or malformed.
    MissingHeader,
}

impl std::fmt::Display for ProfileIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileIoError::Io(e) => write!(f, "i/o error: {e}"),
            ProfileIoError::Parse(line, content) => {
                write!(f, "parse error on line {line}: {content:?}")
            }
            ProfileIoError::MissingHeader => write!(f, "missing profile header line"),
        }
    }
}

impl std::error::Error for ProfileIoError {}

impl From<std::io::Error> for ProfileIoError {
    fn from(e: std::io::Error) -> Self {
        ProfileIoError::Io(e)
    }
}

/// Write profiles as tab-separated triples with a dimension header.
pub fn write_profiles(profiles: &UserProfiles, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(
        out,
        "# kbtim profiles: users={} topics={} entries={}",
        profiles.num_users(),
        profiles.num_topics(),
        profiles.num_entries()
    )?;
    for user in 0..profiles.num_users() {
        let (topics, tfs) = profiles.user_vector(user);
        for (&topic, &tf) in topics.iter().zip(tfs.iter()) {
            writeln!(out, "{user}\t{topic}\t{tf}")?;
        }
    }
    out.flush()
}

/// Read profiles written by [`write_profiles`] (or hand-assembled in the
/// same format — the header fixes the dimensions so trailing users/topics
/// without entries survive the round trip).
pub fn read_profiles(path: impl AsRef<Path>) -> Result<UserProfiles, ProfileIoError> {
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);

    let mut header = String::new();
    reader.read_line(&mut header)?;
    let (num_users, num_topics) =
        parse_header(header.trim()).ok_or(ProfileIoError::MissingHeader)?;

    let mut entries = Vec::new();
    let mut line = String::new();
    let mut line_no = 1usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let parsed = (|| {
            let user: u32 = parts.next()?.parse().ok()?;
            let topic: u32 = parts.next()?.parse().ok()?;
            let tf: f32 = parts.next()?.parse().ok()?;
            parts.next().is_none().then_some((user, topic, tf))
        })();
        match parsed {
            Some(entry) => entries.push(entry),
            None => return Err(ProfileIoError::Parse(line_no, trimmed.to_string())),
        }
    }
    Ok(UserProfiles::from_entries(num_users, num_topics, &entries))
}

fn parse_header(header: &str) -> Option<(u32, u32)> {
    let rest = header.strip_prefix("# kbtim profiles:")?;
    let mut users = None;
    let mut topics = None;
    for token in rest.split_whitespace() {
        if let Some(v) = token.strip_prefix("users=") {
            users = v.parse().ok();
        } else if let Some(v) = token.strip_prefix("topics=") {
            topics = v.parse().ok();
        }
    }
    Some((users?, topics?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_profiles, ProfileConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kbtim-topics-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_generated_profiles() {
        let mut rng = SmallRng::seed_from_u64(1);
        let profiles = generate_profiles(
            ProfileConfig {
                num_users: 300,
                num_topics: 12,
                max_topics_per_user: 4,
                topic_skew: 1.0,
            },
            &mut rng,
        );
        let path = temp_path("roundtrip.tsv");
        write_profiles(&profiles, &path).unwrap();
        let back = read_profiles(&path).unwrap();
        assert_eq!(back.num_users(), profiles.num_users());
        assert_eq!(back.num_topics(), profiles.num_topics());
        assert_eq!(back.num_entries(), profiles.num_entries());
        for user in 0..profiles.num_users() {
            assert_eq!(back.user_vector(user), profiles.user_vector(user));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dimensions_survive_trailing_empties() {
        // User 4 and topic 9 hold nothing; the header keeps them.
        let profiles = UserProfiles::from_entries(5, 10, &[(0, 0, 1.0)]);
        let path = temp_path("empty-tail.tsv");
        write_profiles(&profiles, &path).unwrap();
        let back = read_profiles(&path).unwrap();
        assert_eq!(back.num_users(), 5);
        assert_eq!(back.num_topics(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_header_rejected() {
        let path = temp_path("no-header.tsv");
        std::fs::write(&path, "0\t0\t0.5\n").unwrap();
        assert!(matches!(read_profiles(&path).unwrap_err(), ProfileIoError::MissingHeader));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let path = temp_path("bad-line.tsv");
        std::fs::write(&path, "# kbtim profiles: users=2 topics=2 entries=1\n0\t0\n").unwrap();
        match read_profiles(&path).unwrap_err() {
            ProfileIoError::Parse(line, _) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_between_entries_ok() {
        let path = temp_path("comments.tsv");
        std::fs::write(
            &path,
            "# kbtim profiles: users=2 topics=2 entries=2\n0\t0\t0.5\n# interlude\n1\t1\t1\n",
        )
        .unwrap();
        let back = read_profiles(&path).unwrap();
        assert_eq!(back.num_entries(), 2);
        std::fs::remove_file(&path).ok();
    }
}
