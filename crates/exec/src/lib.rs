//! Deterministic parallel execution for the KB-TIM hot paths.
//!
//! Every parallel loop in the workspace follows one discipline so that
//! **results are bit-identical for any thread count**:
//!
//! 1. work is split into *shards* whose count and boundaries depend only
//!    on the problem size ([`shard_count`] / [`shard_range`]), never on
//!    how many threads happen to run;
//! 2. each shard owns an independent RNG stream derived from a base seed
//!    and its shard index ([`shard_seed`]), so no shard ever observes
//!    another shard's draws;
//! 3. shard outputs are merged in shard-index order.
//!
//! [`ExecPool`] schedules shards over one of two engines:
//!
//! * **Persistent** (the default, [`ExecPool::new`]): a long-lived
//!   worker pool of parked OS threads sharing an injector slot — one
//!   job at a time, shards claimed from an atomic counter. Workers spawn
//!   lazily on the first parallel call and then stay parked between
//!   calls, so a serving tier pays thread-spawn cost once per process,
//!   not once per query. If a second job arrives while one is running
//!   (concurrent queries against a shared index), the submitter degrades
//!   to inline execution — same answer, no queueing latency cliff, no
//!   possibility of deadlock on re-entrant submission.
//! * **Scoped** ([`ExecPool::scoped`]): the original
//!   `std::thread::scope` engine — workers spawned per call. Kept as the
//!   fallback and as the determinism *oracle* the persistent engine is
//!   property-tested against.
//!
//! With one thread (or one shard) both engines degrade to an inline loop
//! with zero synchronization. Worker-local scratch state (e.g. an
//! `RrSampler`'s stamp arrays) is supported through
//! [`ExecPool::map_shards_with`] — scratch reuse is safe precisely
//! because shard outputs are functions of (shard index, base seed) alone.

#![deny(missing_docs)]

use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Default work-shard granularity (items per shard) for batch sampling.
///
/// Coarse enough to amortize scheduling, fine enough to load-balance the
/// skewed RR-set sizes of power-law graphs. Part of the deterministic
/// output contract: changing it changes which RNG stream draws which
/// sample (but never the distribution).
pub const DEFAULT_SHARD_SIZE: usize = 512;

/// Derive the RNG seed of shard `shard` from a base seed.
///
/// The XOR'd value feeds `SmallRng::seed_from_u64`, which expands it with
/// SplitMix64, so consecutive shard ids yield uncorrelated streams.
#[inline]
pub fn shard_seed(base: u64, shard: u64) -> u64 {
    base ^ shard
}

/// Number of shards needed to cover `total` items at `shard_size` each.
#[inline]
pub fn shard_count(total: usize, shard_size: usize) -> usize {
    assert!(shard_size > 0, "shard_size must be positive");
    total.div_ceil(shard_size)
}

/// Item range of shard `shard` (the final shard may be short).
#[inline]
pub fn shard_range(total: usize, shard_size: usize, shard: usize) -> Range<usize> {
    let start = shard * shard_size;
    start..((start + shard_size).min(total))
}

/// A deterministic parallel executor with a fixed worker count.
///
/// Cloning is cheap and shares the underlying worker pool (persistent
/// engine) or just the thread count (scoped engine). Constructing a pool
/// is free either way: persistent workers spawn lazily on the first
/// parallel call.
#[derive(Debug, Clone)]
pub struct ExecPool {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// Workers spawned per call under `std::thread::scope` — the
    /// original engine, kept as fallback and determinism oracle.
    Scoped { threads: usize },
    /// Long-lived parked workers shared by every clone of this pool.
    Persistent(Arc<Persistent>),
}

#[derive(Debug)]
struct Persistent {
    threads: usize,
    /// Spawned on the first parallel call; parked between calls.
    workers: OnceLock<WorkerPool>,
}

fn resolve_threads(threads: Option<usize>) -> usize {
    match threads {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

impl ExecPool {
    /// Persistent pool with an explicit worker count; `None` uses the
    /// machine's available parallelism. Workers spawn on first use and
    /// stay parked between calls until the last clone drops.
    pub fn new(threads: Option<usize>) -> ExecPool {
        let threads = resolve_threads(threads);
        if threads <= 1 {
            // One thread never schedules anything: skip the machinery.
            return ExecPool::sequential();
        }
        ExecPool {
            inner: Inner::Persistent(Arc::new(Persistent { threads, workers: OnceLock::new() })),
        }
    }

    /// Scoped pool (workers spawned per call) — the fallback engine and
    /// the oracle the persistent engine is tested against.
    pub fn scoped(threads: Option<usize>) -> ExecPool {
        ExecPool { inner: Inner::Scoped { threads: resolve_threads(threads) } }
    }

    /// Single-threaded pool (inline execution, no synchronization).
    pub fn sequential() -> ExecPool {
        ExecPool { inner: Inner::Scoped { threads: 1 } }
    }

    /// Worker count this pool schedules onto.
    pub fn threads(&self) -> usize {
        match &self.inner {
            Inner::Scoped { threads } => *threads,
            Inner::Persistent(p) => p.threads,
        }
    }

    /// Whether this pool keeps long-lived workers between calls.
    pub fn is_persistent(&self) -> bool {
        matches!(self.inner, Inner::Persistent(_))
    }

    /// Map `f` over shard indices `0..num_shards`, returning outputs in
    /// shard order regardless of execution interleaving.
    pub fn map_shards<T, F>(&self, num_shards: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_shards_with(num_shards, || (), |(), shard| f(shard))
    }

    /// [`ExecPool::map_shards`] with worker-local scratch state: `init`
    /// runs once per worker, and `f` receives the worker's state mutably.
    ///
    /// Shard outputs must be functions of the shard index alone (not of
    /// the scratch contents), which every caller in this workspace
    /// guarantees by re-seeding per shard.
    pub fn map_shards_with<S, T, I, F>(&self, num_shards: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if num_shards == 0 {
            return Vec::new();
        }
        // Failpoint on the job-dispatch edge: `delay` stalls the fan-out,
        // `panic` kills the submitting side mid-dispatch (the containment
        // tier must survive both). `err` has no meaning here — dispatch
        // is infallible — so an armed `err` action passes through.
        let _ = kbtim_fault::inject("exec.dispatch");
        let workers = self.threads().min(num_shards);
        if workers <= 1 {
            let mut state = init();
            return (0..num_shards).map(|shard| f(&mut state, shard)).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..num_shards).map(|_| Mutex::new(None)).collect();
        // The whole per-worker loop, shared by both engines: claim shards
        // from the atomic counter until drained, writing outputs into
        // their shard's slot. Which worker runs which shard varies; where
        // each output lands does not.
        let worker_loop = || {
            let mut state = init();
            loop {
                let shard = next.fetch_add(1, Ordering::Relaxed);
                if shard >= num_shards {
                    break;
                }
                let out = f(&mut state, shard);
                *slots[shard].lock().expect("result slot poisoned") = Some(out);
            }
        };

        match &self.inner {
            Inner::Scoped { .. } => {
                std::thread::scope(|scope| {
                    // The submitting thread participates too, so `workers`
                    // threads total run the loop (same as the persistent
                    // engine — and one fewer spawn than before). Spawn by
                    // shared reference: every worker runs the same `Fn`.
                    let worker: &(dyn Fn() + Sync) = &worker_loop;
                    for _ in 1..workers {
                        scope.spawn(worker);
                    }
                    worker_loop();
                });
            }
            Inner::Persistent(p) => {
                let pool = p.workers.get_or_init(|| WorkerPool::spawn(p.threads - 1));
                pool.run(&worker_loop);
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every shard produced a result")
            })
            .collect()
    }
}

/// Type-erased pointer to a submitted job's worker loop.
///
/// The pointee lives on the submitting thread's stack; [`WorkerPool::run`]
/// guarantees it stays alive until every worker has exited the loop (the
/// submitter blocks until `active == 0` after retracting the job), which
/// is what makes the lifetime erasure sound.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared-reference callable from any
// thread) and `WorkerPool::run` keeps it alive for as long as any worker
// can hold the pointer.
unsafe impl Send for TaskPtr {}

#[derive(Clone, Copy)]
struct Job {
    task: TaskPtr,
    /// Publication sequence number, so a worker never runs one job twice.
    epoch: u64,
}

#[derive(Default)]
struct PoolState {
    /// The injector slot: at most one job at a time. Retracted (set back
    /// to `None`) by the submitter before it returns.
    job: Option<Job>,
    /// Sequence number of the most recently published job.
    epoch: u64,
    /// Workers currently inside a job's loop.
    active: usize,
    /// First panic payload observed by a worker during the current job.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The submitter parks here while stragglers finish.
    done: Condvar,
}

/// Long-lived parked worker threads executing one injected job at a time.
///
/// Not constructed directly — [`ExecPool::new`] owns one lazily. Exposed
/// only through the `ExecPool` API so every call site keeps the shard
/// determinism contract.
#[derive(Debug)]
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolShared { .. }")
    }
}

impl WorkerPool {
    /// Spawn `extra_workers` parked threads (the submitting thread is the
    /// +1 that brings a pool to its full worker count).
    fn spawn(extra_workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..extra_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kbtim-exec-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Execute `task` on every pool worker plus the calling thread, then
    /// block until all of them have left the loop.
    ///
    /// If the injector slot is occupied (another thread's job is in
    /// flight), the task runs entirely inline on the caller — the shard
    /// loop is self-contained, so the answer is identical and re-entrant
    /// submission can never deadlock.
    fn run(&self, task: &(dyn Fn() + Sync)) {
        // SAFETY: `run` does not return until `active == 0` with the job
        // retracted, so no worker can dereference the pointer after the
        // referent's stack frame dies (see TaskPtr).
        let raw = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task)
        });
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            if st.job.is_some() {
                drop(st);
                task(); // contended: degrade to inline, same answer
                return;
            }
            st.epoch += 1;
            st.job = Some(Job { task: raw, epoch: st.epoch });
            self.shared.work.notify_all();
        }
        // Participate; a panicking task must not skip the retraction
        // below (workers still hold the pointer), so catch and re-throw
        // after the barrier.
        let mine = std::panic::catch_unwind(AssertUnwindSafe(task));
        let theirs = {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.job = None; // retract: late wake-ups go back to sleep
            while st.active > 0 {
                st = self.shared.done.wait(st).expect("pool state poisoned");
            }
            st.panic.take()
        };
        if let Err(payload) = mine {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = theirs {
            std::panic::resume_unwind(payload);
        }
    }
}

fn worker_main(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    Some(job) if job.epoch > seen_epoch => {
                        st.active += 1;
                        break job;
                    }
                    _ => st = shared.work.wait(st).expect("pool state poisoned"),
                }
            }
        };
        seen_epoch = job.epoch;
        // SAFETY: `active` was incremented under the lock while the job
        // was published, so WorkerPool::run is still blocked in its
        // `active > 0` wait and the pointee is alive.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job.task.0)() }));
        let mut st = shared.state.lock().expect("pool state poisoned");
        if let Err(payload) = result {
            // Keep the first payload; the submitter re-throws it. The
            // worker itself survives, so the pool never shrinks.
            st.panic.get_or_insert(payload);
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
        drop(st);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A waker-coupled completion queue: worker threads push finished
/// results, an event loop drains them in batches.
///
/// The serving tier's epoll loop blocks in `epoll_wait`, so a plain
/// channel is not enough — something must kick the loop awake when a
/// result lands. `CompletionQueue` couples the hand-off with that kick:
/// every [`CompletionQueue::push`] appends under the mutex and then
/// invokes the waker (an `eventfd` write in the serving tier; a no-op or
/// condvar notify elsewhere). The consumer drains the whole backlog in
/// one lock acquisition with [`CompletionQueue::drain_into`], so a burst
/// of completions costs one wake-up and one allocation-free swap, not
/// one syscall per result.
pub struct CompletionQueue<T> {
    items: Mutex<Vec<T>>,
    waker: Box<dyn Fn() + Send + Sync>,
}

impl<T> std::fmt::Debug for CompletionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CompletionQueue { .. }")
    }
}

impl<T> CompletionQueue<T> {
    /// A queue whose pushes invoke `waker` after publishing the item.
    pub fn new(waker: impl Fn() + Send + Sync + 'static) -> CompletionQueue<T> {
        CompletionQueue { items: Mutex::new(Vec::new()), waker: Box::new(waker) }
    }

    /// Publish one completed item, then wake the consumer. The item is
    /// visible to [`CompletionQueue::drain_into`] before the waker runs,
    /// so a consumer woken by this call always observes it.
    pub fn push(&self, item: T) {
        self.items.lock().expect("completion queue poisoned").push(item);
        (self.waker)();
    }

    /// Move every queued item into `out` (appending), in push order.
    /// Returns how many items were drained.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let mut items = self.items.lock().expect("completion queue poisoned");
        let n = items.len();
        out.append(&mut items);
        n
    }

    /// Items currently queued (racy by nature; for stats and tests).
    pub fn len(&self) -> usize {
        self.items.lock().expect("completion queue poisoned").len()
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shard_geometry() {
        assert_eq!(shard_count(0, 512), 0);
        assert_eq!(shard_count(1, 512), 1);
        assert_eq!(shard_count(512, 512), 1);
        assert_eq!(shard_count(513, 512), 2);
        assert_eq!(shard_range(1000, 512, 0), 0..512);
        assert_eq!(shard_range(1000, 512, 1), 512..1000);
    }

    #[test]
    fn outputs_in_shard_order() {
        for pool in [ExecPool::new(Some(4)), ExecPool::scoped(Some(4))] {
            let out = pool.map_shards(100, |shard| shard * 2);
            assert_eq!(out, (0..100).map(|s| s * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_across_thread_counts_and_engines() {
        // The deterministic contract: same shard outputs for 1 vs N
        // threads, scoped or persistent, including when shards draw
        // randomness from their derived streams.
        let run = |pool: ExecPool| -> Vec<Vec<u32>> {
            pool.map_shards(37, |shard| {
                let mut rng = SmallRng::seed_from_u64(shard_seed(99, shard as u64));
                (0..20).map(|_| rng.gen_range(0..1000u32)).collect()
            })
        };
        let single = run(ExecPool::sequential());
        for threads in [2, 4, 8] {
            assert_eq!(single, run(ExecPool::new(Some(threads))), "persistent threads={threads}");
            assert_eq!(single, run(ExecPool::scoped(Some(threads))), "scoped threads={threads}");
        }
    }

    #[test]
    fn persistent_pool_reused_across_calls() {
        // Same pool instance over many calls: workers spawn once (lazily)
        // and every call still honours the shard-order contract.
        let pool = ExecPool::new(Some(4));
        for round in 0..50 {
            let out = pool.map_shards(23, move |shard| shard * 31 + round);
            assert_eq!(out, (0..23).map(|s| s * 31 + round).collect::<Vec<_>>(), "round {round}");
        }
        assert!(pool.is_persistent());
    }

    #[test]
    fn clones_share_one_worker_pool() {
        let pool = ExecPool::new(Some(3));
        let clone = pool.clone();
        let a = pool.map_shards(10, |s| s);
        let b = clone.map_shards(10, |s| s);
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_submissions_both_complete() {
        // Two threads submitting to one shared pool: one wins the
        // injector slot, the other degrades to inline — both answers are
        // complete and correct.
        let pool = ExecPool::new(Some(4));
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for t in 0..4 {
                let pool = pool.clone();
                joins.push(scope.spawn(move || pool.map_shards(200, move |s| s as u64 + t)));
            }
            for (t, join) in joins.into_iter().enumerate() {
                let out = join.join().expect("submitter panicked");
                assert_eq!(out, (0..200).map(|s| s as u64 + t as u64).collect::<Vec<_>>());
            }
        });
    }

    #[test]
    fn reentrant_submission_runs_inline() {
        // A shard body submitting to its own pool must not deadlock: the
        // slot is occupied, so the nested call runs inline.
        let pool = ExecPool::new(Some(2));
        let nested = pool.clone();
        let out = pool.map_shards(4, move |shard| {
            let inner: usize = nested.map_shards(3, |s| s).into_iter().sum();
            shard * 10 + inner
        });
        assert_eq!(out, vec![3, 13, 23, 33]);
    }

    #[test]
    fn worker_state_reused_but_results_pure() {
        for pool in [ExecPool::new(Some(3)), ExecPool::scoped(Some(3))] {
            // State counts calls; outputs ignore it, so order
            // independence holds.
            let out = pool.map_shards_with(
                50,
                || 0usize,
                |calls, shard| {
                    *calls += 1;
                    shard + 1
                },
            );
            assert_eq!(out, (1..=50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_shard() {
        for pool in [ExecPool::new(Some(8)), ExecPool::scoped(Some(8))] {
            assert!(pool.map_shards(0, |s| s).is_empty());
            assert_eq!(pool.map_shards(1, |s| s), vec![0]);
        }
    }

    #[test]
    fn pool_sizing() {
        assert_eq!(ExecPool::sequential().threads(), 1);
        assert_eq!(ExecPool::new(Some(0)).threads(), 1);
        assert_eq!(ExecPool::new(Some(6)).threads(), 6);
        assert!(ExecPool::new(None).threads() >= 1);
        assert_eq!(ExecPool::scoped(Some(5)).threads(), 5);
        assert!(!ExecPool::sequential().is_persistent());
        assert!(!ExecPool::scoped(Some(4)).is_persistent());
    }

    #[test]
    fn panic_in_shard_propagates_and_pool_survives() {
        let pool = ExecPool::new(Some(4));
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_shards(64, |shard| {
                if shard == 13 {
                    panic!("boom in shard 13");
                }
                shard
            })
        }));
        assert!(attempt.is_err(), "shard panic must propagate to the submitter");
        // The pool must still work afterwards: workers caught the panic
        // instead of dying.
        let out = pool.map_shards(16, |s| s);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "shard_size must be positive")]
    fn zero_shard_size_rejected() {
        shard_count(10, 0);
    }

    #[test]
    fn completion_queue_wakes_and_drains_in_order() {
        let wakes = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&wakes);
        let queue: CompletionQueue<u32> = CompletionQueue::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert!(queue.is_empty());

        // Concurrent pushes: every item arrives exactly once and every
        // push fired the waker.
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let queue = &queue;
                scope.spawn(move || {
                    for i in 0..25 {
                        queue.push(t * 100 + i);
                    }
                });
            }
        });
        assert_eq!(wakes.load(Ordering::SeqCst), 100);
        assert_eq!(queue.len(), 100);

        let mut out = Vec::new();
        assert_eq!(queue.drain_into(&mut out), 100);
        assert!(queue.is_empty());
        out.sort_unstable();
        let expected: Vec<u32> = (0..4).flat_map(|t| (0..25).map(move |i| t * 100 + i)).collect();
        assert_eq!(out, expected);

        // Per-producer FIFO: one producer's items drain in push order.
        queue.push(3);
        queue.push(1);
        queue.push(2);
        let mut out = Vec::new();
        queue.drain_into(&mut out);
        assert_eq!(out, vec![3, 1, 2]);
    }
}
