//! Deterministic parallel execution for the KB-TIM hot paths.
//!
//! Every parallel loop in the workspace follows one discipline so that
//! **results are bit-identical for any thread count**:
//!
//! 1. work is split into *shards* whose count and boundaries depend only
//!    on the problem size ([`shard_count`] / [`shard_range`]), never on
//!    how many threads happen to run;
//! 2. each shard owns an independent RNG stream derived from a base seed
//!    and its shard index ([`shard_seed`]), so no shard ever observes
//!    another shard's draws;
//! 3. shard outputs are merged in shard-index order.
//!
//! [`ExecPool`] schedules shards over `std::thread::scope` workers with a
//! simple atomic work queue; with one thread (or one shard) it degrades to
//! an inline loop with zero synchronization. Worker-local scratch state
//! (e.g. an `RrSampler`'s stamp arrays) is supported through
//! [`ExecPool::map_shards_with`] — scratch reuse is safe precisely because
//! shard outputs are functions of (shard index, base seed) alone.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default work-shard granularity (items per shard) for batch sampling.
///
/// Coarse enough to amortize scheduling, fine enough to load-balance the
/// skewed RR-set sizes of power-law graphs. Part of the deterministic
/// output contract: changing it changes which RNG stream draws which
/// sample (but never the distribution).
pub const DEFAULT_SHARD_SIZE: usize = 512;

/// Derive the RNG seed of shard `shard` from a base seed.
///
/// The XOR'd value feeds `SmallRng::seed_from_u64`, which expands it with
/// SplitMix64, so consecutive shard ids yield uncorrelated streams.
#[inline]
pub fn shard_seed(base: u64, shard: u64) -> u64 {
    base ^ shard
}

/// Number of shards needed to cover `total` items at `shard_size` each.
#[inline]
pub fn shard_count(total: usize, shard_size: usize) -> usize {
    assert!(shard_size > 0, "shard_size must be positive");
    total.div_ceil(shard_size)
}

/// Item range of shard `shard` (the final shard may be short).
#[inline]
pub fn shard_range(total: usize, shard_size: usize, shard: usize) -> Range<usize> {
    let start = shard * shard_size;
    start..((start + shard_size).min(total))
}

/// A deterministic parallel executor with a fixed worker count.
///
/// Creating a pool is free — workers are scoped per call, so a pool can
/// be built ad hoc wherever a `threads` knob is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPool {
    threads: usize,
}

impl ExecPool {
    /// Pool with an explicit worker count; `None` uses the machine's
    /// available parallelism.
    pub fn new(threads: Option<usize>) -> ExecPool {
        let threads = match threads {
            Some(n) => n.max(1),
            None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        };
        ExecPool { threads }
    }

    /// Single-threaded pool (inline execution, no synchronization).
    pub fn sequential() -> ExecPool {
        ExecPool { threads: 1 }
    }

    /// Worker count this pool schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over shard indices `0..num_shards`, returning outputs in
    /// shard order regardless of execution interleaving.
    pub fn map_shards<T, F>(&self, num_shards: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_shards_with(num_shards, || (), |(), shard| f(shard))
    }

    /// [`ExecPool::map_shards`] with worker-local scratch state: `init`
    /// runs once per worker, and `f` receives the worker's state mutably.
    ///
    /// Shard outputs must be functions of the shard index alone (not of
    /// the scratch contents), which every caller in this workspace
    /// guarantees by re-seeding per shard.
    pub fn map_shards_with<S, T, I, F>(&self, num_shards: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if num_shards == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(num_shards);
        if workers <= 1 {
            let mut state = init();
            return (0..num_shards).map(|shard| f(&mut state, shard)).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..num_shards).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        if shard >= num_shards {
                            break;
                        }
                        let out = f(&mut state, shard);
                        *slots[shard].lock().expect("result slot poisoned") = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every shard produced a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shard_geometry() {
        assert_eq!(shard_count(0, 512), 0);
        assert_eq!(shard_count(1, 512), 1);
        assert_eq!(shard_count(512, 512), 1);
        assert_eq!(shard_count(513, 512), 2);
        assert_eq!(shard_range(1000, 512, 0), 0..512);
        assert_eq!(shard_range(1000, 512, 1), 512..1000);
    }

    #[test]
    fn outputs_in_shard_order() {
        let pool = ExecPool::new(Some(4));
        let out = pool.map_shards(100, |shard| shard * 2);
        assert_eq!(out, (0..100).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        // The deterministic contract: same shard outputs for 1 vs N threads,
        // including when shards draw randomness from their derived streams.
        let run = |threads: usize| -> Vec<Vec<u32>> {
            let pool = ExecPool::new(Some(threads));
            pool.map_shards(37, |shard| {
                let mut rng = SmallRng::seed_from_u64(shard_seed(99, shard as u64));
                (0..20).map(|_| rng.gen_range(0..1000u32)).collect()
            })
        };
        let single = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(single, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn worker_state_reused_but_results_pure() {
        let pool = ExecPool::new(Some(3));
        // State counts calls; outputs ignore it, so order independence holds.
        let out = pool.map_shards_with(
            50,
            || 0usize,
            |calls, shard| {
                *calls += 1;
                shard + 1
            },
        );
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_shard() {
        let pool = ExecPool::new(Some(8));
        assert!(pool.map_shards(0, |s| s).is_empty());
        assert_eq!(pool.map_shards(1, |s| s), vec![0]);
    }

    #[test]
    fn pool_sizing() {
        assert_eq!(ExecPool::sequential().threads(), 1);
        assert_eq!(ExecPool::new(Some(0)).threads(), 1);
        assert_eq!(ExecPool::new(Some(6)).threads(), 6);
        assert!(ExecPool::new(None).threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "shard_size must be positive")]
    fn zero_shard_size_rejected() {
        shard_count(10, 0);
    }
}
