//! Property-based round-trip tests for every codec layer.

use kbtim_codec::{bitpack, delta, list, varint, Codec};
use proptest::prelude::*;

fn sorted_vec(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<u32>(), 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #[test]
    fn varint_u32_roundtrip(v in any::<u32>()) {
        let mut buf = Vec::new();
        varint::write_u32(v, &mut buf);
        let (decoded, used) = varint::read_u32(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn varint_u64_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(v, &mut buf);
        let (decoded, used) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(varint::zigzag_decode(varint::zigzag_encode(v)), v);
    }

    #[test]
    fn delta_roundtrip(values in sorted_vec(600)) {
        let mut work = values.clone();
        delta::delta_in_place(&mut work);
        delta::undelta_in_place(&mut work).unwrap();
        prop_assert_eq!(work, values);
    }

    #[test]
    fn bitpack_roundtrip(values in proptest::collection::vec(any::<u32>(), bitpack::BLOCK_LEN)) {
        let width = bitpack::max_bits(&values);
        let mut packed = Vec::new();
        bitpack::pack_block(&values, width, &mut packed);
        let mut out = Vec::new();
        let used = bitpack::unpack_block(&packed, width, &mut out).unwrap();
        prop_assert_eq!(used, packed.len());
        prop_assert_eq!(out, values);
    }

    #[test]
    fn packed_list_roundtrip(values in sorted_vec(1000)) {
        let mut buf = Vec::new();
        list::encode_packed(&values, &mut buf);
        let mut out = Vec::new();
        let used = list::decode_packed(&buf, &mut out).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(out, values);
    }

    #[test]
    fn raw_list_roundtrip(values in sorted_vec(1000)) {
        let mut buf = Vec::new();
        list::encode_raw(&values, &mut buf);
        let mut out = Vec::new();
        let used = list::decode_raw(&buf, &mut out).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(out, values);
    }

    #[test]
    fn codecs_agree(values in sorted_vec(800)) {
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            codec.encode_sorted(&values, &mut buf);
            let mut out = Vec::new();
            codec.decode_sorted(&buf, &mut out).unwrap();
            prop_assert_eq!(&out, &values);
        }
    }

    #[test]
    fn concatenated_stream_roundtrip(lists in proptest::collection::vec(sorted_vec(120), 0..12)) {
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            for l in &lists {
                codec.encode_sorted(l, &mut buf);
            }
            let mut pos = 0;
            for l in &lists {
                let mut out = Vec::new();
                pos += codec.decode_sorted(&buf[pos..], &mut out).unwrap();
                prop_assert_eq!(&out, l);
            }
            prop_assert_eq!(pos, buf.len());
        }
    }

    /// Decoding never panics on arbitrary bytes — it either succeeds or
    /// returns a structured error.
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut out = Vec::new();
        let _ = list::decode_packed(&bytes, &mut out);
        out.clear();
        let _ = list::decode_raw(&bytes, &mut out);
    }
}
