//! Property-based round-trip tests for every codec layer, including the
//! SIMD-vs-scalar bit-equality contract: every runtime-dispatched kernel
//! tier the host supports must reproduce the scalar oracle exactly — for
//! every width 0..=32, every lane remainder, truncated inputs, and
//! corrupt (overflowing) gap streams.

use kbtim_codec::{bitpack, delta, list, simd, varint, Codec};
use proptest::prelude::*;

fn sorted_vec(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<u32>(), 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// One full block of values that fit a random width, so every width
/// 0..=32 (and therefore every per-width kernel, the gather path, and
/// the shift/mask fallback) gets exercised.
fn block_for_width() -> impl Strategy<Value = (u8, Vec<u32>)> {
    (0u8..=32).prop_flat_map(|w| {
        let max = match w {
            0 => 0,
            32 => u32::MAX,
            _ => (1u32 << w) - 1,
        };
        proptest::collection::vec(0..=max, bitpack::BLOCK_LEN).prop_map(move |v| (w, v))
    })
}

proptest! {
    #[test]
    fn varint_u32_roundtrip(v in any::<u32>()) {
        let mut buf = Vec::new();
        varint::write_u32(v, &mut buf);
        let (decoded, used) = varint::read_u32(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn varint_u64_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(v, &mut buf);
        let (decoded, used) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(varint::zigzag_decode(varint::zigzag_encode(v)), v);
    }

    #[test]
    fn delta_roundtrip(values in sorted_vec(600)) {
        let mut work = values.clone();
        delta::delta_in_place(&mut work);
        delta::undelta_in_place(&mut work).unwrap();
        prop_assert_eq!(work, values);
    }

    #[test]
    fn bitpack_roundtrip(values in proptest::collection::vec(any::<u32>(), bitpack::BLOCK_LEN)) {
        let width = bitpack::max_bits(&values);
        let mut packed = Vec::new();
        bitpack::pack_block(&values, width, &mut packed);
        let mut out = Vec::new();
        let used = bitpack::unpack_block(&packed, width, &mut out).unwrap();
        prop_assert_eq!(used, packed.len());
        prop_assert_eq!(out, values);
    }

    #[test]
    fn packed_list_roundtrip(values in sorted_vec(1000)) {
        let mut buf = Vec::new();
        list::encode_packed(&values, &mut buf);
        let mut out = Vec::new();
        let used = list::decode_packed(&buf, &mut out).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(out, values);
    }

    #[test]
    fn raw_list_roundtrip(values in sorted_vec(1000)) {
        let mut buf = Vec::new();
        list::encode_raw(&values, &mut buf);
        let mut out = Vec::new();
        let used = list::decode_raw(&buf, &mut out).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(out, values);
    }

    #[test]
    fn codecs_agree(values in sorted_vec(800)) {
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            codec.encode_sorted(&values, &mut buf);
            let mut out = Vec::new();
            codec.decode_sorted(&buf, &mut out).unwrap();
            prop_assert_eq!(&out, &values);
        }
    }

    #[test]
    fn concatenated_stream_roundtrip(lists in proptest::collection::vec(sorted_vec(120), 0..12)) {
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            for l in &lists {
                codec.encode_sorted(l, &mut buf);
            }
            let mut pos = 0;
            for l in &lists {
                let mut out = Vec::new();
                pos += codec.decode_sorted(&buf[pos..], &mut out).unwrap();
                prop_assert_eq!(&out, l);
            }
            prop_assert_eq!(pos, buf.len());
        }
    }

    /// Decoding never panics on arbitrary bytes — it either succeeds or
    /// returns a structured error.
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut out = Vec::new();
        let _ = list::decode_packed(&bytes, &mut out);
        out.clear();
        let _ = list::decode_raw(&bytes, &mut out);
    }

    /// Every supported kernel tier unpacks bit-identically to the scalar
    /// oracle for every width. `pad` varies the trailing bytes after the
    /// block: 0 exercises the end-of-segment bounds fallbacks (gather /
    /// unaligned-load windows that would overrun), larger values the
    /// mid-stream fast paths.
    #[test]
    fn simd_unpack_matches_scalar_for_all_widths(
        (width, values) in block_for_width(),
        pad in 0usize..9,
    ) {
        let mut packed = Vec::new();
        bitpack::pack_block(&values, width, &mut packed);
        let byte_len = packed.len();
        packed.resize(byte_len + pad, 0xAB);
        let mut oracle = vec![7u32]; // decode appends, never clears
        let used = bitpack::unpack_block_scalar(&packed, width, &mut oracle).unwrap();
        prop_assert_eq!(used, byte_len);
        prop_assert_eq!(&oracle[1..], values.as_slice());
        for &level in simd::supported_levels() {
            let mut out = vec![7u32];
            let used = bitpack::unpack_block_with(level, &packed, width, &mut out).unwrap();
            prop_assert_eq!(used, byte_len, "width {} level {}", width, level.name());
            prop_assert_eq!(&out, &oracle, "width {} level {}", width, level.name());
        }
    }

    /// Error cases agree across tiers too: truncated payloads are
    /// `UnexpectedEof`, oversized widths `InvalidBitWidth`, and neither
    /// appends anything.
    #[test]
    fn simd_unpack_error_cases_match_scalar(
        (width, values) in block_for_width(),
        cut in 1usize..32,
        bad_width in 33u8..=255,
    ) {
        let mut packed = Vec::new();
        bitpack::pack_block(&values, width, &mut packed);
        for &level in simd::supported_levels() {
            if width > 0 {
                let cut = cut.min(packed.len());
                let mut out = vec![7u32];
                prop_assert_eq!(
                    bitpack::unpack_block_with(level, &packed[..packed.len() - cut], width, &mut out)
                        .unwrap_err(),
                    kbtim_codec::CodecError::UnexpectedEof
                );
                prop_assert_eq!(&out, &vec![7u32], "EOF must not append ({})", level.name());
            }
            let mut out = Vec::new();
            prop_assert_eq!(
                bitpack::unpack_block_with(level, &packed, bad_width, &mut out).unwrap_err(),
                kbtim_codec::CodecError::InvalidBitWidth(bad_width)
            );
            prop_assert!(out.is_empty());
        }
    }

    /// The SIMD-dispatched gap decoders match the scalar oracle on
    /// arbitrary gap streams — including corrupt (overflowing) ones,
    /// where the error *and* the partially written output must be
    /// bit-identical.
    #[test]
    fn simd_gap_decode_matches_scalar(gaps in proptest::collection::vec(any::<u32>(), 0..600)) {
        // The oracle: the documented scalar semantics, computed by hand.
        let mut oracle_out = vec![42u32];
        let mut oracle_err = None;
        let mut acc = 0u32;
        for &g in &gaps {
            match acc.checked_add(g) {
                Some(next) => {
                    acc = next;
                    oracle_out.push(acc);
                }
                None => {
                    oracle_err = Some(kbtim_codec::CodecError::NonMonotonic);
                    break;
                }
            }
        }

        let mut out = vec![42u32];
        let got = delta::decode_deltas_into(&gaps, &mut out);
        prop_assert_eq!(got.err(), oracle_err.clone());
        prop_assert_eq!(&out, &oracle_out);

        // undelta_in_place agrees element for element with its scalar twin.
        let mut fast = gaps.clone();
        let mut slow = gaps.clone();
        let fast_res = delta::undelta_in_place(&mut fast);
        let slow_res = delta::undelta_in_place_scalar(&mut slow);
        prop_assert_eq!(fast_res.err(), slow_res.err());
        prop_assert_eq!(fast, slow);
    }
}
