//! LEB128 variable-length integer encoding.
//!
//! Small values dominate both delta-coded posting lists and segment framing
//! metadata, so a byte-oriented varint gives most of the win of heavier
//! codecs at trivial code cost. `u32` values take 1–5 bytes, `u64` 1–10.

use crate::CodecError;

/// Maximum encoded size of a `u32` varint.
pub const MAX_VARINT32_LEN: usize = 5;
/// Maximum encoded size of a `u64` varint.
pub const MAX_VARINT64_LEN: usize = 10;

/// Append the LEB128 encoding of `value` to `out`.
#[inline]
pub fn write_u32(mut value: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append the LEB128 encoding of `value` to `out`.
#[inline]
pub fn write_u64(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a `u32` varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
#[inline]
pub fn read_u32(input: &[u8]) -> Result<(u32, usize), CodecError> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate().take(MAX_VARINT32_LEN) {
        let part = (byte & 0x7f) as u32;
        // The final (5th) byte may only carry 4 significant bits.
        if shift == 28 && part > 0x0f {
            return Err(CodecError::VarintOverflow);
        }
        value |= part << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    if input.len() < MAX_VARINT32_LEN {
        Err(CodecError::UnexpectedEof)
    } else {
        Err(CodecError::VarintOverflow)
    }
}

/// Decode a `u64` varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
#[inline]
pub fn read_u64(input: &[u8]) -> Result<(u64, usize), CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate().take(MAX_VARINT64_LEN) {
        let part = (byte & 0x7f) as u64;
        // The final (10th) byte may only carry a single significant bit.
        if shift == 63 && part > 1 {
            return Err(CodecError::VarintOverflow);
        }
        value |= part << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    if input.len() < MAX_VARINT64_LEN {
        Err(CodecError::UnexpectedEof)
    } else {
        Err(CodecError::VarintOverflow)
    }
}

/// Zig-zag map a signed value to unsigned so small magnitudes stay small.
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_boundaries() {
        let cases = [
            0u32,
            1,
            127,
            128,
            16_383,
            16_384,
            2_097_151,
            2_097_152,
            268_435_455,
            268_435_456,
            u32::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            write_u32(v, &mut buf);
            assert!(buf.len() <= MAX_VARINT32_LEN);
            let (decoded, used) = read_u32(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn u64_roundtrip_boundaries() {
        let cases = [0u64, 1, 127, 128, u32::MAX as u64, u64::MAX / 2, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            write_u64(v, &mut buf);
            assert!(buf.len() <= MAX_VARINT64_LEN);
            let (decoded, used) = read_u64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn encoded_length_grows_with_magnitude() {
        let mut one = Vec::new();
        write_u32(1, &mut one);
        let mut max = Vec::new();
        write_u32(u32::MAX, &mut max);
        assert_eq!(one.len(), 1);
        assert_eq!(max.len(), 5);
    }

    #[test]
    fn truncated_input_is_eof() {
        let mut buf = Vec::new();
        write_u32(u32::MAX, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(read_u32(&buf[..cut]).unwrap_err(), CodecError::UnexpectedEof);
        }
    }

    #[test]
    fn overlong_u32_is_overflow() {
        // Five continuation bytes carrying more than 32 bits of payload.
        let buf = [0xff, 0xff, 0xff, 0xff, 0x7f];
        assert_eq!(read_u32(&buf).unwrap_err(), CodecError::VarintOverflow);
    }

    #[test]
    fn overlong_u64_is_overflow() {
        let buf = [0xff; 10];
        assert_eq!(read_u64(&buf).unwrap_err(), CodecError::VarintOverflow);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1i64, 0, 1, -2, 2, i64::MIN, i64::MAX, -123_456_789] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }
}
