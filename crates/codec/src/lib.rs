//! Integer compression codecs for the KB-TIM disk indexes.
//!
//! The paper compresses its RR-set and inverted-list indexes with FastPFOR
//! (the codec used by Apache Lucene 4.6) and reports roughly 40–50 % space
//! savings at negligible build-time cost (Table 4). This crate provides the
//! equivalent building blocks from scratch:
//!
//! * [`varint`] — LEB128 variable-length encoding for `u32`/`u64`.
//! * [`delta`] — delta transforms for sorted id sequences.
//! * [`bitpack`] — frame-of-reference bit-packing of fixed-size blocks.
//! * [`list`] — the composed posting-list codec used by `kbtim-index`:
//!   sorted `u32` lists are delta-coded, split into blocks of 128, and each
//!   block is bit-packed with its minimal width; the tail is varint-coded.
//!
//! All codecs are pure functions over byte buffers: no I/O, no allocation
//! beyond the output buffers, and every encoder has a matching decoder with
//! a round-trip property test.
//!
//! The hot decode loops (block unpack, gap prefix sum) additionally have
//! runtime-dispatched SSE2/AVX2 kernels in [`simd`]; the scalar paths
//! stay as the oracle and the only code on non-x86-64 targets.

// Every unsafe operation inside the SIMD kernels' `unsafe fn`s must be
// individually justified, not blanket-covered by the fn signature.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bitpack;
pub mod delta;
pub mod list;
pub mod simd;
pub mod varint;

/// Errors produced while decoding compressed data.
///
/// Encoding is infallible; decoding validates framing so that a truncated or
/// corrupted buffer is reported instead of producing garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a complete value was decoded.
    UnexpectedEof,
    /// A varint ran over its maximum permitted length.
    VarintOverflow,
    /// A bit width outside `0..=32` was encountered.
    InvalidBitWidth(u8),
    /// A decoded delta sequence was not monotonically increasing.
    NonMonotonic,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed input"),
            CodecError::VarintOverflow => write!(f, "varint exceeds maximum length"),
            CodecError::InvalidBitWidth(w) => write!(f, "invalid bit width {w} (expected 0..=32)"),
            CodecError::NonMonotonic => write!(f, "decoded sequence is not sorted"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Which byte-level codec a segment uses for its integer lists.
///
/// `Raw` mirrors the paper's *uncompressed* index configuration and `Packed`
/// its FastPFOR-compressed configuration (Table 4 compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// Little-endian fixed-width `u32`s — fastest decode, largest files.
    Raw,
    /// Delta + frame-of-reference bit-packing — the compressed default.
    #[default]
    Packed,
}

impl Codec {
    /// Encode a **sorted** (non-decreasing) list of `u32` into `out`.
    ///
    /// The encoding is self-delimiting: it starts with the element count, so
    /// lists can be concatenated back-to-back in a segment block.
    pub fn encode_sorted(&self, values: &[u32], out: &mut Vec<u8>) {
        match self {
            Codec::Raw => list::encode_raw(values, out),
            Codec::Packed => list::encode_packed(values, out),
        }
    }

    /// Decode one list previously written by [`Codec::encode_sorted`],
    /// appending the values to `out` and returning the number of input bytes
    /// consumed.
    pub fn decode_sorted(&self, input: &[u8], out: &mut Vec<u32>) -> Result<usize, CodecError> {
        match self {
            Codec::Raw => list::decode_raw(input, out),
            Codec::Packed => list::decode_packed(input, out),
        }
    }

    /// Bulk-decode `count` back-to-back lists straight into one
    /// caller-owned CSR arena: values append to `ids`, and after each
    /// list its end boundary (`ids.len()`) is pushed to `offsets`.
    /// Callers seed `offsets` with the current arena length to get a
    /// leading boundary. Returns the input bytes consumed.
    ///
    /// This is the hot-path decode of `RR_BLOCK`/`IL_BLOCK` payloads:
    /// no per-list `Vec`, no intermediate gap buffer — one pass from the
    /// (possibly memory-mapped) block bytes into the query arena.
    pub fn decode_lists_into(
        &self,
        input: &[u8],
        count: usize,
        ids: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
    ) -> Result<usize, CodecError> {
        let mut pos = 0usize;
        offsets.reserve(count);
        for _ in 0..count {
            pos += self.decode_sorted(&input[pos..], ids)?;
            let end = u32::try_from(ids.len()).map_err(|_| CodecError::NonMonotonic)?;
            offsets.push(end);
        }
        Ok(pos)
    }

    /// Stable on-disk tag for this codec.
    pub fn tag(&self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::Packed => 1,
        }
    }

    /// Inverse of [`Codec::tag`].
    pub fn from_tag(tag: u8) -> Option<Codec> {
        match tag {
            0 => Some(Codec::Raw),
            1 => Some(Codec::Packed),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_tag_roundtrip() {
        for codec in [Codec::Raw, Codec::Packed] {
            assert_eq!(Codec::from_tag(codec.tag()), Some(codec));
        }
        assert_eq!(Codec::from_tag(7), None);
    }

    #[test]
    fn encode_decode_both_codecs() {
        let values: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            codec.encode_sorted(&values, &mut buf);
            let mut decoded = Vec::new();
            let used = codec.decode_sorted(&buf, &mut decoded).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(decoded, values);
        }
    }

    #[test]
    fn packed_is_smaller_on_dense_lists() {
        let values: Vec<u32> = (0..4096).collect();
        let mut raw = Vec::new();
        Codec::Raw.encode_sorted(&values, &mut raw);
        let mut packed = Vec::new();
        Codec::Packed.encode_sorted(&values, &mut packed);
        assert!(
            packed.len() * 4 < raw.len(),
            "packed {} should be well under raw {}",
            packed.len(),
            raw.len()
        );
    }

    #[test]
    fn decode_lists_into_matches_sequential_decode() {
        let lists: Vec<Vec<u32>> = vec![vec![1, 5, 9], vec![], vec![2, 2, 100_000], vec![7]];
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            for list in &lists {
                codec.encode_sorted(list, &mut buf);
            }
            let mut ids = Vec::new();
            let mut offsets = vec![0u32];
            let used = codec.decode_lists_into(&buf, lists.len(), &mut ids, &mut offsets).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(offsets.len(), lists.len() + 1);
            for (i, list) in lists.iter().enumerate() {
                assert_eq!(
                    &ids[offsets[i] as usize..offsets[i + 1] as usize],
                    list.as_slice(),
                    "list {i}"
                );
            }
        }
    }

    #[test]
    fn concatenated_lists_decode_in_sequence() {
        let a: Vec<u32> = vec![1, 5, 9];
        let b: Vec<u32> = vec![2, 2, 100_000];
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            codec.encode_sorted(&a, &mut buf);
            codec.encode_sorted(&b, &mut buf);
            let mut out = Vec::new();
            let used_a = codec.decode_sorted(&buf, &mut out).unwrap();
            assert_eq!(out, a);
            out.clear();
            codec.decode_sorted(&buf[used_a..], &mut out).unwrap();
            assert_eq!(out, b);
        }
    }

    #[test]
    fn display_covers_all_errors() {
        let errors = [
            CodecError::UnexpectedEof,
            CodecError::VarintOverflow,
            CodecError::InvalidBitWidth(40),
            CodecError::NonMonotonic,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
