//! Runtime-dispatched SIMD kernels for the hot decode loops.
//!
//! The decode cost of a KB-TIM query is dominated by two loops: gap
//! unpacking in [`crate::bitpack::unpack_block`] and the prefix sum that
//! turns gaps back into absolute ids ([`crate::delta`]). Both are
//! data-parallel, so this module provides `std::arch` x86-64 kernels for
//! them behind a safe dispatch:
//!
//! * **Per-width unpack** (SSE2, baseline on x86-64) for the
//!   byte-periodic widths 4 / 8 / 16 / 32 — pure load + widen/shuffle,
//!   no bit arithmetic at all.
//! * **Gather unpack** (AVX2) for widths 1..=25: every group of 8
//!   packed values starts on an exact byte boundary (`8·w` bits is a
//!   whole number of bytes), so one `vpgatherdd` + `vpsrlvd` + mask
//!   produces 8 values per instruction group.
//! * **Shift/mask fallback** for the remaining widths: branch-free
//!   unaligned 64-bit loads (`shift ≤ 7` plus `w ≤ 32` bits always fit
//!   in one `u64` window).
//! * **Prefix sum** (SSE2) for gap reconstruction, used once a cheap
//!   read-only `u64` total proves no `u32` overflow can occur — corrupt
//!   inputs take the scalar path so error positions and partial output
//!   stay bit-identical to the scalar oracle.
//!
//! Dispatch is decided once per process ([`active_level`]): the best
//! instruction set the CPU reports, optionally capped by the
//! `KBTIM_SIMD` environment variable (`scalar` / `sse2` / `avx2`) so CI
//! can force-cover the non-AVX2 paths on an AVX2 host. The dispatcher
//! never selects a level the CPU does not support, and every kernel is
//! proptested bit-identical to the scalar oracle for all widths 0..=32
//! (`tests/proptests.rs`).
//!
//! Non-x86-64 targets compile to the scalar paths only; no kernel code
//! is even built there.

use crate::bitpack::BLOCK_LEN;
use std::sync::OnceLock;

/// Instruction-set tier a decode kernel may use. Ordered: a level
/// implies every lower one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar code — the oracle every kernel is tested against.
    Scalar,
    /// SSE2 (baseline on x86-64): per-width unpack + prefix sum.
    Sse2,
    /// AVX2: adds the gather-based generic unpack.
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name (the `KBTIM_SIMD` spelling).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// Parse the `KBTIM_SIMD` spelling.
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s {
            "scalar" => Some(SimdLevel::Scalar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            _ => None,
        }
    }
}

/// The levels this CPU can actually run, ascending (always starts with
/// [`SimdLevel::Scalar`]). Test suites iterate this list so every
/// supported kernel is exercised on whatever host runs them.
pub fn supported_levels() -> &'static [SimdLevel] {
    #[cfg(target_arch = "x86_64")]
    {
        // SSE2 is part of the x86-64 baseline; only AVX2 needs a check.
        if std::arch::is_x86_feature_detected!("avx2") {
            &[SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        } else {
            &[SimdLevel::Scalar, SimdLevel::Sse2]
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &[SimdLevel::Scalar]
    }
}

/// Clamp a requested level to what the CPU supports (the dispatcher must
/// never select an unsupported kernel).
pub fn clamp_supported(level: SimdLevel) -> SimdLevel {
    let supported = supported_levels();
    *supported.iter().rfind(|&&l| l <= level).unwrap_or(&SimdLevel::Scalar)
}

/// The level the hot paths dispatch to: the best supported level,
/// optionally capped by `KBTIM_SIMD=scalar|sse2|avx2`. Decided once per
/// process and cached.
pub fn active_level() -> SimdLevel {
    static ACTIVE: OnceLock<SimdLevel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let best = *supported_levels().last().expect("scalar is always supported");
        match std::env::var("KBTIM_SIMD") {
            Ok(s) => match SimdLevel::parse(&s) {
                Some(cap) => clamp_supported(cap.min(best)),
                None => best, // unknown spelling: ignore the knob
            },
            Err(_) => best,
        }
    })
}

/// Unpack one full block (`width` in `1..=32`, `input.len() >=
/// width*BLOCK_LEN/8` — both validated by the caller) appending
/// [`BLOCK_LEN`] values to `out` with the given kernel tier.
///
/// `level` must be supported (callers go through [`clamp_supported`] or
/// [`active_level`]); [`SimdLevel::Scalar`] must be handled by the
/// caller (this function is only compiled/called on x86-64).
#[cfg(target_arch = "x86_64")]
pub(crate) fn unpack_block_simd(level: SimdLevel, input: &[u8], width: u8, out: &mut Vec<u32>) {
    debug_assert!((1..=32).contains(&width));
    debug_assert!(input.len() >= width as usize * BLOCK_LEN / 8);
    let start = out.len();
    out.resize(start + BLOCK_LEN, 0);
    let dst = &mut out[start..];
    let width = width as usize;
    match width {
        4 => x86::unpack_w4(input, dst),
        8 => x86::unpack_w8(input, dst),
        16 => x86::unpack_w16(input, dst),
        32 => x86::unpack_w32(input, dst),
        1..=25 if level >= SimdLevel::Avx2 => {
            // SAFETY: the dispatcher only passes Avx2 when
            // `supported_levels()` includes it (runtime-detected).
            unsafe { x86::unpack_gather_avx2(input, width, dst) }
        }
        _ => x86::unpack_generic(input, width, dst, 0),
    }
}

/// Whether [`prefix_sum_checked`] could possibly run for a slice of
/// `len` — callers that must stage data before the sum (e.g.
/// [`crate::delta::decode_deltas_into`]) use this to skip the staging
/// copy when the scalar loop is going to run anyway.
pub(crate) fn prefix_sum_viable(len: usize) -> bool {
    cfg!(target_arch = "x86_64") && len >= 8 && active_level() > SimdLevel::Scalar
}

/// In-place wrapping prefix sum over `values` (carry-in 0) **iff** SIMD
/// is active and a read-only `u64` total proves no step can overflow
/// `u32`. Returns `false` without touching `values` otherwise — the
/// caller's scalar path then reproduces the oracle's exact error
/// position and partial-output state on corrupt input.
pub(crate) fn prefix_sum_checked(values: &mut [u32]) -> bool {
    prefix_sum_checked_at(active_level(), values)
}

/// [`prefix_sum_checked`] at an explicit kernel tier (test/bench hook).
pub(crate) fn prefix_sum_checked_at(level: SimdLevel, values: &mut [u32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // Below ~2 vectors the setup + total pass costs more than it saves.
        if level >= SimdLevel::Sse2 && values.len() >= 8 {
            let total: u64 = values.iter().map(|&v| v as u64).sum();
            if total <= u32::MAX as u64 {
                // Gaps are non-negative, so partial sums are monotone in
                // u64: total fitting u32 ⟺ every prefix fits u32.
                x86::prefix_sum_sse2(values, 0);
                return true;
            }
            return false;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = level;
    let _ = values;
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The kernels proper. Every `unsafe` block states which bound makes
    //! its loads/stores in-range; SSE2 needs no feature check (x86-64
    //! baseline), AVX2 entry points are `target_feature`-gated and only
    //! reached through runtime detection.
    #![deny(unsafe_op_in_unsafe_fn)]

    use core::arch::x86_64::*;

    /// Widen 16 packed bytes to 16 `u32` at `dst` (LSB-first order).
    ///
    /// # Safety
    ///
    /// `dst` must point at ≥ 16 writable `u32` slots.
    #[inline]
    unsafe fn store_widened_bytes(b: __m128i, dst: *mut u32) {
        // SAFETY: stores cover dst[0..16], guaranteed writable by the
        // caller; SSE2 is baseline on x86-64.
        unsafe {
            let zero = _mm_setzero_si128();
            let lo = _mm_unpacklo_epi8(b, zero);
            let hi = _mm_unpackhi_epi8(b, zero);
            _mm_storeu_si128(dst.cast(), _mm_unpacklo_epi16(lo, zero));
            _mm_storeu_si128(dst.add(4).cast(), _mm_unpackhi_epi16(lo, zero));
            _mm_storeu_si128(dst.add(8).cast(), _mm_unpacklo_epi16(hi, zero));
            _mm_storeu_si128(dst.add(12).cast(), _mm_unpackhi_epi16(hi, zero));
        }
    }

    /// Width-4 block: each byte holds two nibbles, low nibble first.
    pub(super) fn unpack_w4(input: &[u8], dst: &mut [u32]) {
        assert!(input.len() >= 64 && dst.len() == 128);
        // SAFETY: loads stay in input[..64] and stores in dst[..128]
        // (asserted above); SSE2 is baseline on x86-64.
        unsafe {
            let nib = _mm_set1_epi8(0x0f);
            for g in 0..4 {
                let b = _mm_loadu_si128(input.as_ptr().add(g * 16).cast());
                let lo = _mm_and_si128(b, nib);
                let hi = _mm_and_si128(_mm_srli_epi16::<4>(b), nib);
                // Interleave to [lo0, hi0, lo1, hi1, ...] — the LSB-first
                // value order within each byte.
                let d = dst.as_mut_ptr().add(g * 32);
                store_widened_bytes(_mm_unpacklo_epi8(lo, hi), d);
                store_widened_bytes(_mm_unpackhi_epi8(lo, hi), d.add(16));
            }
        }
    }

    /// Width-8 block: one byte per value.
    pub(super) fn unpack_w8(input: &[u8], dst: &mut [u32]) {
        assert!(input.len() >= 128 && dst.len() == 128);
        // SAFETY: loads stay in input[..128] and stores in dst[..128]
        // (asserted above); SSE2 is baseline on x86-64.
        unsafe {
            for g in 0..8 {
                let b = _mm_loadu_si128(input.as_ptr().add(g * 16).cast());
                store_widened_bytes(b, dst.as_mut_ptr().add(g * 16));
            }
        }
    }

    /// Width-16 block: one little-endian `u16` per value.
    pub(super) fn unpack_w16(input: &[u8], dst: &mut [u32]) {
        assert!(input.len() >= 256 && dst.len() == 128);
        // SAFETY: loads stay in input[..256] and stores in dst[..128]
        // (asserted above); SSE2 is baseline on x86-64.
        unsafe {
            let zero = _mm_setzero_si128();
            for g in 0..16 {
                let b = _mm_loadu_si128(input.as_ptr().add(g * 16).cast());
                let d = dst.as_mut_ptr().add(g * 8);
                _mm_storeu_si128(d.cast(), _mm_unpacklo_epi16(b, zero));
                _mm_storeu_si128(d.add(4).cast(), _mm_unpackhi_epi16(b, zero));
            }
        }
    }

    /// Width-32 block: a straight little-endian copy.
    pub(super) fn unpack_w32(input: &[u8], dst: &mut [u32]) {
        for (slot, ch) in dst.iter_mut().zip(input.chunks_exact(4)) {
            *slot = u32::from_le_bytes(ch.try_into().expect("chunks_exact(4)"));
        }
    }

    /// Generic shift/mask unpack of `dst[from..]` (value `j` occupies
    /// bits `j*width .. (j+1)*width` of `input`, LSB-first): a
    /// branch-free unaligned `u64` load per value — `shift ≤ 7` plus
    /// `width ≤ 32` always fit in one 64-bit window. Values whose 8-byte
    /// window would overrun `input` (only possible near the end of a
    /// segment's last block) take a zero-padded buffered load instead.
    pub(super) fn unpack_generic(input: &[u8], width: usize, dst: &mut [u32], from: usize) {
        debug_assert!((1..=32).contains(&width));
        let byte_len = width * dst.len() / 8;
        debug_assert!(input.len() >= byte_len);
        let mask: u64 = if width == 32 { u32::MAX as u64 } else { (1u64 << width) - 1 };
        // Largest value count whose 8-byte window fits the *full* input
        // slice (blocks are usually mid-stream, so trailing bytes of the
        // next block make every window fit).
        let safe = if input.len() >= 8 {
            (((input.len() - 8) * 8 + 7) / width + 1).min(dst.len())
        } else {
            0
        };
        let base = input.as_ptr();
        for (j, slot) in dst.iter_mut().enumerate().skip(from) {
            let bit = j * width;
            let word = if j < safe {
                // SAFETY: `j < safe` ⇒ bit/8 + 8 ≤ input.len(), so the
                // unaligned 8-byte read stays inside `input`.
                unsafe { base.add(bit / 8).cast::<u64>().read_unaligned() }
            } else {
                // Tail: assemble the window from the ≤ 8 in-frame bytes
                // (value j's bits end before byte_len, so the zero pad
                // is never read through the mask).
                let byte = bit / 8;
                let mut tmp = [0u8; 8];
                let n = (byte_len - byte).min(8);
                tmp[..n].copy_from_slice(&input[byte..byte + n]);
                u64::from_le_bytes(tmp)
            };
            *slot = ((word >> (bit % 8)) & mask) as u32;
        }
    }

    /// AVX2 gather unpack for widths 1..=25: every group of 8 values
    /// spans exactly `width` bytes, so per-group byte offsets and bit
    /// shifts are constants — one gather + variable shift + mask per 8
    /// values. Lane shifts peak at 7, and `7 + width ≤ 32` for
    /// `width ≤ 25`, so a 4-byte gather window always holds a full
    /// value.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (runtime-detected by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn unpack_gather_avx2(input: &[u8], width: usize, dst: &mut [u32]) {
        debug_assert!((1..=25).contains(&width));
        debug_assert_eq!(dst.len() % 8, 0);
        let mut offs = [0i32; 8];
        let mut shifts = [0i32; 8];
        for l in 0..8 {
            offs[l] = ((l * width) / 8) as i32;
            shifts[l] = ((l * width) % 8) as i32;
        }
        // Furthest byte any lane's 4-byte window reaches past a group's
        // base; groups beyond `safe_groups` would read past `input` and
        // fall back to the buffered generic path instead.
        let lane_end = offs[7] as usize + 4;
        let groups = dst.len() / 8;
        let safe_groups = match input.len().checked_sub(lane_end) {
            Some(limit) => (limit / width + 1).min(groups),
            None => 0,
        };
        // SAFETY: AVX2 is guaranteed by the caller ([`target_feature`]
        // covers the intrinsics); group g's furthest load is 4 bytes at
        // `g*width + offs[7]` and `g*width + lane_end ≤ input.len()` for
        // every `g < safe_groups`; stores cover dst[..safe_groups*8].
        unsafe {
            let mask = _mm256_set1_epi32(((1u32 << width) - 1) as i32);
            let voff = _mm256_loadu_si256(offs.as_ptr().cast());
            let vshift = _mm256_loadu_si256(shifts.as_ptr().cast());
            for g in 0..safe_groups {
                let base = input.as_ptr().add(g * width);
                let v = _mm256_i32gather_epi32::<1>(base.cast(), voff);
                let v = _mm256_srlv_epi32(v, vshift);
                let v = _mm256_and_si256(v, mask);
                _mm256_storeu_si256(dst.as_mut_ptr().add(g * 8).cast(), v);
            }
        }
        if safe_groups < groups {
            unpack_generic(input, width, dst, safe_groups * 8);
        }
    }

    /// In-place wrapping prefix sum with carry-in (the caller proved no
    /// overflow for valid data; wrapping keeps corrupt data well-defined
    /// until the scalar recheck).
    pub(super) fn prefix_sum_sse2(values: &mut [u32], carry_in: u32) {
        // SAFETY: loads/stores walk 4-lane chunks inside `values`
        // (`vec_len ≤ values.len()`); SSE2 is baseline on x86-64.
        let vec_len = values.len() & !3;
        let mut carry = unsafe {
            let mut vcarry = _mm_set1_epi32(carry_in as i32);
            let ptr = values.as_mut_ptr();
            let mut i = 0;
            while i < vec_len {
                let p = ptr.add(i).cast::<__m128i>();
                let mut x = _mm_loadu_si128(p);
                // Hillis–Steele within the vector: after two steps lane
                // l holds v[i..=i+l]'s sum; add the running carry.
                x = _mm_add_epi32(x, _mm_slli_si128::<4>(x));
                x = _mm_add_epi32(x, _mm_slli_si128::<8>(x));
                x = _mm_add_epi32(x, vcarry);
                _mm_storeu_si128(p, x);
                vcarry = _mm_shuffle_epi32::<0xFF>(x);
                i += 4;
            }
            _mm_cvtsi128_si32(vcarry) as u32
        };
        for v in &mut values[vec_len..] {
            carry = carry.wrapping_add(*v);
            *v = carry;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_levels_start_at_scalar_and_ascend() {
        let levels = supported_levels();
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn clamp_never_exceeds_support() {
        for &level in &[SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            let clamped = clamp_supported(level);
            assert!(clamped <= level);
            assert!(supported_levels().contains(&clamped));
        }
    }

    #[test]
    fn active_level_is_supported() {
        assert!(supported_levels().contains(&active_level()));
    }

    #[test]
    fn level_names_roundtrip() {
        for &level in &[SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            assert_eq!(SimdLevel::parse(level.name()), Some(level));
        }
        assert_eq!(SimdLevel::parse("neon"), None);
    }

    #[test]
    fn prefix_sum_checked_matches_scalar_when_it_runs() {
        let gaps: Vec<u32> = (0..257).map(|i| (i * 2_654_435_761u64 % 977) as u32).collect();
        for &level in supported_levels() {
            let mut work = gaps.clone();
            let ran = prefix_sum_checked_at(level, &mut work);
            if level == SimdLevel::Scalar {
                assert!(!ran, "scalar tier must leave the input to the oracle loop");
                continue;
            }
            #[cfg(target_arch = "x86_64")]
            {
                assert!(ran);
                let mut oracle = gaps.clone();
                let mut acc = 0u32;
                for v in oracle.iter_mut() {
                    acc += *v;
                    *v = acc;
                }
                assert_eq!(work, oracle, "{}", level.name());
            }
        }
    }

    #[test]
    fn prefix_sum_checked_refuses_overflow_untouched() {
        let gaps = vec![u32::MAX, 1, 2, 3, 4, 5, 6, 7, 8];
        for &level in supported_levels() {
            let mut work = gaps.clone();
            assert!(!prefix_sum_checked_at(level, &mut work), "{}", level.name());
            assert_eq!(work, gaps, "refusal must not mutate ({})", level.name());
        }
    }
}
