//! Frame-of-reference bit-packing of fixed-size integer blocks.
//!
//! A block of [`BLOCK_LEN`] `u32` values is stored with a single bit width
//! `b = max(bits(v))`: each value occupies exactly `b` bits in a contiguous
//! little-endian bit stream, so a block costs `1 + 4·b` bytes instead of
//! 512. This is the core of PFoR-style codecs (the paper uses FastPFOR);
//! we omit exception patching because delta-coded posting-list gaps in this
//! workload are uniformly small and patching buys little for the extra
//! branchiness.

use crate::CodecError;

/// Number of values per packed block. 128 matches common PFoR layouts and
/// keeps each block's packed payload a whole number of bytes for any width.
pub const BLOCK_LEN: usize = 128;

/// Number of bits needed to represent `v` (0 for 0).
#[inline]
pub fn bits_needed(v: u32) -> u8 {
    (32 - v.leading_zeros()) as u8
}

/// Widest value in a slice, in bits.
#[inline]
pub fn max_bits(values: &[u32]) -> u8 {
    values.iter().fold(0u8, |acc, &v| acc.max(bits_needed(v)))
}

/// Pack exactly [`BLOCK_LEN`] values with the given `width` into `out`.
///
/// `width` must satisfy `max_bits(values) <= width <= 32`. The output is
/// `width * BLOCK_LEN / 8` bytes (always whole because `BLOCK_LEN` is a
/// multiple of 8).
///
/// # Panics
///
/// Panics if `values.len() != BLOCK_LEN` or a value does not fit in `width`.
pub fn pack_block(values: &[u32], width: u8, out: &mut Vec<u8>) {
    assert_eq!(values.len(), BLOCK_LEN, "pack_block requires a full block");
    assert!(width <= 32, "width must be <= 32");
    if width == 0 {
        assert!(values.iter().all(|&v| v == 0));
        return;
    }
    let mask: u64 = if width == 32 { u32::MAX as u64 } else { (1u64 << width) - 1 };
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &v in values {
        assert!((v as u64) <= mask, "value {v} does not fit in {width} bits");
        acc |= (v as u64) << acc_bits;
        acc_bits += width as u32;
        while acc_bits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    debug_assert_eq!(acc_bits, 0, "BLOCK_LEN * width is a multiple of 8");
}

/// Unpack one block previously written by [`pack_block`].
///
/// Appends [`BLOCK_LEN`] values to `out` and returns the number of input
/// bytes consumed. Dispatches to the fastest [`crate::simd`] kernel the
/// CPU supports (and the `KBTIM_SIMD` knob allows); the output is
/// bit-identical to [`unpack_block_scalar`] for every width and input.
pub fn unpack_block(input: &[u8], width: u8, out: &mut Vec<u32>) -> Result<usize, CodecError> {
    unpack_block_with(crate::simd::active_level(), input, width, out)
}

/// [`unpack_block`] at an explicit kernel tier — the test/bench hook
/// behind the SIMD-vs-scalar equality proptests. Unsupported tiers are
/// clamped to the best the CPU has.
#[doc(hidden)]
pub fn unpack_block_with(
    level: crate::simd::SimdLevel,
    input: &[u8],
    width: u8,
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    if width > 32 {
        return Err(CodecError::InvalidBitWidth(width));
    }
    if width == 0 {
        out.resize(out.len() + BLOCK_LEN, 0);
        return Ok(0);
    }
    let byte_len = width as usize * BLOCK_LEN / 8;
    if input.len() < byte_len {
        return Err(CodecError::UnexpectedEof);
    }
    #[cfg(target_arch = "x86_64")]
    {
        let level = crate::simd::clamp_supported(level);
        if level > crate::simd::SimdLevel::Scalar {
            crate::simd::unpack_block_simd(level, input, width, out);
            return Ok(byte_len);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = level;
    unpack_block_scalar(input, width, out)
}

/// The portable scalar unpack — the oracle the SIMD kernels are
/// proptested against, and the only path on non-x86-64 targets.
pub fn unpack_block_scalar(
    input: &[u8],
    width: u8,
    out: &mut Vec<u32>,
) -> Result<usize, CodecError> {
    if width > 32 {
        return Err(CodecError::InvalidBitWidth(width));
    }
    if width == 0 {
        out.resize(out.len() + BLOCK_LEN, 0);
        return Ok(0);
    }
    let byte_len = width as usize * BLOCK_LEN / 8;
    if input.len() < byte_len {
        return Err(CodecError::UnexpectedEof);
    }
    let mask: u64 = if width == 32 { u32::MAX as u64 } else { (1u64 << width) - 1 };
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    let mut bytes = input[..byte_len].iter();
    out.reserve(BLOCK_LEN);
    for _ in 0..BLOCK_LEN {
        while acc_bits < width as u32 {
            // Framing guarantees enough bytes; the iterator cannot run dry.
            let byte = *bytes.next().expect("length checked above");
            acc |= (byte as u64) << acc_bits;
            acc_bits += 8;
        }
        out.push((acc & mask) as u32);
        acc >>= width;
        acc_bits -= width as u32;
    }
    Ok(byte_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) {
        let width = max_bits(values);
        let mut packed = Vec::new();
        pack_block(values, width, &mut packed);
        let mut unpacked = Vec::new();
        let used = unpack_block(&packed, width, &mut unpacked).unwrap();
        assert_eq!(used, packed.len());
        assert_eq!(unpacked, values);
    }

    #[test]
    fn zeros_pack_to_nothing() {
        let values = [0u32; BLOCK_LEN];
        let mut packed = Vec::new();
        pack_block(&values, 0, &mut packed);
        assert!(packed.is_empty());
        roundtrip(&values);
    }

    #[test]
    fn all_widths_roundtrip() {
        for width in 1..=32u8 {
            let max = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            let values: Vec<u32> =
                (0..BLOCK_LEN as u32).map(|i| i.wrapping_mul(2_654_435_761) % max.max(1)).collect();
            let mut with_max = values;
            with_max[0] = max; // force the full width to be exercised
            roundtrip(&with_max);
        }
    }

    #[test]
    fn packed_size_is_exact() {
        for width in 1..=32u8 {
            let values = [if width == 32 { u32::MAX } else { (1u32 << width) - 1 }; BLOCK_LEN];
            let mut packed = Vec::new();
            pack_block(&values, width, &mut packed);
            assert_eq!(packed.len(), width as usize * BLOCK_LEN / 8);
        }
    }

    #[test]
    fn bits_needed_edges() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(3), 2);
        assert_eq!(bits_needed(u32::MAX), 32);
    }

    #[test]
    fn truncated_block_is_eof() {
        let values = [5u32; BLOCK_LEN];
        let mut packed = Vec::new();
        pack_block(&values, 3, &mut packed);
        let mut out = Vec::new();
        assert_eq!(
            unpack_block(&packed[..packed.len() - 1], 3, &mut out).unwrap_err(),
            CodecError::UnexpectedEof
        );
    }

    #[test]
    fn invalid_width_rejected() {
        let mut out = Vec::new();
        assert_eq!(
            unpack_block(&[0u8; 1024], 33, &mut out).unwrap_err(),
            CodecError::InvalidBitWidth(33)
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut values = [0u32; BLOCK_LEN];
        values[7] = 8; // needs 4 bits
        let mut out = Vec::new();
        pack_block(&values, 3, &mut out);
    }
}
