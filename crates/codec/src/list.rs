//! The composed posting-list codec used by the disk indexes.
//!
//! Layout of one `Packed` list (all integers little-endian bit streams or
//! LEB128 varints):
//!
//! ```text
//! varint  n                    element count
//! varint  first                first (absolute) value, when n > 0
//! repeat for each full block of 128 gaps (n-1 gaps total):
//!     u8      width            bits per gap (0..=32)
//!     bytes   width*128/8      bit-packed gaps
//! repeat for the (n-1) % 128 tail gaps:
//!     varint  gap
//! ```
//!
//! Storing the first value outside the gap stream keeps a large absolute id
//! from inflating the first block's bit width.
//!
//! The `Raw` layout is `varint n` followed by `n` fixed `u32` little-endian
//! values (no delta), mirroring the paper's uncompressed configuration.

use crate::bitpack::{self, BLOCK_LEN};
use crate::varint;
use crate::CodecError;

/// Encode a sorted list as fixed-width little-endian `u32`s.
pub fn encode_raw(values: &[u32], out: &mut Vec<u8>) {
    varint::write_u32(values.len() as u32, out);
    out.reserve(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode a list written by [`encode_raw`]; returns bytes consumed.
pub fn decode_raw(input: &[u8], out: &mut Vec<u32>) -> Result<usize, CodecError> {
    let (n, mut pos) = varint::read_u32(input)?;
    let n = n as usize;
    let need = n.checked_mul(4).ok_or(CodecError::UnexpectedEof)?;
    if input.len() < pos + need {
        return Err(CodecError::UnexpectedEof);
    }
    out.reserve(n);
    for _ in 0..n {
        let bytes: [u8; 4] = input[pos..pos + 4].try_into().expect("length checked");
        out.push(u32::from_le_bytes(bytes));
        pos += 4;
    }
    Ok(pos)
}

/// Encode a sorted list with delta + block bit-packing.
pub fn encode_packed(values: &[u32], out: &mut Vec<u8>) {
    debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    varint::write_u32(values.len() as u32, out);
    let Some((&first, rest)) = values.split_first() else {
        return;
    };
    varint::write_u32(first, out);

    // Gaps between consecutive values (rest[i] - prev).
    let mut gaps = Vec::with_capacity(rest.len());
    let mut prev = first;
    for &v in rest {
        gaps.push(v.wrapping_sub(prev));
        prev = v;
    }

    let mut chunks = gaps.chunks_exact(BLOCK_LEN);
    for block in chunks.by_ref() {
        let width = bitpack::max_bits(block);
        out.push(width);
        bitpack::pack_block(block, width, out);
    }
    for &gap in chunks.remainder() {
        varint::write_u32(gap, out);
    }
}

/// Decode a list written by [`encode_packed`]; returns bytes consumed.
pub fn decode_packed(input: &[u8], out: &mut Vec<u32>) -> Result<usize, CodecError> {
    let (n, mut pos) = varint::read_u32(input)?;
    let n = n as usize;
    if n == 0 {
        return Ok(pos);
    }
    let (first, used) = varint::read_u32(&input[pos..])?;
    pos += used;
    let start = out.len();
    out.reserve(n);
    out.push(first);

    let gap_count = n - 1;
    let full_blocks = gap_count / BLOCK_LEN;
    for _ in 0..full_blocks {
        let width = *input.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        pos += bitpack::unpack_block(&input[pos..], width, out)?;
    }
    for _ in 0..(gap_count % BLOCK_LEN) {
        let (gap, used) = varint::read_u32(&input[pos..])?;
        out.push(gap);
        pos += used;
    }
    // Prefix-sum the gaps back into absolute values (the first slot
    // already holds the absolute first value, which is exactly a gap
    // from 0, so the shared — SIMD-dispatched — undelta applies as-is).
    crate::delta::undelta_in_place(&mut out[start..])?;
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_packed(values: &[u32]) {
        let mut buf = Vec::new();
        encode_packed(values, &mut buf);
        let mut out = Vec::new();
        let used = decode_packed(&buf, &mut out).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(out, values);
    }

    #[test]
    fn empty_list() {
        roundtrip_packed(&[]);
        let mut buf = Vec::new();
        encode_raw(&[], &mut buf);
        let mut out = Vec::new();
        assert_eq!(decode_raw(&buf, &mut out).unwrap(), buf.len());
        assert!(out.is_empty());
    }

    #[test]
    fn exactly_one_block() {
        let values: Vec<u32> = (0..128u32).map(|i| i * 7).collect();
        roundtrip_packed(&values);
    }

    #[test]
    fn block_plus_tail() {
        let values: Vec<u32> = (0..300u32).map(|i| i * i).collect();
        roundtrip_packed(&values);
    }

    #[test]
    fn duplicates_allowed() {
        let values = vec![5u32; 500];
        roundtrip_packed(&values);
    }

    #[test]
    fn large_first_value() {
        let values = vec![u32::MAX - 2, u32::MAX - 1, u32::MAX];
        roundtrip_packed(&values);
    }

    #[test]
    fn truncation_detected_everywhere() {
        let values: Vec<u32> = (0..200u32).map(|i| i * 3 + 1).collect();
        let mut buf = Vec::new();
        encode_packed(&values, &mut buf);
        for cut in 0..buf.len() {
            let mut out = Vec::new();
            assert!(
                decode_packed(&buf[..cut], &mut out).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn raw_truncation_detected() {
        let values: Vec<u32> = (0..50u32).collect();
        let mut buf = Vec::new();
        encode_raw(&values, &mut buf);
        let mut out = Vec::new();
        assert_eq!(
            decode_raw(&buf[..buf.len() - 1], &mut out).unwrap_err(),
            CodecError::UnexpectedEof
        );
    }

    #[test]
    fn decode_appends_to_existing_output() {
        let mut out = vec![99u32];
        let mut buf = Vec::new();
        encode_packed(&[1, 2, 3], &mut buf);
        decode_packed(&buf, &mut out).unwrap();
        assert_eq!(out, vec![99, 1, 2, 3]);
    }

    #[test]
    fn dense_gaps_compress_well() {
        // Consecutive ids → all gaps are 1 → one bit per element.
        let values: Vec<u32> = (1000..1000 + 1280).collect();
        let mut buf = Vec::new();
        encode_packed(&values, &mut buf);
        // 9 full blocks * 17 bytes + 127 one-byte tail varints + header
        // ≈ 285 bytes, far below the 5 KiB raw encoding.
        assert!(buf.len() < 320, "got {}", buf.len());
    }
}
