//! Delta transforms for sorted id sequences.
//!
//! RR-set member lists and inverted lists are stored sorted, so consecutive
//! gaps are small and compress far better than absolute ids. The transform
//! here is the standard "first value absolute, rest are gaps" scheme; lists
//! may contain duplicates (gap 0), which the inverse transform preserves.

use crate::CodecError;

/// Replace a sorted slice by `[v0, v1-v0, v2-v1, ...]` in place.
///
/// # Panics
///
/// Debug-asserts that the input is sorted (non-decreasing); in release
/// builds an unsorted input silently produces wrapped gaps that
/// [`undelta_in_place`] will reject.
pub fn delta_in_place(values: &mut [u32]) {
    debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    for i in (1..values.len()).rev() {
        values[i] = values[i].wrapping_sub(values[i - 1]);
    }
}

/// Inverse of [`delta_in_place`]: rebuild absolute values from gaps.
///
/// Fails with [`CodecError::NonMonotonic`] if a prefix sum overflows `u32`,
/// which can only happen on corrupted input.
///
/// Valid inputs take a SIMD prefix sum where the CPU has one (a cheap
/// read-only `u64` total first proves no step can overflow); corrupt
/// inputs always run the scalar loop, so the error and the partially
/// rebuilt prefix are bit-identical to [`undelta_in_place_scalar`].
pub fn undelta_in_place(values: &mut [u32]) -> Result<(), CodecError> {
    if crate::simd::prefix_sum_checked(values) {
        return Ok(());
    }
    undelta_in_place_scalar(values)
}

/// The portable scalar prefix sum — the oracle for the SIMD path and
/// the only code on non-x86-64 targets. On overflow, elements before the
/// failing one keep their rebuilt (absolute) values.
pub fn undelta_in_place_scalar(values: &mut [u32]) -> Result<(), CodecError> {
    let mut acc: u32 = 0;
    for v in values.iter_mut() {
        acc = acc.checked_add(*v).ok_or(CodecError::NonMonotonic)?;
        *v = acc;
    }
    Ok(())
}

/// Bulk-decode a gap sequence straight into a caller-owned arena:
/// appends the prefix-summed absolute values of `gaps` to `out` without
/// mutating the input or allocating beyond `out`'s growth.
///
/// Fails with [`CodecError::NonMonotonic`] if a prefix sum overflows
/// `u32` (corrupted input); `out` keeps the values appended so far in
/// that case, so callers treating errors as fatal need no cleanup.
pub fn decode_deltas_into(gaps: &[u32], out: &mut Vec<u32>) -> Result<(), CodecError> {
    // Fast path: copy the gaps and prefix-sum them in place with the
    // SIMD kernel (which first proves, read-only, that no step can
    // overflow). Corrupt input falls through to the scalar loop below so
    // the error and the partial output match the oracle exactly.
    let start = out.len();
    if crate::simd::prefix_sum_viable(gaps.len()) {
        out.extend_from_slice(gaps);
        if crate::simd::prefix_sum_checked(&mut out[start..]) {
            return Ok(());
        }
        out.truncate(start);
    }
    out.reserve(gaps.len());
    let mut acc: u32 = 0;
    for &g in gaps {
        acc = acc.checked_add(g).ok_or(CodecError::NonMonotonic)?;
        out.push(acc);
    }
    Ok(())
}

/// Allocating twin of [`decode_deltas_into`] — test/validation oracle
/// only; hot paths must decode into reused arenas.
#[doc(hidden)]
pub fn decode_deltas(gaps: &[u32]) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::new();
    decode_deltas_into(gaps, &mut out)?;
    Ok(out)
}

/// Copy `values` (sorted) into `out` as gaps, without mutating the input.
pub fn delta_to(values: &[u32], out: &mut Vec<u32>) {
    debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    out.reserve(values.len());
    let mut prev = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            out.push(v);
        } else {
            out.push(v.wrapping_sub(prev));
        }
        prev = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let original = vec![3u32, 7, 7, 20, 100];
        let mut work = original.clone();
        delta_in_place(&mut work);
        assert_eq!(work, vec![3, 4, 0, 13, 80]);
        undelta_in_place(&mut work).unwrap();
        assert_eq!(work, original);
    }

    #[test]
    fn empty_and_singleton() {
        let mut empty: Vec<u32> = vec![];
        delta_in_place(&mut empty);
        undelta_in_place(&mut empty).unwrap();
        assert!(empty.is_empty());

        let mut one = vec![42u32];
        delta_in_place(&mut one);
        assert_eq!(one, vec![42]);
        undelta_in_place(&mut one).unwrap();
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn delta_to_matches_in_place() {
        let values = vec![0u32, 0, 5, 5, 6, 1000, u32::MAX];
        let mut in_place = values.clone();
        delta_in_place(&mut in_place);
        let mut copied = Vec::new();
        delta_to(&values, &mut copied);
        assert_eq!(in_place, copied);
    }

    #[test]
    fn overflow_on_corrupt_gaps() {
        let mut bad = vec![u32::MAX, 1];
        assert_eq!(undelta_in_place(&mut bad).unwrap_err(), CodecError::NonMonotonic);
    }

    #[test]
    fn decode_deltas_into_matches_in_place() {
        let original = vec![3u32, 7, 7, 20, 100];
        let mut gaps = original.clone();
        delta_in_place(&mut gaps);
        let mut out = vec![999u32]; // appends, never clears
        decode_deltas_into(&gaps, &mut out).unwrap();
        assert_eq!(out, [vec![999], original.clone()].concat());
        assert_eq!(decode_deltas(&gaps).unwrap(), original);
    }

    #[test]
    fn decode_deltas_into_rejects_overflow() {
        let mut out = Vec::new();
        assert_eq!(
            decode_deltas_into(&[u32::MAX, 1], &mut out).unwrap_err(),
            CodecError::NonMonotonic
        );
    }

    #[test]
    fn max_value_roundtrips() {
        let original = vec![0u32, u32::MAX];
        let mut work = original.clone();
        delta_in_place(&mut work);
        undelta_in_place(&mut work).unwrap();
        assert_eq!(work, original);
    }
}
