//! Weighted discrete sampling.
//!
//! WRIS samples RR-set roots from the non-uniform distribution
//! `ps(v, Q) = φ(v, Q)/φ_Q` (Eqn 3) and the per-keyword builders from
//! `ps(v, w) = tf(w, v)/Σ_v tf(w, v)` (§4.1). Index construction draws
//! hundreds of thousands of roots per keyword, so sampling must be O(1):
//! the Vose alias method. A cumulative-table sampler (O(log n)) is kept as
//! the comparison point for the `a4_sampler` ablation bench.

use rand::Rng;

/// O(1) weighted sampler over indices `0..n` (Vose alias method).
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each slot.
    prob: Vec<f64>,
    /// Fallback index of each slot.
    alias: Vec<u32>,
    total: f64,
}

impl AliasTable {
    /// Build from non-negative weights. Returns `None` when no weight is
    /// positive (there is nothing to sample).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite weights, or more than `u32::MAX`
    /// items.
    pub fn new(weights: &[f64]) -> Option<AliasTable> {
        assert!(weights.len() <= u32::MAX as usize, "too many items");
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weight must be finite and >= 0, got {w}");
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];

        // Partition into under- and over-full slots.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Move the overflow of `l` onto `s`.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining slots are (numerically) exactly full.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }

        Some(AliasTable { prob, alias, total })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when there are no items (never: construction requires > 0
    /// total weight over ≥ 1 items).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sum of the input weights.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Draw one index.
    #[inline]
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> usize {
        let slot = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }
}

/// O(log n) weighted sampler by binary search over cumulative weights.
///
/// Functionally identical to [`AliasTable`]; exists as the ablation
/// baseline and for tiny tables where construction cost dominates.
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    cumulative: Vec<f64>,
}

impl CumulativeSampler {
    /// Build from non-negative weights; `None` when the total is 0.
    pub fn new(weights: &[f64]) -> Option<CumulativeSampler> {
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weight must be finite and >= 0, got {w}");
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(CumulativeSampler { cumulative })
    }

    /// Draw one index.
    #[inline]
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }
}

/// Weighted sampler over graph nodes, mapping alias slots to node ids.
///
/// This is the root distribution of WRIS (`ps(v, Q)`, Eqn 3) and of the
/// per-keyword discriminative sampler (`ps(v, w)`, Eqn 7).
#[derive(Debug, Clone)]
pub struct RootSampler {
    alias: AliasTable,
    items: Vec<kbtim_graph::NodeId>,
}

impl RootSampler {
    /// Build from a dense per-node weight vector (index = node id).
    /// `None` when every weight is zero.
    pub fn from_dense(weights: &[f64]) -> Option<RootSampler> {
        let alias = AliasTable::new(weights)?;
        Some(RootSampler { alias, items: (0..weights.len() as u32).collect() })
    }

    /// Build from parallel sparse `(nodes, weights)` slices.
    /// `None` when every weight is zero.
    pub fn from_sparse(nodes: &[kbtim_graph::NodeId], weights: &[f64]) -> Option<RootSampler> {
        assert_eq!(nodes.len(), weights.len(), "parallel slices must match");
        let alias = AliasTable::new(weights)?;
        Some(RootSampler { alias, items: nodes.to_vec() })
    }

    /// Draw one node.
    #[inline]
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> kbtim_graph::NodeId {
        self.items[self.alias.sample(rng)]
    }

    /// Sum of the input weights (φ_Q for a query sampler, Σtf for a
    /// keyword sampler).
    pub fn total_weight(&self) -> f64 {
        self.alias.total_weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: u32, seed: u64, use_alias: bool) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u32; weights.len()];
        if use_alias {
            let table = AliasTable::new(weights).unwrap();
            for _ in 0..draws {
                counts[table.sample(&mut rng)] += 1;
            }
        } else {
            let table = CumulativeSampler::new(weights).unwrap();
            for _ in 0..draws {
                counts[table.sample(&mut rng)] += 1;
            }
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn alias_matches_weights() {
        let weights = [1.0, 3.0, 0.0, 6.0];
        let freq = empirical(&weights, 200_000, 1, true);
        assert!((freq[0] - 0.1).abs() < 0.01);
        assert!((freq[1] - 0.3).abs() < 0.01);
        assert_eq!(freq[2], 0.0);
        assert!((freq[3] - 0.6).abs() < 0.01);
    }

    #[test]
    fn cumulative_matches_weights() {
        let weights = [2.0, 0.0, 2.0, 4.0];
        let freq = empirical(&weights, 200_000, 2, false);
        assert!((freq[0] - 0.25).abs() < 0.01);
        assert_eq!(freq[1], 0.0);
        assert!((freq[2] - 0.25).abs() < 0.01);
        assert!((freq[3] - 0.5).abs() < 0.01);
    }

    #[test]
    fn single_item() {
        let table = AliasTable::new(&[5.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
        assert_eq!(table.total_weight(), 5.0);
    }

    #[test]
    fn zero_total_is_none() {
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[]).is_none());
        assert!(CumulativeSampler::new(&[0.0]).is_none());
        assert!(CumulativeSampler::new(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let weights = vec![1.0; 10];
        let freq = empirical(&weights, 200_000, 4, true);
        for f in freq {
            assert!((f - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn alias_and_cumulative_agree_statistically() {
        let weights: Vec<f64> = (1..=20).map(|i| (i as f64).sqrt()).collect();
        let a = empirical(&weights, 300_000, 5, true);
        let c = empirical(&weights, 300_000, 6, false);
        for (x, y) in a.iter().zip(c.iter()) {
            assert!((x - y).abs() < 0.01, "{x} vs {y}");
        }
    }

    #[test]
    fn extreme_skew() {
        let weights = [1e-9, 1.0];
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let picks: Vec<usize> = (0..1000).map(|_| table.sample(&mut rng)).collect();
        assert!(picks.iter().filter(|&&p| p == 1).count() > 990);
    }

    #[test]
    fn root_sampler_sparse_maps_ids() {
        let sampler = RootSampler::from_sparse(&[10, 20, 30], &[0.0, 1.0, 3.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let mut hits_20 = 0;
        let draws = 100_000;
        for _ in 0..draws {
            let node = sampler.sample(&mut rng);
            assert!(node == 20 || node == 30, "node 10 has zero weight");
            if node == 20 {
                hits_20 += 1;
            }
        }
        let rate = hits_20 as f64 / draws as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert_eq!(sampler.total_weight(), 4.0);
    }

    #[test]
    fn root_sampler_dense_is_identity_mapping() {
        let sampler = RootSampler::from_dense(&[0.0, 0.0, 5.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(sampler.sample(&mut rng), 2);
        assert!(RootSampler::from_dense(&[0.0, 0.0]).is_none());
    }
}
