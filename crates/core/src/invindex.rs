//! Dense CSR inverted index: node → ids of the RR sets containing it.
//!
//! The greedy maximum-coverage step and the disk-index query paths both
//! consume an *inverted* view of an RR-set collection. A
//! `HashMap<NodeId, Vec<u32>>` pays a hash probe per lookup and one heap
//! allocation per node; [`InvertedIndex`] stores the same relation as a
//! flat counting-sort CSR — one `set_ids` arena, one dense `offsets`
//! table indexed by node id, and a `present` list of the nodes whose
//! lists are non-empty. Lookups are two loads and a slice, construction
//! is two linear passes, and the whole structure lives in three `Vec`s.
//!
//! Construction paths:
//!
//! * [`InvertedIndex::from_batch`] — counting sort over an [`RrBatch`]
//!   arena (sets already sorted and duplicate-free);
//! * [`InvertedIndex::from_sets`] — the Vec-of-Vec adapter used by the
//!   public `greedy_max_cover` API and the test oracles (tolerates
//!   duplicate members within a set, like the classic `invert`);
//! * [`InvertedIndexBuilder`] — an explicit two-pass (count, then fill)
//!   builder for producers that stream per-node lists from several
//!   sources, e.g. the per-keyword scans of the disk-index query paths.
//!
//! A finished [`InvertedIndex`] is immutable and safe for **multiple
//! consumers**: all reads go through `&self`, so any number of greedy
//! runs — concurrent or sequential — can share one instance. The
//! serving tier's cross-request batch planner leans on both reuse
//! axes: same-keyword-set requests run their own greedy over one
//! shared merged instance (different `k`, same structure), and the
//! arenas of a spent instance recycle into the next build via
//! [`InvertedIndex::into_arenas`] / [`InvertedIndexBuilder::recycled`]
//! (three arenas in, three out, zero steady-state allocation).

use kbtim_graph::NodeId;
use kbtim_propagation::RrBatch;

/// Immutable node → sorted-set-id map in CSR form.
///
/// Set ids in each per-node list appear in the order they were pushed;
/// every producer in this workspace pushes in ascending set-id order, so
/// lists are ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvertedIndex {
    /// `num_nodes + 1` boundaries into `set_ids`, indexed by node id.
    offsets: Vec<u32>,
    /// All per-node lists, back to back.
    set_ids: Vec<u32>,
    /// Nodes with non-empty lists, ascending.
    present: Vec<NodeId>,
}

impl InvertedIndex {
    /// Invert an [`RrBatch`] (counting sort over the arena).
    ///
    /// Batch sets must be duplicate-free (the samplers guarantee sorted,
    /// unique members), so no dedup pass is needed.
    pub fn from_batch(batch: &RrBatch) -> InvertedIndex {
        let num_nodes = batch.members().iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
        let mut builder = InvertedIndexBuilder::new(num_nodes as u32);
        for &node in batch.members() {
            builder.count(node, 1);
        }
        let mut filler = builder.fill();
        for (i, set) in batch.iter().enumerate() {
            for &node in set {
                filler.push(node, i as u32);
            }
        }
        filler.finish()
    }

    /// Invert a Vec-of-Vec collection (test-oracle adapter).
    ///
    /// Duplicate members *within* one set count once, matching
    /// [`crate::maxcover::invert`].
    pub fn from_sets(sets: &[Vec<NodeId>]) -> InvertedIndex {
        let num_nodes = sets.iter().flatten().copied().max().map(|m| m as usize + 1).unwrap_or(0);
        // `last_set[v] == i + 1` marks "v already counted for set i", so a
        // duplicate member contributes one entry no matter where in the
        // set it appears.
        let mut last_set = vec![0u32; num_nodes];
        let mut builder = InvertedIndexBuilder::new(num_nodes as u32);
        for (i, set) in sets.iter().enumerate() {
            for &node in set {
                if last_set[node as usize] != i as u32 + 1 {
                    last_set[node as usize] = i as u32 + 1;
                    builder.count(node, 1);
                }
            }
        }
        last_set.iter_mut().for_each(|s| *s = 0);
        let mut filler = builder.fill();
        for (i, set) in sets.iter().enumerate() {
            for &node in set {
                if last_set[node as usize] != i as u32 + 1 {
                    last_set[node as usize] = i as u32 + 1;
                    filler.push(node, i as u32);
                }
            }
        }
        filler.finish()
    }

    /// Size of the dense node-id space (`max node + 1` for the
    /// `from_*` constructors, the builder's `num_nodes` otherwise).
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// The set-id list of `node` (empty for absent nodes).
    #[inline]
    pub fn list(&self, node: NodeId) -> &[u32] {
        let i = node as usize;
        &self.set_ids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Nodes with non-empty lists, ascending.
    pub fn present(&self) -> &[NodeId] {
        &self.present
    }

    /// Total entries across all lists (the arena length).
    pub fn total_entries(&self) -> usize {
        self.set_ids.len()
    }

    /// Exact heap footprint of the three arenas, in bytes.
    pub fn arena_bytes(&self) -> u64 {
        (self.set_ids.len() * 4 + self.offsets.len() * 4 + self.present.len() * 4) as u64
    }

    /// Tear the index down into its raw arenas so a later build can
    /// reuse the allocations via [`InvertedIndexBuilder::recycled`].
    /// Contents are unspecified; only the capacities matter.
    pub fn into_arenas(self) -> Vec<Vec<u32>> {
        vec![self.offsets, self.set_ids, self.present]
    }
}

/// Counting pass of the two-pass CSR build: declare how many set ids
/// each node will receive, then [`InvertedIndexBuilder::fill`].
pub struct InvertedIndexBuilder {
    counts: Vec<u32>,
    /// Recycled arenas waiting to back `offsets`/`set_ids` in the fill
    /// pass (empty for a fresh builder).
    spare: Vec<Vec<u32>>,
}

impl InvertedIndexBuilder {
    /// Builder over the dense node-id space `0..num_nodes`.
    pub fn new(num_nodes: u32) -> InvertedIndexBuilder {
        InvertedIndexBuilder::recycled(num_nodes, Vec::new())
    }

    /// [`InvertedIndexBuilder::new`] reusing the arenas of a previously
    /// finished index (see [`InvertedIndex::into_arenas`]). With three
    /// recycled arenas the whole count→fill→finish cycle allocates
    /// nothing in steady state: three arenas go in, three come out.
    pub fn recycled(num_nodes: u32, mut arenas: Vec<Vec<u32>>) -> InvertedIndexBuilder {
        let mut counts = arenas.pop().unwrap_or_default();
        counts.clear();
        counts.resize(num_nodes as usize, 0);
        InvertedIndexBuilder { counts, spare: arenas }
    }

    /// Announce `n` further entries for `node`.
    #[inline]
    pub fn count(&mut self, node: NodeId, n: u32) {
        self.counts[node as usize] += n;
    }

    /// Freeze the counts into CSR offsets and start the fill pass. The
    /// fill pass must push exactly the announced entries per node.
    pub fn fill(mut self) -> InvertedIndexFiller {
        let num_nodes = self.counts.len();
        let mut offsets = self.spare.pop().unwrap_or_default();
        offsets.clear();
        offsets.reserve(num_nodes + 1);
        offsets.push(0u32);
        let mut total = 0u64;
        for &c in &self.counts {
            total += c as u64;
            offsets.push(u32::try_from(total).expect("inverted arena exceeds u32 offsets"));
        }
        // The counts arena becomes the fill cursor in place.
        let mut cursor = self.counts;
        cursor.copy_from_slice(&offsets[..num_nodes]);
        let mut set_ids = self.spare.pop().unwrap_or_default();
        set_ids.clear();
        set_ids.resize(total as usize, 0);
        InvertedIndexFiller { offsets, cursor, set_ids }
    }
}

/// Fill pass of the two-pass CSR build (see [`InvertedIndexBuilder`]).
pub struct InvertedIndexFiller {
    offsets: Vec<u32>,
    cursor: Vec<u32>,
    set_ids: Vec<u32>,
}

impl InvertedIndexFiller {
    /// Append `id` to `node`'s list.
    #[inline]
    pub fn push(&mut self, node: NodeId, id: u32) {
        let c = &mut self.cursor[node as usize];
        self.set_ids[*c as usize] = id;
        *c += 1;
    }

    /// Append every id of `ids` to `node`'s list.
    pub fn push_list(&mut self, node: NodeId, ids: impl IntoIterator<Item = u32>) {
        for id in ids {
            self.push(node, id);
        }
    }

    /// Finish the build. Panics (debug) if any node received fewer
    /// entries than announced.
    pub fn finish(self) -> InvertedIndex {
        debug_assert!(
            self.cursor.iter().enumerate().all(|(i, &c)| c == self.offsets[i + 1]),
            "fill pass did not match the counting pass"
        );
        let InvertedIndexFiller { offsets, cursor, set_ids } = self;
        // The spent cursor arena is reborn as the present list, keeping
        // the recycled cycle allocation-free.
        let num_nodes = cursor.len();
        let mut present = cursor;
        present.clear();
        for v in 0..num_nodes {
            if offsets[v + 1] > offsets[v] {
                present.push(v as u32);
            }
        }
        InvertedIndex { offsets, set_ids, present }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcover::invert;

    fn oracle_equal(sets: &[Vec<NodeId>], inv: &InvertedIndex) {
        let oracle = invert(sets);
        assert_eq!(inv.present().len(), oracle.len(), "present-node count");
        for &node in inv.present() {
            assert_eq!(
                inv.list(node),
                oracle.get(&node).map(Vec::as_slice).unwrap_or(&[]),
                "node {node}"
            );
        }
        // Absent nodes decode to empty lists.
        for v in 0..inv.num_nodes() {
            if !inv.present().contains(&v) {
                assert!(inv.list(v).is_empty());
            }
        }
    }

    #[test]
    fn from_sets_matches_oracle() {
        let sets: Vec<Vec<NodeId>> = vec![
            vec![1, 3, 5],
            vec![],
            vec![3],
            vec![0, 1, 2, 3, 4, 5],
            vec![5, 5, 7], // duplicate member counts once
        ];
        let inv = InvertedIndex::from_sets(&sets);
        oracle_equal(&sets, &inv);
        assert_eq!(inv.list(5), &[0, 3, 4]);
        assert_eq!(inv.num_nodes(), 8);
    }

    #[test]
    fn from_batch_matches_from_sets_on_sorted_unique_input() {
        let sets: Vec<Vec<NodeId>> =
            vec![vec![2, 4, 9], vec![0], vec![], vec![4, 8], vec![1, 2, 3]];
        let batch = RrBatch::from_sets(&sets);
        assert_eq!(InvertedIndex::from_batch(&batch), InvertedIndex::from_sets(&sets));
    }

    #[test]
    fn random_instances_match_oracle() {
        let mut state = 3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..20 {
            let num_sets = 1 + (next() % 200) as usize;
            let universe = 1 + next() % 100;
            let sets: Vec<Vec<NodeId>> = (0..num_sets)
                .map(|_| {
                    let len = (next() % 9) as usize;
                    let mut set: Vec<u32> = (0..len).map(|_| next() % universe).collect();
                    set.sort_unstable();
                    set.dedup();
                    set
                })
                .collect();
            let inv = InvertedIndex::from_sets(&sets);
            oracle_equal(&sets, &inv);
            assert_eq!(inv, InvertedIndex::from_batch(&RrBatch::from_sets(&sets)), "trial {trial}");
        }
    }

    #[test]
    fn empty_input() {
        let inv = InvertedIndex::from_sets(&[]);
        assert_eq!(inv.num_nodes(), 0);
        assert!(inv.present().is_empty());
        assert_eq!(inv.total_entries(), 0);
        let inv = InvertedIndex::from_batch(&RrBatch::new());
        assert_eq!(inv.num_nodes(), 0);
    }

    #[test]
    fn recycled_builder_matches_fresh_and_reuses_capacity() {
        let sets: Vec<Vec<NodeId>> = vec![vec![1, 3, 5], vec![3], vec![0, 2, 5, 7]];
        let fresh = InvertedIndex::from_sets(&sets);
        let rebuild = |arenas: Vec<Vec<u32>>| -> InvertedIndex {
            let mut b = InvertedIndexBuilder::recycled(8, arenas);
            for set in &sets {
                for &node in set {
                    b.count(node, 1);
                }
            }
            let mut f = b.fill();
            for (i, set) in sets.iter().enumerate() {
                for &node in set {
                    f.push(node, i as u32);
                }
            }
            f.finish()
        };
        // Two warm-up cycles let every arena reach the max role size
        // (arenas rotate through counts/offsets/set_ids/present roles).
        let warm = rebuild(rebuild(fresh.clone().into_arenas()).into_arenas());
        assert_eq!(warm, fresh, "recycled build must be bit-identical");
        // Steady state: a further cycle must reuse the warmed arenas
        // without growing any of them.
        let warm_arenas = warm.into_arenas();
        let mut caps_in: Vec<usize> = warm_arenas.iter().map(Vec::capacity).collect();
        let steady = rebuild(warm_arenas);
        assert_eq!(steady, fresh);
        let mut caps_out: Vec<usize> = steady.into_arenas().iter().map(Vec::capacity).collect();
        caps_in.sort_unstable();
        caps_out.sort_unstable();
        assert_eq!(caps_out, caps_in, "steady-state rebuild must not grow any arena");
    }

    #[test]
    fn bitset_reset_reuses_words() {
        use crate::bitset::Bitset;
        let mut bits = Bitset::new(100);
        bits.set(5);
        bits.set(99);
        bits.reset(64);
        assert_eq!(bits.len(), 64);
        assert_eq!(bits.count_ones(), 0);
        bits.set(63);
        bits.reset(200);
        assert_eq!(bits.len(), 200);
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn builder_streams_multiple_sources() {
        // Two "keywords" contributing to overlapping users, pushed in
        // source order — exactly the disk-index merge pattern.
        let mut b = InvertedIndexBuilder::new(4);
        b.count(1, 2);
        b.count(3, 1);
        b.count(1, 1);
        let mut f = b.fill();
        f.push_list(1, [0, 2]);
        f.push(3, 1);
        f.push(1, 5);
        let inv = f.finish();
        assert_eq!(inv.list(1), &[0, 2, 5]);
        assert_eq!(inv.list(3), &[1]);
        assert_eq!(inv.present(), &[1, 3]);
        assert_eq!(inv.arena_bytes(), (4 * 4 + 5 * 4 + 2 * 4) as u64);
    }
}
