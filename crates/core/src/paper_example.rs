//! The paper's Figure 1 running example as an exact test fixture.
//!
//! Seven users `a..g` (ids 0..6), seven directed edges, five topics. The
//! edge set is reconstructed from the constraints the paper states:
//!
//! * Example 1 (`S = {e, f}`): `e` can activate `a` and `c`, `f` can
//!   activate `d`, `a` can (and fails to) activate `b`
//!   → edges `e→a`, `e→c`, `f→d`, `a→b`.
//! * `p(e ↝ b) = 0.5` with `p(a ↝ b)` as the only route → `p(e→a) = 1.0`
//!   (the figure's single 1.0 edge) and `p(a→b) = 0.5`; `g→b = 0.5`.
//! * `E[I({e,g})] = 1 + 0.75 + 0.6875 + 0.375 + 1 + 0 + 1 = 4.8125` forces
//!   `b→c = 0.5` (giving `p(c) = 0.6875`) and `b→d = 0.5` (giving
//!   `p(d) = 0.375`).
//!
//! Topic profiles are assigned so that every stated total holds *exactly*:
//! `tf(music) = {a: 0, b: 0.5, c: 0.6, d: 0.5, e: 0.3, f: 0, g: 0}` gives
//! `E[I^{music}({b,e})] = 0.5 + 0.3 + 0.75·0.6 + 0.5·0.5 = 1.5` with
//! `{b, e}` the strict optimum, as Example 3 claims. (The printed sum's
//! fourth term "0.1875·0.5" equals `p({e,g} ↝ d)·tf(music, d)` — a slip
//! from the Example-1 seed set; the printed terms add to 1.34375, not the
//! stated 1.5, so we reproduce the stated totals.)

use kbtim_graph::{Graph, NodeId};
use kbtim_propagation::model::IcModel;
use kbtim_topics::{TopicId, UserProfiles};

/// Node ids for the example's users.
pub const A: NodeId = 0;
/// User `b`.
pub const B: NodeId = 1;
/// User `c`.
pub const C: NodeId = 2;
/// User `d`.
pub const D: NodeId = 3;
/// User `e`.
pub const E: NodeId = 4;
/// User `f`.
pub const F: NodeId = 5;
/// User `g`.
pub const G: NodeId = 6;

/// Topic ids for the example's five topics.
pub const MUSIC: TopicId = 0;
/// Topic "book".
pub const BOOK: TopicId = 1;
/// Topic "sport".
pub const SPORT: TopicId = 2;
/// Topic "car".
pub const CAR: TopicId = 3;
/// Topic "travel".
pub const TRAVEL: TopicId = 4;

/// The Figure 1 social graph (7 nodes, 7 edges).
pub fn graph() -> Graph {
    Graph::from_edges(
        7,
        &[
            (E, A), // 1.0
            (A, B), // 0.5
            (G, B), // 0.5
            (E, C), // 0.5
            (B, C), // 0.5
            (B, D), // 0.5
            (F, D), // 0.5
        ],
    )
}

/// The example's IC model: `e→a` has probability 1.0, all other edges 0.5.
pub fn ic_model(graph: &Graph) -> IcModel<'_> {
    IcModel::from_fn(graph, |u, v| if (u, v) == (E, A) { 1.0 } else { 0.5 })
}

/// The Figure 1 user profiles (preferences per user sum to 1).
pub fn profiles() -> UserProfiles {
    UserProfiles::from_entries(
        7,
        5,
        &[
            // a: book 1.0
            (A, BOOK, 1.0),
            // b: music 0.5, book 0.3, car 0.2
            (B, MUSIC, 0.5),
            (B, BOOK, 0.3),
            (B, CAR, 0.2),
            // c: music 0.6, book 0.2, sport 0.1, car 0.1
            (C, MUSIC, 0.6),
            (C, BOOK, 0.2),
            (C, SPORT, 0.1),
            (C, CAR, 0.1),
            // d: music 0.5, book 0.5
            (D, MUSIC, 0.5),
            (D, BOOK, 0.5),
            // e: music 0.3, book 0.3, sport 0.4
            (E, MUSIC, 0.3),
            (E, BOOK, 0.3),
            (E, SPORT, 0.4),
            // f: sport 0.2, book 0.2, travel 0.6
            (F, SPORT, 0.2),
            (F, BOOK, 0.2),
            (F, TRAVEL, 0.6),
            // g: car 1.0
            (G, CAR, 1.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_propagation::spread::{
        exact_activation_probability, exact_spread, exact_weighted_spread,
    };

    #[test]
    fn example_1_probability_of_b() {
        // p({e, g} ↝ b) = 0.75 (paper, Example 1 discussion).
        let g = graph();
        let model = ic_model(&g);
        let p = exact_activation_probability(&model, &[E, G], B);
        assert!((p - 0.75).abs() < 1e-12, "{p}");
    }

    #[test]
    fn example_1_optimal_pair_spread() {
        // E[I({e, g})] = 4.8125 (paper, Example 1).
        let g = graph();
        let model = ic_model(&g);
        let spread = exact_spread(&model, &[E, G]);
        assert!((spread - 4.8125).abs() < 1e-12, "{spread}");
    }

    #[test]
    fn example_1_per_node_probabilities() {
        // The individual activation probabilities behind the 4.8125 total.
        let g = graph();
        let model = ic_model(&g);
        let expect = [(A, 1.0), (B, 0.75), (C, 0.6875), (D, 0.375), (E, 1.0), (F, 0.0), (G, 1.0)];
        for (node, p) in expect {
            let actual = exact_activation_probability(&model, &[E, G], node);
            assert!((actual - p).abs() < 1e-12, "node {node}: {actual} vs {p}");
        }
    }

    #[test]
    fn example_1_seed_set_is_optimal_pair() {
        // {e, g} maximizes E[I(S)] over all pairs (the paper calls it S*).
        let g = graph();
        let model = ic_model(&g);
        let best = exact_spread(&model, &[E, G]);
        for x in 0..7u32 {
            for y in (x + 1)..7u32 {
                let s = exact_spread(&model, &[x, y]);
                assert!(s <= best + 1e-12, "pair ({x},{y}) has spread {s} > {best}");
            }
        }
    }

    #[test]
    fn example_3_targeted_music_spread() {
        // E[I^{music}({b, e})] = 1.5 in raw-tf units (the paper works this
        // example without the idf factor; see module docs for the slip in
        // the printed fourth term). Tolerance covers f32 tf storage.
        let g = graph();
        let model = ic_model(&g);
        let p = profiles();
        let spread = exact_weighted_spread(&model, &[B, E], |v| p.tf(v, MUSIC) as f64);
        assert!((spread - 1.5).abs() < 1e-6, "{spread}");
    }

    #[test]
    fn example_3_pair_is_optimal_for_music() {
        // The paper states S* = {b, e} for Q = ({music}, 2).
        let g = graph();
        let model = ic_model(&g);
        let p = profiles();
        let weight = |v: NodeId| p.tf(v, MUSIC) as f64;
        let best = exact_weighted_spread(&model, &[B, E], weight);
        for x in 0..7u32 {
            for y in (x + 1)..7u32 {
                let s = exact_weighted_spread(&model, &[x, y], weight);
                assert!(s <= best + 1e-6, "pair ({x},{y}): {s} > {best}");
            }
        }
    }

    #[test]
    fn targeted_and_untargeted_optima_differ() {
        // The crux of the paper: the untargeted optimum {e, g} is NOT the
        // music-targeted optimum {b, e}.
        let g = graph();
        let model = ic_model(&g);
        let p = profiles();
        let weight = |v: NodeId| p.tf(v, MUSIC) as f64;
        let untargeted_pair = exact_weighted_spread(&model, &[E, G], weight);
        let targeted_pair = exact_weighted_spread(&model, &[B, E], weight);
        assert!(targeted_pair > untargeted_pair, "{targeted_pair} vs {untargeted_pair}");
    }

    #[test]
    fn profile_weights_sum_to_one() {
        let p = profiles();
        for user in 0..7u32 {
            let (_, tfs) = p.user_vector(user);
            let sum: f64 = tfs.iter().map(|&t| t as f64).sum();
            assert!((sum - 1.0).abs() < 1e-6, "user {user} sums to {sum}");
        }
    }

    #[test]
    fn wris_recovers_example_3_seeds() {
        // End-to-end: WRIS on the example graph must find {b, e} for the
        // music query with k = 2 (modulo tie-breaking, the optimum here is
        // strict).
        use crate::theta::SamplingConfig;
        use crate::wris::wris_query;
        use kbtim_topics::Query;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let g = graph();
        let model = ic_model(&g);
        let p = profiles();
        let query = Query::new([MUSIC], 2);
        let config = SamplingConfig {
            theta_cap: Some(20_000),
            opt_initial_samples: 1024,
            ..SamplingConfig::fast()
        };
        let mut rng = SmallRng::seed_from_u64(99);
        let result = wris_query(&model, &p, &query, &config, &mut rng);
        let mut seeds = result.seeds.clone();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![B, E], "WRIS should recover the paper's optimum");
    }
}
