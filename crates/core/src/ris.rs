//! Classic uniform RIS (§2.2) — the untargeted baseline.
//!
//! Roots are sampled uniformly; θ follows Theorem 1. Because the query
//! plays no role, RIS returns the *same* seeds for every advertisement —
//! exactly the failure mode Table 8 demonstrates ("no clue between its
//! top seed users and query keywords"), which KB-TIM fixes.

use crate::alias::RootSampler;
use crate::maxcover::greedy_max_cover_batch;
use crate::opt::estimate_opt;
use crate::theta::{ris_theta, SamplingConfig};
use crate::wris::WrisResult;
use kbtim_propagation::{sample_batch, TriggeringModel};
use rand::RngCore;

/// Answer a plain influence-maximization query (Definition 1) with uniform
/// RIS sampling.
///
/// The result reuses [`WrisResult`]; `estimated_influence` is in *users*
/// (the weight function is identically 1). Like
/// [`wris_query`](crate::wris::wris_query), sampling runs on
/// `config.threads` workers with thread-count-independent results.
pub fn ris_query<M: TriggeringModel + ?Sized>(
    model: &M,
    k: u32,
    config: &SamplingConfig,
    rng: &mut dyn RngCore,
) -> WrisResult {
    let graph = model.graph();
    let n = graph.num_nodes();
    if n == 0 {
        return WrisResult {
            seeds: Vec::new(),
            marginal_gains: Vec::new(),
            coverage: 0,
            theta: 0,
            opt_estimate: 0.0,
            estimated_influence: 0.0,
        };
    }
    let roots = RootSampler::from_dense(&vec![1.0; n as usize]).expect("uniform weights");
    let pool = config.pool();
    let opt = estimate_opt(model, &roots, n as f64, k, config, &pool, rng);
    let theta = ris_theta(n as u64, k, opt.value, config);

    let batch_seed = rng.next_u64();
    let sets = sample_batch(model, theta as usize, batch_seed, &pool, |rng| roots.sample(rng));
    let cover = greedy_max_cover_batch(&sets, k, &pool);
    let estimated_influence =
        if theta == 0 { 0.0 } else { cover.covered as f64 / theta as f64 * n as f64 };
    WrisResult {
        seeds: cover.seeds,
        marginal_gains: cover.marginal_gains,
        coverage: cover.covered,
        theta,
        opt_estimate: opt.value,
        estimated_influence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_graph::gen;
    use kbtim_propagation::model::IcModel;
    use kbtim_propagation::spread::monte_carlo_spread;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn star_hub_wins() {
        let g = gen::star(30);
        let model = IcModel::uniform(&g, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let result = ris_query(&model, 1, &SamplingConfig::fast(), &mut rng);
        assert_eq!(result.seeds, vec![0]);
        assert!((result.estimated_influence - 30.0).abs() < 1e-9);
    }

    #[test]
    fn influence_estimate_tracks_monte_carlo() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = gen::preferential_attachment(
            gen::PrefAttachConfig { num_nodes: 150, edges_per_node: 3, reciprocal_prob: 0.7 },
            &mut rng,
        );
        let model = IcModel::weighted_cascade(&g);
        let config = SamplingConfig { theta_cap: Some(30_000), ..SamplingConfig::fast() };
        let result = ris_query(&model, 5, &config, &mut rng);
        assert_eq!(result.seeds.len(), 5);
        let mc = monte_carlo_spread(&model, &result.seeds, 30_000, &mut rng);
        let rel = (result.estimated_influence - mc).abs() / mc;
        assert!(rel < 0.1, "RIS {} vs MC {mc} (rel {rel})", result.estimated_influence);
    }

    #[test]
    fn empty_graph() {
        let g = kbtim_graph::Graph::from_edges(0, &[]);
        let model = IcModel::uniform(&g, 0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        let result = ris_query(&model, 3, &SamplingConfig::fast(), &mut rng);
        assert!(result.seeds.is_empty());
        assert_eq!(result.theta, 0);
    }

    #[test]
    fn k_exceeding_nodes_is_fine() {
        let g = gen::line(3);
        let model = IcModel::uniform(&g, 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let result = ris_query(&model, 10, &SamplingConfig::fast(), &mut rng);
        // Node 0 covers everything reachable; seeds stop at zero gain.
        assert!(!result.seeds.is_empty());
        assert!(result.seeds.len() <= 3);
        assert_eq!(result.coverage, result.theta);
    }
}
