//! Sample-size bounds: how many RR sets guarantee `(1 − 1/e − ε)`.
//!
//! The paper's bounds (all denominators use an *estimate* of the unknown
//! optimum, produced by [`crate::opt`]):
//!
//! ```text
//! Theorem 1 (RIS):   θ  ≥ (8+2ε)·|V| · (ln|V| + ln C(|V|,k) + ln 2) / (OPT_k · ε²)
//! Eqn 6    (WRIS):   θ  ≥ (8+2ε)·φ_Q · (ln|V| + ln C(|V|,Q.k) + ln 2) / (OPT^Q_k · ε²)
//! Eqn 8    (θ̂_w):   θ̂_w = (8+2ε)·Σtf_w · (ln|V| + ln C(|V|,K) + ln 2) / (OPT^w_1 · ε²)
//! Eqn 10   (θ_w):    θ_w = (8+2ε)·Σtf_w · (ln|V| + ln C(|V|,K) + ln 2) / (OPT^w_K · ε²)
//! ```
//!
//! Eqn 10 is the paper's "improved estimation" (§4.3): replacing the
//! singleton optimum `OPT^w_1` with the size-`K` optimum `OPT^w_K` shrinks
//! the per-keyword index by an order of magnitude (their Table 3) while
//! Lemma 4 keeps `θ_w ≥ θ·p_w`, preserving the guarantee.
//!
//! `ln C(n, k)` is computed exactly via log-gamma (Lanczos approximation),
//! not the `k·ln n` upper bound, matching the paper's formulas.

/// Tuning knobs shared by every sampler in the crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Approximation slack ε of the `(1 − 1/e − ε)` guarantee. The paper
    /// fixes ε = 0.1 in all experiments.
    pub eps: f64,
    /// `K`: the system-wide upper bound on `Q.k` (paper: 100, queries up
    /// to 50).
    pub k_max: u32,
    /// Optional hard cap on any single θ value. The paper's server-scale
    /// settings produce θ_w in the hundreds of thousands; laptop-scale
    /// benches cap it to bound build time. `None` = faithful, uncapped.
    pub theta_cap: Option<u64>,
    /// RR sets drawn in the first round of OPT estimation.
    pub opt_initial_samples: u64,
    /// Maximum doubling rounds of OPT estimation.
    pub opt_max_rounds: u32,
    /// Relative-change threshold at which the OPT estimate is considered
    /// converged.
    pub opt_tolerance: f64,
    /// Worker threads for the parallel sampling/coverage paths; `None`
    /// uses the machine's available parallelism. Results are **identical
    /// for every value** — work is sharded deterministically with
    /// per-shard RNG streams (see `kbtim-exec`), so this knob trades
    /// wall-clock time only, never reproducibility.
    pub threads: Option<usize>,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl SamplingConfig {
    /// The paper's experimental settings: ε = 0.1, K = 100, uncapped.
    pub fn paper() -> SamplingConfig {
        SamplingConfig {
            eps: 0.1,
            k_max: 100,
            theta_cap: None,
            opt_initial_samples: 512,
            opt_max_rounds: 16,
            opt_tolerance: 0.1,
            threads: None,
        }
    }

    /// Laptop-scale settings used by tests, examples and benches:
    /// ε = 0.5, K = 50, θ capped at 200 000 per computation. The θ formulas
    /// are unchanged — only the constants differ (documented in DESIGN.md).
    pub fn fast() -> SamplingConfig {
        SamplingConfig {
            eps: 0.5,
            k_max: 50,
            theta_cap: Some(200_000),
            opt_initial_samples: 256,
            opt_max_rounds: 12,
            opt_tolerance: 0.15,
            threads: None,
        }
    }

    /// Executor for this configuration's `threads` setting.
    pub fn pool(&self) -> kbtim_exec::ExecPool {
        kbtim_exec::ExecPool::new(self.threads)
    }

    /// Apply the configured cap and rounding to a raw θ bound.
    pub fn finalize_theta(&self, raw: f64) -> u64 {
        let theta = raw.max(1.0).ceil() as u64;
        match self.theta_cap {
            Some(cap) => theta.min(cap),
            None => theta,
        }
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error for x > 0, which is far tighter than
/// the concentration constants feeding it.
#[allow(clippy::excessive_precision)] // Lanczos constants kept at published precision
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const SQRT_TWO_PI: f64 = 2.506_628_274_631_000_5;
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_93;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    (SQRT_TWO_PI * acc).ln() + (x + 0.5) * t.ln() - t
}

/// `ln C(n, k)` — log binomial coefficient; 0 when `k == 0 || k == n`,
/// `-inf`-free: out-of-range `k > n` is a panic (caller bug).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose requires k <= n (got {k} > {n})");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Shared numerator `ln|V| + ln C(|V|, k) + ln 2` of every θ bound.
fn log_term(num_nodes: u64, k: u64) -> f64 {
    let k = k.min(num_nodes);
    (num_nodes.max(2) as f64).ln() + ln_choose(num_nodes, k) + std::f64::consts::LN_2
}

/// Theorem 1: θ for classic (uniform) RIS on the plain IM problem.
pub fn ris_theta(num_nodes: u64, k: u32, opt: f64, config: &SamplingConfig) -> u64 {
    wris_theta(num_nodes, k, num_nodes as f64, opt, config)
}

/// Eqn 6: θ for WRIS on a KB-TIM query with total relevance mass `φ_Q` and
/// estimated optimum `OPT^{Q.T}_{Q.k}`.
///
/// Returns 0 when `φ_Q = 0` (no targeted user exists).
pub fn wris_theta(num_nodes: u64, k: u32, phi_q: f64, opt: f64, config: &SamplingConfig) -> u64 {
    if phi_q <= 0.0 {
        return 0;
    }
    assert!(opt > 0.0, "OPT estimate must be positive when phi_q > 0");
    let eps = config.eps;
    let raw = (8.0 + 2.0 * eps) * phi_q * log_term(num_nodes, k as u64) / (opt * eps * eps);
    config.finalize_theta(raw)
}

/// Eqn 8 / Eqn 10: the per-keyword index size `θ_w`.
///
/// `tf_sum = Σ_v tf(w, v)` and `opt_w` is the estimated keyword optimum —
/// `OPT^w_1` for the conservative `θ̂_w` (Eqn 8) or `OPT^w_K` for the
/// compact `θ_w` (Eqn 10); both are measured in raw-tf units (the idf
/// factor cancels, see the Lemma 3 proof).
pub fn keyword_theta(num_nodes: u64, tf_sum: f64, opt_w: f64, config: &SamplingConfig) -> u64 {
    if tf_sum <= 0.0 {
        return 0;
    }
    assert!(opt_w > 0.0, "OPT^w estimate must be positive when tf_sum > 0");
    let eps = config.eps;
    let raw =
        (8.0 + 2.0 * eps) * tf_sum * log_term(num_nodes, config.k_max as u64) / (opt_w * eps * eps);
    config.finalize_theta(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_matches_exact_binomials() {
        let exact = |n: u64, k: u64| -> f64 {
            let mut c = 1f64;
            for i in 0..k {
                c = c * (n - i) as f64 / (i + 1) as f64;
            }
            c.ln()
        };
        for &(n, k) in &[(10u64, 3u64), (52, 5), (100, 50), (1000, 2), (7, 7), (7, 0)] {
            let expect = if k == 0 || k == n { 0.0 } else { exact(n, k) };
            assert!(
                (ln_choose(n, k) - expect).abs() < 1e-8,
                "C({n},{k}): {} vs {expect}",
                ln_choose(n, k)
            );
        }
    }

    #[test]
    fn ln_choose_symmetry() {
        for &(n, k) in &[(30u64, 7u64), (100, 13), (64, 32)] {
            assert!((ln_choose(n, k) - ln_choose(n, n - k)).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "k <= n")]
    fn ln_choose_rejects_k_above_n() {
        ln_choose(3, 4);
    }

    #[test]
    fn theta_monotonic_in_eps() {
        let tight = SamplingConfig { eps: 0.1, theta_cap: None, ..SamplingConfig::paper() };
        let loose = SamplingConfig { eps: 0.5, theta_cap: None, ..SamplingConfig::paper() };
        let t_tight = wris_theta(10_000, 20, 500.0, 50.0, &tight);
        let t_loose = wris_theta(10_000, 20, 500.0, 50.0, &loose);
        assert!(t_tight > t_loose * 10, "{t_tight} vs {t_loose}");
    }

    #[test]
    fn theta_scales_with_phi_over_opt() {
        let config = SamplingConfig { theta_cap: None, ..SamplingConfig::fast() };
        let base = wris_theta(10_000, 20, 100.0, 10.0, &config);
        let double_phi = wris_theta(10_000, 20, 200.0, 10.0, &config);
        let double_opt = wris_theta(10_000, 20, 100.0, 20.0, &config);
        // Allow ±1 for ceiling effects.
        assert!((double_phi as i64 - 2 * base as i64).abs() <= 2);
        assert!((double_opt as i64 - (base / 2) as i64).abs() <= 2);
    }

    #[test]
    fn zero_mass_means_zero_theta() {
        let config = SamplingConfig::fast();
        assert_eq!(wris_theta(100, 5, 0.0, 1.0, &config), 0);
        assert_eq!(keyword_theta(100, 0.0, 1.0, &config), 0);
    }

    #[test]
    fn cap_applies() {
        let config = SamplingConfig { theta_cap: Some(1000), ..SamplingConfig::paper() };
        assert_eq!(wris_theta(1_000_000, 50, 1e6, 1.0, &config), 1000);
        let uncapped = SamplingConfig { theta_cap: None, ..config };
        assert!(wris_theta(1_000_000, 50, 1e6, 1.0, &uncapped) > 1000);
    }

    #[test]
    fn ris_theta_is_wris_with_node_mass() {
        let config = SamplingConfig { theta_cap: None, ..SamplingConfig::fast() };
        assert_eq!(ris_theta(5000, 10, 42.0, &config), wris_theta(5000, 10, 5000.0, 42.0, &config));
    }

    #[test]
    fn eqn8_exceeds_eqn10() {
        // OPT^w_1 ≤ OPT^w_K, so θ̂_w (Eqn 8, singleton OPT) ≥ θ_w (Eqn 10).
        let config = SamplingConfig { theta_cap: None, ..SamplingConfig::fast() };
        let opt_1 = 4.0;
        let opt_k = 22.0;
        assert!(
            keyword_theta(10_000, 120.0, opt_1, &config)
                > keyword_theta(10_000, 120.0, opt_k, &config)
        );
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let config = SamplingConfig { theta_cap: None, ..SamplingConfig::fast() };
        // Does not panic: k is clamped to |V| inside log_term.
        let theta = wris_theta(10, 50, 10.0, 1.0, &config);
        assert!(theta > 0);
    }
}
