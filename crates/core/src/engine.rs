//! Convenience facade bundling a graph, its profiles and a propagation
//! model behind one query interface.

use crate::ris::ris_query;
use crate::theta::SamplingConfig;
use crate::wris::{wris_query, WrisResult};
use kbtim_graph::{Graph, NodeId};
use kbtim_propagation::model::IcModel;
use kbtim_propagation::spread::{monte_carlo_spread, monte_carlo_targeted};
use kbtim_propagation::TriggeringModel;
use kbtim_topics::{Query, UserProfiles};
use rand::RngCore;

/// In-memory KB-TIM query engine.
///
/// Owns the propagation model (generic `M`, default IC with the paper's
/// weighted-cascade probabilities) and borrows the graph and profiles.
/// This is the *online* path; the disk-based real-time path lives in
/// `kbtim-index`.
pub struct KbTimEngine<'a, M: TriggeringModel> {
    graph: &'a Graph,
    profiles: &'a UserProfiles,
    model: M,
    config: SamplingConfig,
}

impl<'a> KbTimEngine<'a, IcModel<'a>> {
    /// Engine with the paper's default model: IC, `p(e) = 1/N_v`.
    pub fn new(
        graph: &'a Graph,
        profiles: &'a UserProfiles,
        config: SamplingConfig,
    ) -> KbTimEngine<'a, IcModel<'a>> {
        assert_eq!(graph.num_nodes(), profiles.num_users(), "graph/profiles size mismatch");
        KbTimEngine { graph, profiles, model: IcModel::weighted_cascade(graph), config }
    }
}

impl<'a, M: TriggeringModel> KbTimEngine<'a, M> {
    /// Engine with an explicit propagation model (LT, uniform IC, …).
    pub fn with_model(
        graph: &'a Graph,
        profiles: &'a UserProfiles,
        model: M,
        config: SamplingConfig,
    ) -> KbTimEngine<'a, M> {
        assert_eq!(graph.num_nodes(), profiles.num_users(), "graph/profiles size mismatch");
        KbTimEngine { graph, profiles, model, config }
    }

    /// Answer a KB-TIM query with online WRIS sampling (§3.2).
    pub fn wris(&self, query: &Query, rng: &mut dyn RngCore) -> WrisResult {
        wris_query(&self.model, self.profiles, query, &self.config, rng)
    }

    /// Answer an untargeted IM query with uniform RIS (§2.2 baseline).
    pub fn ris(&self, k: u32, rng: &mut dyn RngCore) -> WrisResult {
        ris_query(&self.model, k, &self.config, rng)
    }

    /// Monte-Carlo ground truth for `E[I^Q(S)]` of an arbitrary seed set.
    pub fn targeted_spread(
        &self,
        seeds: &[NodeId],
        query: &Query,
        rounds: u32,
        rng: &mut dyn RngCore,
    ) -> f64 {
        monte_carlo_targeted(&self.model, self.profiles, query, seeds, rounds, rng)
    }

    /// Monte-Carlo ground truth for the plain spread `E[I(S)]`.
    pub fn spread(&self, seeds: &[NodeId], rounds: u32, rng: &mut dyn RngCore) -> f64 {
        monte_carlo_spread(&self.model, seeds, rounds, rng)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The user profiles.
    pub fn profiles(&self) -> &UserProfiles {
        self.profiles
    }

    /// The propagation model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The sampling configuration.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_graph::gen;
    use kbtim_propagation::model::LtModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> (Graph, UserProfiles) {
        let g = gen::star(10);
        let entries: Vec<(u32, u32, f32)> = (1..10).map(|v| (v, 0u32, 1.0f32)).collect();
        let p = UserProfiles::from_entries(10, 1, &entries);
        (g, p)
    }

    #[test]
    fn default_engine_answers_queries() {
        let (g, p) = tiny();
        let engine = KbTimEngine::new(&g, &p, SamplingConfig::fast());
        let mut rng = SmallRng::seed_from_u64(1);
        let result = engine.wris(&Query::new([0], 2), &mut rng);
        assert!(!result.seeds.is_empty());
        let spread = engine.targeted_spread(&result.seeds, &Query::new([0], 2), 500, &mut rng);
        assert!(spread > 0.0);
    }

    #[test]
    fn lt_engine_via_with_model() {
        let (g, p) = tiny();
        let mut rng = SmallRng::seed_from_u64(2);
        let model = LtModel::random_weights(&g, &mut rng);
        let engine = KbTimEngine::with_model(&g, &p, model, SamplingConfig::fast());
        let result = engine.wris(&Query::new([0], 1), &mut rng);
        // Star with LT: hub is every leaf's only in-neighbour (weight 1),
        // so seeding the hub activates everyone — hub must win.
        assert_eq!(result.seeds, vec![0]);
    }

    #[test]
    fn ris_ignores_profiles() {
        let (g, p) = tiny();
        let engine = KbTimEngine::new(&g, &p, SamplingConfig::fast());
        let mut rng = SmallRng::seed_from_u64(3);
        let result = engine.ris(1, &mut rng);
        assert_eq!(result.seeds, vec![0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let g = gen::line(3);
        let p = UserProfiles::from_entries(5, 1, &[(0, 0, 1.0)]);
        let _ = KbTimEngine::new(&g, &p, SamplingConfig::fast());
    }

    #[test]
    fn accessors() {
        let (g, p) = tiny();
        let engine = KbTimEngine::new(&g, &p, SamplingConfig::fast());
        assert_eq!(engine.graph().num_nodes(), 10);
        assert_eq!(engine.profiles().num_users(), 10);
        assert_eq!(engine.config().eps, 0.5);
        assert_eq!(engine.model().name(), "IC");
    }
}
