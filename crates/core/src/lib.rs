//! Core KB-TIM algorithms (§2–§3 of the paper).
//!
//! This crate holds everything between the propagation substrate and the
//! disk indexes:
//!
//! * [`maxcover`] — the greedy maximum-coverage solver (step 2 of RIS),
//!   in naive and lazy (CELF-style) variants with identical, deterministic
//!   tie-breaking.
//! * [`invindex`] / [`bitset`] — the flat data path under the solver: a
//!   counting-sort CSR inverted index (node → set ids, one arena) and the
//!   word-packed coverage bitset the CELF loop marks into.
//! * [`alias`] — O(1) weighted sampling (Vose alias method) for the
//!   weighted root distributions `ps(v, Q)` and `ps(v, w)`.
//! * [`theta`] — the sample-size bounds: Theorem 1 (RIS), Eqn 6 (WRIS),
//!   Eqn 8 (`θ̂_w`) and Eqn 10 (`θ_w`), plus `ln C(n, k)` via a Lanczos
//!   log-gamma.
//! * [`opt`] — the iterative greedy lower-bound estimator for `OPT`
//!   (adapting the estimation approach of TIM \[21\]).
//! * [`wris`] — the paper's online solution: weighted RIS sampling with the
//!   `(1 − 1/e − ε)` guarantee (§3.2).
//! * [`ris`] — the uniform-sampling RIS baseline (§2.2), which ignores the
//!   query and reproduces the "same seeds for every advertisement"
//!   behaviour of Table 8's last row.
//! * [`engine`] — a convenience facade bundling graph + profiles + model.
//! * [`paper_example`] — the worked Figure 1 instance with its documented
//!   expected values, used as an exact test oracle.

#![deny(missing_docs)]

pub mod alias;
pub mod baselines;
pub mod bitset;
pub mod engine;
pub mod invindex;
pub mod maxcover;
pub mod opt;
pub mod paper_example;
pub mod prefetch;
pub mod ris;
pub mod theta;
pub mod wris;

pub use bitset::Bitset;
pub use engine::KbTimEngine;
pub use invindex::{InvertedIndex, InvertedIndexBuilder, InvertedIndexFiller};
pub use maxcover::{
    greedy_max_cover, greedy_max_cover_batch, greedy_max_cover_inverted, greedy_max_cover_naive,
    MaxCoverResult,
};
pub use theta::SamplingConfig;
pub use wris::{wris_query, WrisResult};
