//! Greedy maximum coverage over RR-set collections (step 2 of RIS/WRIS).
//!
//! Given θ sampled RR sets, the seed set is built by repeatedly taking the
//! node contained in the most not-yet-covered sets — the classic
//! `(1 − 1/e)` greedy for maximum coverage \[22\]. Two implementations:
//!
//! * [`greedy_max_cover_naive`] recounts every node each iteration —
//!   obviously correct, used as the test oracle;
//! * [`greedy_max_cover`] is the production lazy variant (CELF-style):
//!   marginal gains only ever shrink (submodularity), so a stale
//!   priority-queue entry whose recomputed gain still tops the queue is
//!   safe to take.
//!
//! Both use identical tie-breaking — larger gain first, then smaller node
//! id — so their outputs are *bit-identical*, a property the IRR ≡ RR
//! equivalence tests (Theorem 3) rely on.
//!
//! The lazy variant additionally supports **parallel marginal-gain
//! recounts** ([`greedy_max_cover_with`]): when the queue's top entry is
//! stale, a batch of stale entries is refreshed concurrently on a
//! [`kbtim_exec::ExecPool`]. Refreshing replaces upper bounds with exact
//! current gains, and the accepted seed is always the `(max gain, min
//! id)` argmax, so the selected sequence is independent of the batch
//! schedule — and therefore of the thread count.

use crate::bitset::Bitset;
use crate::invindex::InvertedIndex;
use kbtim_exec::ExecPool;
use kbtim_graph::NodeId;
use kbtim_propagation::RrBatch;
use std::collections::HashMap;

/// Result of a greedy maximum-coverage run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxCoverResult {
    /// Selected seeds, in selection order.
    pub seeds: Vec<NodeId>,
    /// Marginal number of sets newly covered by each seed (same order as
    /// `seeds`); strictly positive and non-increasing.
    pub marginal_gains: Vec<u64>,
    /// Total number of covered sets (= sum of `marginal_gains`).
    pub covered: u64,
}

/// Lazy (CELF-style) greedy maximum coverage, single-threaded.
///
/// Selects up to `k` nodes; stops early when no node covers any uncovered
/// set (zero-gain seeds are never emitted).
pub fn greedy_max_cover(sets: &[Vec<NodeId>], k: u32) -> MaxCoverResult {
    greedy_max_cover_with(sets, k, &ExecPool::sequential())
}

/// [`greedy_max_cover`] with parallel marginal-gain recounts on `pool`.
///
/// The result is bit-identical for every thread count.
pub fn greedy_max_cover_with(sets: &[Vec<NodeId>], k: u32, pool: &ExecPool) -> MaxCoverResult {
    greedy_max_cover_inverted_with(&InvertedIndex::from_sets(sets), sets.len() as u64, k, pool)
}

/// Greedy maximum coverage straight off an [`RrBatch`] arena — the entry
/// point for the sampling paths (WRIS / RIS / OPT estimation): counting-
/// sort inversion into a CSR [`InvertedIndex`], then the bitset CELF
/// loop. No per-set or per-node heap allocation anywhere.
pub fn greedy_max_cover_batch(batch: &RrBatch, k: u32, pool: &ExecPool) -> MaxCoverResult {
    greedy_max_cover_inverted_with(&InvertedIndex::from_batch(batch), batch.len() as u64, k, pool)
}

/// Lazy greedy maximum coverage over a pre-inverted CSR instance with set
/// indices in `0..num_sets`.
///
/// This is the entry point used by the disk indexes, whose inverted lists
/// (`L_w`) are stored explicitly; [`greedy_max_cover`] delegates here, so
/// selection and tie-breaking are shared by construction.
pub fn greedy_max_cover_inverted(
    inverted: &InvertedIndex,
    num_sets: u64,
    k: u32,
) -> MaxCoverResult {
    greedy_max_cover_inverted_with(inverted, num_sets, k, &ExecPool::sequential())
}

/// [`greedy_max_cover_inverted`] with parallel marginal-gain recounts.
///
/// Heap keys are upper bounds on true gains (submodularity). A node is
/// accepted only when its freshly recomputed gain still equals the top
/// key, i.e. when it is the `(max gain, min id)` argmax over all
/// candidates — a property of the *instance*, not of the refresh
/// schedule. The parallel path merely refreshes a batch of stale keys to
/// their exact values concurrently, so any thread count selects the same
/// seed sequence.
///
/// Coverage marks live in a [`Bitset`] (one bit per set) and the
/// selected-node marks in a dense `Vec<bool>`, so recounts are pure
/// slice scans over the CSR arena.
pub fn greedy_max_cover_inverted_with(
    inverted: &InvertedIndex,
    num_sets: u64,
    k: u32,
    pool: &ExecPool,
) -> MaxCoverResult {
    greedy_max_cover_inverted_until(inverted, num_sets, k, pool, &|| false)
        .expect("greedy with a never-firing stop cannot abort")
}

/// [`greedy_max_cover_inverted_with`] with a cooperative stop hook for
/// the serving tier's per-request deadlines.
///
/// `should_stop` is polled once per loop round (each heap pop — at least
/// once per selected seed); when it returns `true` the run aborts and
/// `None` comes back, leaving no partial result to mistake for an
/// answer. The hook must be cheap (a clock read) and pure — it cannot
/// influence the selection itself, so every *completed* run is still
/// bit-identical to [`greedy_max_cover_inverted_with`] for any thread
/// count.
pub fn greedy_max_cover_inverted_until(
    inverted: &InvertedIndex,
    num_sets: u64,
    k: u32,
    pool: &ExecPool,
    should_stop: &(dyn Fn() -> bool + Sync),
) -> Option<MaxCoverResult> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut covered = Bitset::new(num_sets as usize);

    // Heap of (gain, Reverse(node)): max gain first, then min node id.
    let mut heap: BinaryHeap<(u64, Reverse<NodeId>)> = inverted
        .present()
        .iter()
        .map(|&node| (inverted.list(node).len() as u64, Reverse(node)))
        .collect();

    let mut result = MaxCoverResult { seeds: Vec::new(), marginal_gains: Vec::new(), covered: 0 };
    let mut selected = vec![false; inverted.num_nodes() as usize];
    // Entries refreshed concurrently per stale top: large enough to
    // amortize a fork/join, small enough not to waste recounts near the
    // end of a run. Constant (not thread-derived) so work sizing never
    // depends on the pool.
    const REFRESH_BATCH: usize = 64;
    // Below this many scanned list entries a refresh runs inline: the
    // pool's scoped fork/join (tens to hundreds of µs) must be dwarfed by
    // the linear scans it parallelizes, which needs refresh work in the
    // hundreds of thousands of entries. Either path computes the same
    // exact gains, so the choice cannot affect the selected seeds.
    const PARALLEL_REFRESH_MIN_WORK: usize = 1 << 18;

    // Set ids within a list are sorted but land on arbitrary bitset
    // words, so the probe below misses cache on large θ; prefetching a
    // fixed distance ahead overlaps those misses with the current
    // probes. The hint is advisory — gains are unchanged for any
    // look-ahead.
    let recount = |node: NodeId, covered: &Bitset| -> u64 {
        let list = inverted.list(node);
        let mut gain = 0u64;
        for (i, &s) in list.iter().enumerate() {
            if let Some(&ahead) = list.get(i + crate::prefetch::COVER_SCAN_AHEAD) {
                covered.prefetch(ahead as usize);
            }
            gain += u64::from(!covered.get(s as usize));
        }
        gain
    };

    while (result.seeds.len() as u32) < k {
        if should_stop() {
            return None;
        }
        let Some(&(stale_gain, Reverse(node))) = heap.peek() else { break };
        if stale_gain == 0 {
            break;
        }
        heap.pop();
        if selected[node as usize] {
            continue;
        }
        // Recompute the true current gain.
        let gain = recount(node, &covered);
        if gain == stale_gain {
            // Fresh enough: gains are monotone non-increasing, so nothing
            // else in the heap can beat it; equal-gain entries with smaller
            // node ids would have been popped first (heap orders by
            // Reverse(node) on ties).
            result.seeds.push(node);
            result.marginal_gains.push(gain);
            result.covered += gain;
            selected[node as usize] = true;
            for &s in inverted.list(node) {
                covered.set(s as usize);
            }
        } else if pool.threads() <= 1 {
            heap.push((gain, Reverse(node)));
        } else {
            // Stale top: refresh a whole batch of potentially-stale keys in
            // parallel while we are at it. Only keys above the refreshed
            // top can shadow it, so refreshing them now saves one
            // pop-recount-push round trip each. The initiating node's
            // exact gain is already in hand — only the others recount.
            heap.push((gain, Reverse(node)));
            let mut batch: Vec<NodeId> = Vec::new();
            while batch.len() + 1 < REFRESH_BATCH {
                match heap.peek() {
                    Some(&(g, Reverse(n))) if g > gain => {
                        heap.pop();
                        if !selected[n as usize] {
                            batch.push(n);
                        }
                    }
                    _ => break,
                }
            }
            let work: usize = batch.iter().map(|&n| inverted.list(n).len()).sum();
            let fresh: Vec<u64> = if work < PARALLEL_REFRESH_MIN_WORK {
                batch.iter().map(|&n| recount(n, &covered)).collect()
            } else {
                let covered = &covered;
                pool.map_shards(batch.len(), |i| recount(batch[i], covered))
            };
            for (n, g) in batch.into_iter().zip(fresh) {
                heap.push((g, Reverse(n)));
            }
        }
    }
    Some(result)
}

/// Reference implementation: full recount every iteration.
pub fn greedy_max_cover_naive(sets: &[Vec<NodeId>], k: u32) -> MaxCoverResult {
    let inverted = invert(sets);
    let mut covered = vec![false; sets.len()];
    let num_nodes = inverted.keys().copied().max().map(|m| m as usize + 1).unwrap_or(0);
    let mut picked = vec![false; num_nodes];
    let mut result = MaxCoverResult { seeds: Vec::new(), marginal_gains: Vec::new(), covered: 0 };

    while (result.seeds.len() as u32) < k {
        let mut best: Option<(u64, NodeId)> = None;
        for (&node, list) in &inverted {
            if picked[node as usize] {
                continue;
            }
            let gain = list.iter().filter(|&&s| !covered[s as usize]).count() as u64;
            let better = match best {
                None => true,
                Some((bg, bn)) => gain > bg || (gain == bg && node < bn),
            };
            if better {
                best = Some((gain, node));
            }
        }
        match best {
            Some((gain, node)) if gain > 0 => {
                result.seeds.push(node);
                result.marginal_gains.push(gain);
                result.covered += gain;
                picked[node as usize] = true;
                for &s in &inverted[&node] {
                    covered[s as usize] = true;
                }
            }
            _ => break,
        }
    }
    result
}

/// Node → sorted list of set indices containing it. RR sets are sorted, so
/// duplicate members are adjacent; each set index is recorded once per node.
///
/// This is the Vec-of-Vec/HashMap *oracle* the flat
/// [`InvertedIndex`] is property-tested against; the hot paths never
/// call it.
pub fn invert(sets: &[Vec<NodeId>]) -> HashMap<NodeId, Vec<u32>> {
    let mut inverted: HashMap<NodeId, Vec<u32>> = HashMap::new();
    for (i, set) in sets.iter().enumerate() {
        for &node in set {
            let list = inverted.entry(node).or_default();
            if list.last() != Some(&(i as u32)) {
                list.push(i as u32);
            }
        }
    }
    inverted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(raw: &[&[u32]]) -> Vec<Vec<NodeId>> {
        raw.iter().map(|s| s.to_vec()).collect()
    }

    #[test]
    fn single_best_node() {
        let s = sets(&[&[1, 2], &[1], &[1, 3], &[4]]);
        let r = greedy_max_cover(&s, 1);
        assert_eq!(r.seeds, vec![1]);
        assert_eq!(r.covered, 3);
    }

    #[test]
    fn parallel_recount_matches_sequential() {
        // Random-ish overlapping instances force plenty of stale heap
        // entries, exercising the batch-refresh path; every thread count
        // must agree with the sequential oracle bit-for-bit.
        let mut state = 9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        // The dense final instance (per-node lists of several thousand
        // set ids) pushes batch refreshes past PARALLEL_REFRESH_MIN_WORK
        // so the pooled branch runs too.
        for (trial, &(num_sets, universe)) in
            [(300, 60), (400, 60), (600, 60), (800, 60), (60_000, 40)].iter().enumerate()
        {
            let instance: Vec<Vec<NodeId>> = (0..num_sets)
                .map(|_| {
                    let len = 1 + (next() % 7) as usize;
                    let mut set: Vec<u32> = (0..len).map(|_| next() % universe).collect();
                    set.sort_unstable();
                    set.dedup();
                    set
                })
                .collect();
            let sequential = greedy_max_cover(&instance, 25);
            assert_eq!(sequential, greedy_max_cover_naive(&instance, 25), "trial {trial}");
            for threads in [2usize, 4, 8] {
                let parallel = greedy_max_cover_with(&instance, 25, &ExecPool::new(Some(threads)));
                assert_eq!(sequential, parallel, "trial {trial} threads {threads}");
            }
        }
    }

    #[test]
    fn paper_example_2() {
        // Example 2: four RR sets {b,d,f}, {e}, {d,f}, {a,b,e} with nodes
        // mapped a=0..g=6. The paper's greedy selects {e, f}, covering all
        // four sets. Greedy is tie-break dependent here (b, d, e, f all
        // start with gain 2): our deterministic rule (smallest id on ties)
        // picks b = 1 covering {0, 3}, then d = 3 covering {2} — an equally
        // valid greedy execution. The assertions pin our determinism.
        let s = sets(&[&[1, 3, 5], &[4], &[3, 5], &[0, 1, 4]]);
        let r = greedy_max_cover(&s, 2);
        assert_eq!(r.seeds, vec![1, 3]);
        assert_eq!(r.covered, 3);
        assert_eq!(r, greedy_max_cover_naive(&s, 2));
        // The paper's choice indeed covers 4; verify it is at least as good
        // as ours only because of the tie-break, not an algorithmic bug:
        // both selections are maximal gain at each step.
        assert_eq!(r.marginal_gains[0], 2);
    }

    #[test]
    fn lazy_equals_naive_on_fixed_cases() {
        let cases = [
            sets(&[&[0, 1], &[1, 2], &[2, 0], &[3]]),
            sets(&[&[5], &[5], &[5], &[1, 2], &[2]]),
            sets(&[&[], &[7, 8], &[8], &[7]]),
            sets(&[]),
        ];
        for s in &cases {
            for k in 0..5 {
                assert_eq!(greedy_max_cover(s, k), greedy_max_cover_naive(s, k), "k={k} s={s:?}");
            }
        }
    }

    #[test]
    fn stops_at_zero_gain() {
        let s = sets(&[&[1], &[1]]);
        let r = greedy_max_cover(&s, 5);
        assert_eq!(r.seeds, vec![1]);
        assert_eq!(r.covered, 2);
        assert_eq!(r.marginal_gains, vec![2]);
    }

    #[test]
    fn gains_non_increasing() {
        let s = sets(&[&[0, 1], &[0], &[0], &[1], &[2], &[3, 2]]);
        let r = greedy_max_cover(&s, 4);
        assert!(r.marginal_gains.windows(2).all(|w| w[0] >= w[1]), "{:?}", r.marginal_gains);
        assert_eq!(r.covered, r.marginal_gains.iter().sum::<u64>());
    }

    #[test]
    fn empty_sets_and_zero_k() {
        assert_eq!(greedy_max_cover(&[], 3).seeds, Vec::<NodeId>::new());
        let s = sets(&[&[1]]);
        assert_eq!(greedy_max_cover(&s, 0).seeds, Vec::<NodeId>::new());
    }

    #[test]
    fn stop_hook_aborts_without_partial_results() {
        let s = sets(&[&[1, 2], &[1], &[1, 3], &[4]]);
        let inverted = InvertedIndex::from_sets(&s);
        let pool = ExecPool::sequential();
        // An immediately-firing stop aborts before any seed.
        assert!(greedy_max_cover_inverted_until(&inverted, 4, 3, &pool, &|| true).is_none());
        // A stop that fires after the first round aborts mid-run.
        let polls = std::sync::atomic::AtomicU32::new(0);
        let late = greedy_max_cover_inverted_until(&inverted, 4, 3, &pool, &|| {
            polls.fetch_add(1, std::sync::atomic::Ordering::Relaxed) >= 1
        });
        assert!(late.is_none());
        // A never-firing stop is exactly the plain run.
        let done = greedy_max_cover_inverted_until(&inverted, 4, 3, &pool, &|| false).unwrap();
        assert_eq!(done, greedy_max_cover_inverted_with(&inverted, 4, 3, &pool));
    }

    #[test]
    fn tie_break_prefers_smaller_id() {
        // Nodes 4 and 2 both cover two sets; 2 must win.
        let s = sets(&[&[4, 2], &[4, 2], &[9]]);
        let r = greedy_max_cover(&s, 1);
        assert_eq!(r.seeds, vec![2]);
        assert_eq!(greedy_max_cover_naive(&s, 1).seeds, vec![2]);
    }

    #[test]
    fn duplicate_members_within_set_count_once() {
        // A set listing a node twice must not double its gain.
        let s = vec![vec![1u32, 1, 2], vec![3]];
        let r = greedy_max_cover(&s, 1);
        // Node 1's gain is the number of *sets* covered: 1.
        assert_eq!(r.marginal_gains[0], 1);
    }
}
