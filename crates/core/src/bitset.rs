//! Minimal fixed-size bitset over `u64` words.
//!
//! The greedy coverage loops mark covered RR sets millions of times per
//! query; a `Vec<bool>` spends one byte per set and one cache line per 64
//! sets, while this bitset packs 512 sets per cache line. Only the two
//! operations the hot loops need are provided — no iteration, no resizing.

/// Fixed-capacity bitset, all bits initially clear.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Bitset with capacity for `len` bits, all clear.
    pub fn new(len: usize) -> Bitset {
        Bitset { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset addresses zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Hint that the word holding bit `i` will be probed soon.
    ///
    /// Advisory only (see [`crate::prefetch`]): out-of-range indices are
    /// ignored and results never change.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if let Some(word) = self.words.get(i >> 6) {
            crate::prefetch::prefetch_read(word);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Resize to `len` bits, all clear, reusing the word arena — the
    /// scratch-pool reset between queries.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut bits = Bitset::new(130);
        assert_eq!(bits.len(), 130);
        assert!(!bits.is_empty());
        for i in [0usize, 1, 63, 64, 127, 128, 129] {
            assert!(!bits.get(i));
            bits.set(i);
            assert!(bits.get(i));
        }
        assert_eq!(bits.count_ones(), 7);
        // Neighbours stay clear.
        assert!(!bits.get(2));
        assert!(!bits.get(65));
        assert!(!bits.get(126));
    }

    #[test]
    fn empty() {
        let bits = Bitset::new(0);
        assert!(bits.is_empty());
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn idempotent_set() {
        let mut bits = Bitset::new(10);
        bits.set(3);
        bits.set(3);
        assert_eq!(bits.count_ones(), 1);
    }
}
