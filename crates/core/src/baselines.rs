//! Classic influence-maximization baselines (§7 of the paper).
//!
//! The paper positions RIS/WRIS against the earlier line of work:
//!
//! * **Greedy with Monte-Carlo estimation** (Kempe et al. \[15\]) — the
//!   original `(1 − 1/e − ε)` algorithm, accelerated with the **CELF**
//!   lazy-evaluation trick of Leskovec et al. \[17\]: marginal gains are
//!   submodular, so a stale heap entry that recomputes to the top value
//!   is safe to take. Still `O(k · n · R)` in the worst case — the paper's
//!   "prohibitively long" baseline, included here both as a correctness
//!   oracle and to let benchmarks reproduce *why* RIS won.
//! * **Degree heuristics** (Chen et al. \[6\]) — `max-degree` and the
//!   smarter `degree-discount` (exact for IC with uniform `p`), fast but
//!   guarantee-free.
//!
//! All baselines optionally take the same per-user weight function as the
//! targeted problem, so they can be compared on KB-TIM queries too.

use kbtim_graph::NodeId;
use kbtim_propagation::spread::monte_carlo_weighted;
use kbtim_propagation::TriggeringModel;
use rand::RngCore;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a baseline seed selection.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// Selected seeds in selection order.
    pub seeds: Vec<NodeId>,
    /// Estimated (weighted) spread of the final seed set, by the method's
    /// own estimator — Monte-Carlo for CELF, undefined (0) for heuristics.
    pub estimated_spread: f64,
    /// Spread evaluations performed (the cost driver for CELF).
    pub evaluations: u64,
}

/// CELF: lazy greedy with Monte-Carlo marginal gains.
///
/// `rounds` Monte-Carlo simulations estimate each spread; candidates are
/// restricted to `candidates` (pass all nodes for the classic algorithm —
/// restricting to, say, users relevant to a query keeps runtimes sane on
/// larger graphs).
pub fn celf_greedy<M: TriggeringModel + ?Sized>(
    model: &M,
    candidates: &[NodeId],
    k: u32,
    rounds: u32,
    rng: &mut dyn RngCore,
    mut weight: impl FnMut(NodeId) -> f64,
) -> BaselineResult {
    let mut evaluations = 0u64;
    let mut spread_of = |seeds: &[NodeId], rng: &mut dyn RngCore, evals: &mut u64| -> f64 {
        *evals += 1;
        monte_carlo_weighted(model, seeds, rounds, rng, &mut weight)
    };

    // Initial pass: singleton gains. f64 keys via sortable bit tricks are
    // overkill here; an ordered pair of (gain scaled to u64, node) keeps
    // the heap deterministic. Gains are non-negative.
    let scale = |g: f64| -> u64 { (g.max(0.0) * 1e6) as u64 };
    let mut heap: BinaryHeap<(u64, Reverse<NodeId>)> = BinaryHeap::new();
    let mut gains: std::collections::HashMap<NodeId, f64> = std::collections::HashMap::new();
    for &v in candidates {
        let gain = spread_of(&[v], rng, &mut evaluations);
        gains.insert(v, gain);
        heap.push((scale(gain), Reverse(v)));
    }

    let mut seeds: Vec<NodeId> = Vec::new();
    let mut current_spread = 0.0f64;
    let mut fresh_for: std::collections::HashMap<NodeId, usize> =
        candidates.iter().map(|&v| (v, 0)).collect();

    while (seeds.len() as u32) < k {
        let Some((stale_key, Reverse(v))) = heap.pop() else { break };
        if seeds.contains(&v) {
            continue;
        }
        if fresh_for[&v] == seeds.len() {
            // Entry evaluated against the current seed set: accept.
            if stale_key == 0 {
                break;
            }
            seeds.push(v);
            // Re-anchor to a real evaluation rather than accumulating the
            // (noisy) marginal gains.
            current_spread = spread_of(&seeds, rng, &mut evaluations);
        } else {
            // Stale: recompute the marginal gain against the current set.
            let mut with_v: Vec<NodeId> = seeds.clone();
            with_v.push(v);
            let gain = (spread_of(&with_v, rng, &mut evaluations) - current_spread).max(0.0);
            gains.insert(v, gain);
            fresh_for.insert(v, seeds.len());
            heap.push((scale(gain), Reverse(v)));
        }
    }

    BaselineResult { seeds, estimated_spread: current_spread, evaluations }
}

/// Max-degree heuristic: the `k` nodes with the highest out-degree.
pub fn max_degree<M: TriggeringModel + ?Sized>(model: &M, k: u32) -> BaselineResult {
    let graph = model.graph();
    let mut nodes: Vec<NodeId> = graph.nodes().collect();
    nodes.sort_by_key(|&v| (Reverse(graph.out_degree(v)), v));
    nodes.truncate(k as usize);
    BaselineResult { seeds: nodes, estimated_spread: 0.0, evaluations: 0 }
}

/// Degree-discount heuristic (Chen et al., KDD'09).
///
/// After selecting a seed, each out-neighbour `v` discounts its effective
/// degree by `2·t_v + (d_v − t_v)·t_v·p`, where `t_v` counts already-
/// selected in-neighbours — exact for IC with uniform probability `p`,
/// a good cheap proxy otherwise.
pub fn degree_discount<M: TriggeringModel + ?Sized>(model: &M, k: u32, p: f64) -> BaselineResult {
    let graph = model.graph();
    let n = graph.num_nodes() as usize;
    if n == 0 {
        return BaselineResult { seeds: Vec::new(), estimated_spread: 0.0, evaluations: 0 };
    }
    let mut t = vec![0u32; n]; // selected in-neighbours
    let mut selected = vec![false; n];
    let mut heap: BinaryHeap<(u64, Reverse<NodeId>)> = BinaryHeap::new();
    let scale = |g: f64| -> u64 { (g.max(0.0) * 1e6) as u64 };
    let ddv = |v: NodeId, t: &[u32]| -> f64 {
        let d = graph.out_degree(v) as f64;
        let tv = t[v as usize] as f64;
        d - 2.0 * tv - (d - tv) * tv * p
    };
    let mut score = vec![0f64; n];
    for v in graph.nodes() {
        score[v as usize] = ddv(v, &t);
        heap.push((scale(score[v as usize]), Reverse(v)));
    }

    let mut seeds = Vec::new();
    while (seeds.len() as u32) < k {
        let Some((key, Reverse(v))) = heap.pop() else { break };
        if selected[v as usize] {
            continue;
        }
        if key != scale(score[v as usize]) {
            // Stale entry: push the refreshed score.
            heap.push((scale(score[v as usize]), Reverse(v)));
            continue;
        }
        selected[v as usize] = true;
        seeds.push(v);
        for &u in graph.out_neighbors(v) {
            if !selected[u as usize] {
                t[u as usize] += 1;
                score[u as usize] = ddv(u, &t);
                heap.push((scale(score[u as usize]), Reverse(u)));
            }
        }
    }
    BaselineResult { seeds, estimated_spread: 0.0, evaluations: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::SamplingConfig;
    use kbtim_graph::gen;
    use kbtim_propagation::model::IcModel;
    use kbtim_propagation::spread::{exact_spread, monte_carlo_spread};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn celf_finds_hub_on_star() {
        let g = gen::star(20);
        let model = IcModel::uniform(&g, 1.0);
        let candidates: Vec<u32> = g.nodes().collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let result = celf_greedy(&model, &candidates, 1, 200, &mut rng, |_| 1.0);
        assert_eq!(result.seeds, vec![0]);
        assert!((result.estimated_spread - 20.0).abs() < 1e-9);
    }

    #[test]
    fn celf_matches_exact_greedy_on_small_graph() {
        // On the paper's Figure-1 graph CELF must find the optimal pair
        // {e, g} for k = 2 (strictly optimal, greedy-reachable).
        let g = crate::paper_example::graph();
        let model = crate::paper_example::ic_model(&g);
        let candidates: Vec<u32> = g.nodes().collect();
        let mut rng = SmallRng::seed_from_u64(2);
        let result = celf_greedy(&model, &candidates, 2, 20_000, &mut rng, |_| 1.0);
        let mut seeds = result.seeds.clone();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![crate::paper_example::E, crate::paper_example::G]);
        let exact = exact_spread(&model, &result.seeds);
        assert!((result.estimated_spread - exact).abs() < 0.1);
    }

    #[test]
    fn celf_lazy_evaluations_bounded() {
        // CELF must evaluate far fewer sets than full greedy (k·n).
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::preferential_attachment(
            gen::PrefAttachConfig { num_nodes: 120, edges_per_node: 3, reciprocal_prob: 0.7 },
            &mut rng,
        );
        let model = IcModel::weighted_cascade(&g);
        let candidates: Vec<u32> = g.nodes().collect();
        let result = celf_greedy(&model, &candidates, 5, 200, &mut rng, |_| 1.0);
        assert_eq!(result.seeds.len(), 5);
        let full_greedy_cost = 5 * 120;
        assert!(
            result.evaluations < full_greedy_cost / 2,
            "CELF used {} evaluations vs naive {}",
            result.evaluations,
            full_greedy_cost
        );
    }

    #[test]
    fn weighted_celf_targets_relevant_users() {
        // Star where only leaf 5 matters: the hub reaches it with p = 1,
        // so hub and leaf 5 are the only sensible singletons.
        let g = gen::star(10);
        let model = IcModel::uniform(&g, 1.0);
        let candidates: Vec<u32> = g.nodes().collect();
        let mut rng = SmallRng::seed_from_u64(4);
        let result =
            celf_greedy(&model, &candidates, 1, 100, &mut rng, |v| if v == 5 { 1.0 } else { 0.0 });
        assert!(result.seeds == vec![0] || result.seeds == vec![5], "{:?}", result.seeds);
        assert!((result.estimated_spread - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_degree_on_star() {
        let g = gen::star(10);
        let model = IcModel::weighted_cascade(&g);
        let result = max_degree(&model, 3);
        assert_eq!(result.seeds[0], 0);
        assert_eq!(result.seeds.len(), 3);
    }

    #[test]
    fn degree_discount_spreads_seeds_apart() {
        // Two disjoint stars: plain max-degree would pick both hubs; so
        // must degree-discount — but within one star, after picking the
        // hub, its leaves are discounted below an untouched node.
        let mut edges = Vec::new();
        for leaf in 1..6u32 {
            edges.push((0, leaf)); // star A: hub 0
        }
        for leaf in 7..12u32 {
            edges.push((6, leaf)); // star B: hub 6
        }
        let g = kbtim_graph::Graph::from_edges(12, &edges);
        let model = IcModel::uniform(&g, 0.2);
        let result = degree_discount(&model, 2, 0.2);
        let mut seeds = result.seeds.clone();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![0, 6], "both hubs selected");
    }

    #[test]
    fn degree_discount_quality_close_to_celf_on_random_graph() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::preferential_attachment(
            gen::PrefAttachConfig { num_nodes: 200, edges_per_node: 3, reciprocal_prob: 0.8 },
            &mut rng,
        );
        let model = IcModel::weighted_cascade(&g);
        let dd = degree_discount(&model, 5, 0.1);
        let md = max_degree(&model, 5);
        let spread_dd = monte_carlo_spread(&model, &dd.seeds, 5_000, &mut rng);
        let spread_md = monte_carlo_spread(&model, &md.seeds, 5_000, &mut rng);
        // Degree discount should never be much worse than max degree.
        assert!(spread_dd > 0.85 * spread_md, "dd {spread_dd} vs md {spread_md}");
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = kbtim_graph::Graph::from_edges(0, &[]);
        let model = IcModel::uniform(&g, 0.5);
        assert!(degree_discount(&model, 3, 0.5).seeds.is_empty());
        assert!(max_degree(&model, 3).seeds.is_empty());
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(celf_greedy(&model, &[], 3, 10, &mut rng, |_| 1.0).seeds.is_empty());
    }

    /// The paper's efficiency story, in miniature: RIS-style sampling and
    /// CELF pick comparably good seeds, but CELF needs hundreds of MC
    /// evaluations to do it.
    #[test]
    fn celf_and_ris_agree_on_quality() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = gen::preferential_attachment(
            gen::PrefAttachConfig { num_nodes: 150, edges_per_node: 3, reciprocal_prob: 0.8 },
            &mut rng,
        );
        let model = IcModel::weighted_cascade(&g);
        let candidates: Vec<u32> = g.nodes().collect();
        let celf = celf_greedy(&model, &candidates, 5, 500, &mut rng, |_| 1.0);
        let config = SamplingConfig { theta_cap: Some(20_000), ..SamplingConfig::fast() };
        let ris = crate::ris::ris_query(&model, 5, &config, &mut rng);
        let spread_celf = monte_carlo_spread(&model, &celf.seeds, 10_000, &mut rng);
        let spread_ris = monte_carlo_spread(&model, &ris.seeds, 10_000, &mut rng);
        let rel = (spread_celf - spread_ris).abs() / spread_ris;
        assert!(rel < 0.05, "celf {spread_celf} vs ris {spread_ris}");
        assert!(celf.evaluations > 100, "CELF pays per-candidate MC costs");
    }
}
