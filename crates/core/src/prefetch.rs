//! Software prefetch hints for pointer-chasing hot loops.
//!
//! The CELF recount and the IRR NRA score refresh both walk an inverted
//! list and probe a coverage bitset at data-dependent positions — exactly
//! the access pattern hardware prefetchers cannot predict. Issuing an
//! explicit prefetch a fixed look-ahead distance down the list overlaps
//! the probe's cache miss with the current iteration's work.
//!
//! On non-x86-64 targets the hint compiles to nothing; a prefetch is
//! advisory, so the functions here are safe and can never affect results.

/// Hint that the cache line holding `data` will be read soon.
///
/// Compiles to `prefetcht0` on x86-64 and to nothing elsewhere. Purely
/// advisory: it cannot fault and never changes observable behaviour.
#[inline(always)]
pub fn prefetch_read<T>(data: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `data` is a valid reference and prefetch hints never fault;
    // the intrinsic has no observable side effects beyond cache state.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(data as *const T as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = data;
}

/// Look-ahead distance (in list elements) for the coverage-probe loops.
///
/// Far enough that the prefetched line arrives before the loop reaches
/// it on a memory-bound scan, near enough not to thrash L1 on short
/// lists. The value only affects speed, never results.
pub const COVER_SCAN_AHEAD: usize = 16;
