//! Estimating the unknown optimum `OPT` in the θ denominators.
//!
//! Every θ bound divides by an optimum nobody knows (`OPT^{Q.T}_{Q.k}`,
//! `OPT^w_1`, `OPT^w_K`). The paper "adopt\[s\] the weighted iterative
//! estimation method in \[21\]" (TIM); this module implements that idea in
//! its refined form: iteratively double the number of weighted RR samples,
//! run the greedy cover, and read off the unbiased coverage estimate
//!
//! ```text
//! est = covered / θ · W          (W = φ_Q, Σtf_w, or |V|)
//! ```
//!
//! which is (up to sampling noise) the expected influence of the greedy
//! seed set — a lower bound on `OPT`. Underestimating `OPT` only enlarges
//! θ, so convergence from below is the safe direction for the
//! `(1 − 1/e − ε)` guarantee. Iteration stops when the estimate is stable
//! to `opt_tolerance` with enough covered mass, or after `opt_max_rounds`.

use crate::alias::RootSampler;
use crate::maxcover::greedy_max_cover_batch;
use crate::theta::SamplingConfig;
use kbtim_exec::ExecPool;
use kbtim_propagation::{sample_batch, RrBatch, TriggeringModel};
use rand::RngCore;

/// Outcome of an OPT estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptEstimate {
    /// The estimated optimum, in the same units as `total_mass`.
    pub value: f64,
    /// RR sets sampled in the final round.
    pub samples_used: u64,
    /// Doubling rounds executed.
    pub rounds: u32,
}

/// Estimate `OPT_k` w.r.t. the weighted root distribution `roots` whose
/// weights sum to `total_mass`.
///
/// Returns a zero estimate when `total_mass` is 0 (no relevant user).
/// The caller RNG only seeds each doubling round's deterministic batch
/// (one `next_u64` per round), so the estimate is identical for every
/// `pool` thread count.
pub fn estimate_opt<M: TriggeringModel + ?Sized>(
    model: &M,
    roots: &RootSampler,
    total_mass: f64,
    k: u32,
    config: &SamplingConfig,
    pool: &ExecPool,
    rng: &mut dyn RngCore,
) -> OptEstimate {
    if total_mass <= 0.0 {
        return OptEstimate { value: 0.0, samples_used: 0, rounds: 0 };
    }
    let mut sets = RrBatch::new();
    let mut target = config.opt_initial_samples.max(16);
    let mut prev = f64::NAN;
    let mut last = OptEstimate { value: 0.0, samples_used: 0, rounds: 0 };

    for round in 1..=config.opt_max_rounds {
        if (sets.len() as u64) < target {
            let missing = (target - sets.len() as u64) as usize;
            let round_seed = rng.next_u64();
            let batch = sample_batch(model, missing, round_seed, pool, |rng| roots.sample(rng));
            if sets.is_empty() {
                sets = batch; // first round: take the arena, no copy
            } else {
                sets.append(&batch);
            }
        }
        let cover = greedy_max_cover_batch(&sets, k, pool);
        let est = cover.covered as f64 / sets.len() as f64 * total_mass;
        last = OptEstimate { value: est, samples_used: sets.len() as u64, rounds: round };

        // Converged: stable relative to the previous round and supported by
        // enough covered sets that the binomial noise is small.
        let stable =
            prev.is_finite() && (est - prev).abs() <= config.opt_tolerance * est.max(1e-12);
        if stable && cover.covered >= 32 {
            return last;
        }
        prev = est;
        target = target.saturating_mul(2);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_graph::gen;
    use kbtim_propagation::model::IcModel;
    use kbtim_propagation::spread::exact_spread;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_mass_short_circuits() {
        let g = gen::line(3);
        let model = IcModel::uniform(&g, 0.5);
        let roots = RootSampler::from_dense(&[1.0, 1.0, 1.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let est = estimate_opt(
            &model,
            &roots,
            0.0,
            2,
            &SamplingConfig::fast(),
            &ExecPool::sequential(),
            &mut rng,
        );
        assert_eq!(est.value, 0.0);
        assert_eq!(est.samples_used, 0);
    }

    #[test]
    fn estimates_near_true_opt_on_star() {
        // Star 0 → {1..9} with p = 1: OPT_1 = 10 (seed the hub).
        let g = gen::star(10);
        let model = IcModel::uniform(&g, 1.0);
        let roots = RootSampler::from_dense(&[1.0; 10]).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let est = estimate_opt(
            &model,
            &roots,
            10.0,
            1,
            &SamplingConfig::fast(),
            &ExecPool::sequential(),
            &mut rng,
        );
        let true_opt = exact_spread(&model, &[0]);
        assert_eq!(true_opt, 10.0);
        assert!((est.value - true_opt).abs() < 1.5, "estimate {} vs true {true_opt}", est.value);
    }

    #[test]
    fn estimate_is_a_sane_lower_bound_probabilistic_graph() {
        // Line 0→1→2→3 with p = 0.5: OPT_1 = E[I({0})] = 1.875.
        let g = gen::line(4);
        let model = IcModel::uniform(&g, 0.5);
        let roots = RootSampler::from_dense(&[1.0; 4]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let config = SamplingConfig {
            opt_initial_samples: 2048,
            opt_max_rounds: 8,
            ..SamplingConfig::fast()
        };
        let est = estimate_opt(&model, &roots, 4.0, 1, &config, &ExecPool::sequential(), &mut rng);
        let true_opt = exact_spread(&model, &[0]);
        assert!((true_opt - 1.875).abs() < 1e-12);
        // Greedy singleton coverage estimates E[I(best node)] ≈ OPT_1; must
        // land within generous sampling noise and never explode.
        assert!(est.value > 0.5 * true_opt && est.value < 1.5 * true_opt, "{}", est.value);
    }

    #[test]
    fn weighted_roots_shift_estimate() {
        // Same line graph, but roots concentrated on node 3 (the deepest):
        // OPT w.r.t. "only node 3 matters, weight 8" is p(0 ↝ 3) · 8 = 1
        // when seeding node 0... greedy actually seeds 3 itself: OPT = 8.
        let g = gen::line(4);
        let model = IcModel::uniform(&g, 0.5);
        let roots = RootSampler::from_dense(&[0.0, 0.0, 0.0, 1.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let est = estimate_opt(
            &model,
            &roots,
            8.0,
            1,
            &SamplingConfig::fast(),
            &ExecPool::sequential(),
            &mut rng,
        );
        // Every RR set contains root 3, so greedy covers 100 % → est = 8.
        assert_eq!(est.value, 8.0);
    }

    #[test]
    fn respects_max_rounds() {
        let g = gen::cycle(6);
        let model = IcModel::uniform(&g, 0.5);
        let roots = RootSampler::from_dense(&[1.0; 6]).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let config = SamplingConfig {
            opt_initial_samples: 16,
            opt_max_rounds: 3,
            opt_tolerance: 0.0, // never "stable"
            ..SamplingConfig::fast()
        };
        let est = estimate_opt(&model, &roots, 6.0, 2, &config, &ExecPool::sequential(), &mut rng);
        assert_eq!(est.rounds, 3);
        assert_eq!(est.samples_used, 64);
    }
}
