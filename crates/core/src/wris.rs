//! WRIS — weighted reverse influence sampling (§3.2).
//!
//! The paper's online solution to a KB-TIM query:
//!
//! 1. sample θ root vertices from `ps(v, Q) = φ(v, Q)/φ_Q` (Eqn 3),
//! 2. sample an RR set for each root,
//! 3. greedy maximum coverage picks `Q.k` seeds.
//!
//! By Lemma 1, `F_θ(S)/θ · φ_Q` is an unbiased estimator of `E[I^Q(S)]`;
//! Theorem 2's θ (Eqn 6) makes the result `(1 − 1/e − ε)`-approximate with
//! probability ≥ `1 − |V|⁻¹`. WRIS is also the evaluation baseline the
//! disk-based indexes are compared against (it *is* the state of the art
//! RIS [21, 2], adapted to targeting).

use crate::alias::RootSampler;
use crate::maxcover::greedy_max_cover_batch;
use crate::opt::estimate_opt;
use crate::theta::{wris_theta, SamplingConfig};
use kbtim_graph::NodeId;
use kbtim_propagation::{sample_batch, TriggeringModel};
use kbtim_topics::{Query, UserProfiles};
use rand::RngCore;

/// Result of a WRIS (or index-based) KB-TIM query.
#[derive(Debug, Clone, PartialEq)]
pub struct WrisResult {
    /// Selected seed users, in greedy order (≤ `Q.k`; shorter only when no
    /// further node covers any RR set).
    pub seeds: Vec<NodeId>,
    /// Marginal coverage of each seed.
    pub marginal_gains: Vec<u64>,
    /// RR sets covered by the seed set, `F_θ(S)`.
    pub coverage: u64,
    /// Number of RR sets sampled (θ).
    pub theta: u64,
    /// The OPT estimate used to size θ.
    pub opt_estimate: f64,
    /// Unbiased influence estimate `F_θ(S)/θ · φ_Q` (Lemma 1); 0 when the
    /// query has no relevant user.
    pub estimated_influence: f64,
}

impl WrisResult {
    fn empty() -> WrisResult {
        WrisResult {
            seeds: Vec::new(),
            marginal_gains: Vec::new(),
            coverage: 0,
            theta: 0,
            opt_estimate: 0.0,
            estimated_influence: 0.0,
        }
    }
}

/// Dense per-user relevance weights `φ(v, Q)`, assembled sparsely from the
/// per-topic inverted lists.
pub fn query_weights(profiles: &UserProfiles, query: &Query) -> Vec<f64> {
    let mut weights = vec![0f64; profiles.num_users() as usize];
    for &w in query.topics() {
        let idf = profiles.idf(w);
        let (users, tfs) = profiles.topic_vector(w);
        for (&u, &tf) in users.iter().zip(tfs.iter()) {
            weights[u as usize] += tf as f64 * idf;
        }
    }
    weights
}

/// Answer a KB-TIM query with online weighted sampling (WRIS).
///
/// Returns an empty result when no user is relevant to the query
/// (`φ_Q = 0`) — there is nothing to maximize.
///
/// Sampling and coverage run on `config.threads` workers; the caller RNG
/// is consumed identically for every thread count (one draw per batch
/// seed), so results are reproducible given `(query, config, rng seed)`
/// no matter the parallelism.
pub fn wris_query<M: TriggeringModel + ?Sized>(
    model: &M,
    profiles: &UserProfiles,
    query: &Query,
    config: &SamplingConfig,
    rng: &mut dyn RngCore,
) -> WrisResult {
    let graph = model.graph();
    assert_eq!(graph.num_nodes(), profiles.num_users(), "graph and profiles disagree on |V|");
    let phi_q = profiles.phi_q(query);
    let weights = query_weights(profiles, query);
    let Some(roots) = RootSampler::from_dense(&weights) else {
        return WrisResult::empty();
    };

    let pool = config.pool();
    let opt = estimate_opt(model, &roots, phi_q, query.k(), config, &pool, rng);
    let theta = wris_theta(graph.num_nodes() as u64, query.k(), phi_q, opt.value, config);

    let batch_seed = rng.next_u64();
    let sets = sample_batch(model, theta as usize, batch_seed, &pool, |rng| roots.sample(rng));

    let cover = greedy_max_cover_batch(&sets, query.k(), &pool);
    let estimated_influence =
        if theta == 0 { 0.0 } else { cover.covered as f64 / theta as f64 * phi_q };
    WrisResult {
        seeds: cover.seeds,
        marginal_gains: cover.marginal_gains,
        coverage: cover.covered,
        theta,
        opt_estimate: opt.value,
        estimated_influence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_graph::gen;
    use kbtim_propagation::model::IcModel;
    use kbtim_propagation::spread::monte_carlo_targeted;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Star graph, hub 0 with p = 1; only leaves are relevant. The best
    /// single seed is the hub even though the hub itself has zero
    /// relevance — the essence of *targeted* IM.
    #[test]
    fn hub_selected_despite_zero_relevance() {
        let g = gen::star(20);
        let model = IcModel::uniform(&g, 1.0);
        let entries: Vec<(u32, u32, f32)> = (1..20).map(|v| (v, 0, 1.0)).collect();
        let profiles = UserProfiles::from_entries(20, 1, &entries);
        let query = Query::new([0], 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let result = wris_query(&model, &profiles, &query, &SamplingConfig::fast(), &mut rng);
        assert_eq!(result.seeds, vec![0], "hub must be the seed");
        // Every RR set of a leaf contains the hub → full coverage.
        assert_eq!(result.coverage, result.theta);
        let expected = profiles.phi_q(&query);
        assert!((result.estimated_influence - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_query_mass_gives_empty_result() {
        let g = gen::line(5);
        let model = IcModel::uniform(&g, 0.5);
        // Topic 1 exists but nobody holds it.
        let profiles = UserProfiles::from_entries(5, 2, &[(0, 0, 1.0)]);
        let query = Query::new([1], 3);
        let mut rng = SmallRng::seed_from_u64(2);
        let result = wris_query(&model, &profiles, &query, &SamplingConfig::fast(), &mut rng);
        assert!(result.seeds.is_empty());
        assert_eq!(result.estimated_influence, 0.0);
    }

    #[test]
    fn estimator_is_unbiased_vs_monte_carlo() {
        // Random small graph + profiles: WRIS influence estimate must agree
        // with forward Monte-Carlo ground truth within sampling noise
        // (Lemma 1).
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::erdos_renyi(60, 200, &mut rng);
        let model = IcModel::weighted_cascade(&g);
        let mut entries = Vec::new();
        for v in 0..60u32 {
            if v % 2 == 0 {
                entries.push((v, 0u32, 0.5f32 + (v % 5) as f32 * 0.1));
            }
            if v % 3 == 0 {
                entries.push((v, 1u32, 0.7f32));
            }
        }
        let profiles = UserProfiles::from_entries(60, 2, &entries);
        let query = Query::new([0, 1], 5);
        let config = SamplingConfig { theta_cap: Some(40_000), ..SamplingConfig::fast() };
        let result = wris_query(&model, &profiles, &query, &config, &mut rng);
        assert!(!result.seeds.is_empty());
        let mc = monte_carlo_targeted(&model, &profiles, &query, &result.seeds, 40_000, &mut rng);
        let rel = (result.estimated_influence - mc).abs() / mc;
        assert!(rel < 0.1, "WRIS estimate {} vs MC {} (rel {rel})", result.estimated_influence, mc);
    }

    #[test]
    fn query_weights_sum_to_phi_q() {
        let profiles =
            UserProfiles::from_entries(4, 3, &[(0, 0, 0.3), (1, 0, 0.7), (1, 2, 0.3), (3, 2, 1.0)]);
        let query = Query::new([0, 2], 2);
        let weights = query_weights(&profiles, &query);
        let total: f64 = weights.iter().sum();
        assert!((total - profiles.phi_q(&query)).abs() < 1e-9);
        assert_eq!(weights[2], 0.0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::erdos_renyi(40, 160, &mut rng);
        let model = IcModel::weighted_cascade(&g);
        let entries: Vec<(u32, u32, f32)> = (0..40).map(|v| (v, 0u32, 1.0f32)).collect();
        let profiles = UserProfiles::from_entries(40, 1, &entries);
        let config = SamplingConfig { theta_cap: Some(5_000), ..SamplingConfig::fast() };
        let query = Query::new([0], 4);
        let mut rng_a = SmallRng::seed_from_u64(7);
        let r1 = wris_query(&model, &profiles, &query, &config, &mut rng_a);
        let mut rng_b = SmallRng::seed_from_u64(7);
        let r2 = wris_query(&model, &profiles, &query, &config, &mut rng_b);
        assert_eq!(r1, r2);
        assert!(!r1.seeds.is_empty());
    }
}
