//! Flat-arena data-path ablation: the invert + greedy stage on the old
//! `HashMap<NodeId, Vec<u32>>` shape vs the CSR [`InvertedIndex`] +
//! bitset CELF, plus end-to-end index query latency on the flat path.
//!
//! The RR batch comes from the same 100k-node news-family graph (and the
//! same seed) as `a6_parallel_sampler` / `BENCH_parallel.json`, so the
//! numbers compose: a6 measures sampling throughput, a7 measures what
//! happens to those sets afterwards. Both pipelines are asserted
//! bit-identical up front — this bench isolates pure data-layout speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kbtim_bench::legacy;
use kbtim_core::invindex::InvertedIndex;
use kbtim_core::maxcover::greedy_max_cover_inverted;
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_exec::ExecPool;
use kbtim_index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, MemoryIndex, ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_propagation::sample_batch;
use kbtim_storage::{IoStats, TempDir};
use kbtim_topics::Query;
use rand::Rng;
use std::time::Duration;

const BATCH: usize = 20_000;
const K: u32 = 50;

fn bench_invert_greedy(c: &mut Criterion) {
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(100_000)
        .num_topics(16)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);
    let num_nodes = data.graph.num_nodes();
    let batch =
        sample_batch(&model, BATCH, 42, &ExecPool::new(Some(1)), |rng| rng.gen_range(0..num_nodes));
    let sets_vec = batch.to_vecs(); // legacy shape, materialized outside timing

    // Both pipelines must agree bit-for-bit before we time anything.
    let flat = greedy_max_cover_inverted(&InvertedIndex::from_batch(&batch), BATCH as u64, K);
    assert_eq!(flat, legacy::invert_and_cover_hashmap(&sets_vec, K), "pipelines diverged");

    let mut group = c.benchmark_group("a7_flat_datapath");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_with_input(BenchmarkId::new("invert_greedy_hashmap", BATCH), &sets_vec, |b, s| {
        b.iter(|| legacy::invert_and_cover_hashmap(s, K))
    });
    group.bench_with_input(BenchmarkId::new("invert_greedy_flat", BATCH), &batch, |b, batch| {
        b.iter(|| greedy_max_cover_inverted(&InvertedIndex::from_batch(batch), BATCH as u64, K))
    });
    group.finish();
}

fn bench_query_latency(c: &mut Criterion) {
    // Smaller index so the one-off build stays cheap (the committed
    // BENCH_flat.json numbers come from the full 100k-user build in the
    // `flat_baseline` binary).
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(10_000).num_topics(8).seed(6).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(4_000),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: 1,
        seed: 42,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("a7-idx").unwrap();
    IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().with_threads(Some(1));
    let memory = MemoryIndex::load(&index).unwrap();
    let query = Query::new([0, 1, 2], 10);

    let mut group = c.benchmark_group("a7_flat_datapath");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function(BenchmarkId::new("query_rr", "k10_w3"), |b| {
        b.iter(|| index.query_rr(&query).unwrap())
    });
    group.bench_function(BenchmarkId::new("query_irr", "k10_w3"), |b| {
        b.iter(|| index.query_irr(&query).unwrap())
    });
    group.bench_function(BenchmarkId::new("memory_query", "k10_w3"), |b| {
        b.iter(|| memory.query(&query))
    });
    group.finish();
}

criterion_group!(benches, bench_invert_greedy, bench_query_latency);
criterion_main!(benches);
