//! Table 3 micro-bench: index build time under θ̂_w (Eqn 8) vs θ_w
//! (Eqn 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbtim_bench::{ExpContext, ExpScale};
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::DatasetFamily;
use kbtim_index::{IndexBuildConfig, IndexBuilder, IndexVariant, ThetaMode};
use kbtim_propagation::model::IcModel;
use kbtim_storage::TempDir;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(ExpScale::bench(), "target/kbtim-bench-fixtures");
    let data = ctx.dataset(DatasetFamily::News, 800);
    let model = IcModel::weighted_cascade(&data.graph);

    let mut group = c.benchmark_group("t3_theta_build");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, mode) in
        [("theta_hat_eqn8", ThetaMode::Conservative), ("theta_eqn10", ThetaMode::Compact)]
    {
        group.bench_with_input(BenchmarkId::new("build", label), &mode, |b, &mode| {
            b.iter(|| {
                let dir = TempDir::new("t3-bench").unwrap();
                let config = IndexBuildConfig {
                    sampling: SamplingConfig {
                        theta_cap: Some(3_000),
                        opt_initial_samples: 64,
                        opt_max_rounds: 5,
                        ..SamplingConfig::fast()
                    },
                    theta_mode: mode,
                    variant: IndexVariant::Irr { partition_size: 100 },
                    ..IndexBuildConfig::default()
                };
                IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
