//! Serving-tier ablation: the same queries against the same on-disk
//! index served through each [`ServingMode`] backend.
//!
//! `file` pays a positioned read + copy + allocation per block;
//! `resident` and `mmap` hand out borrowed views of already-resident
//! pages (verified once), so the difference isolates the serving tier —
//! decode work and answers are identical by construction (asserted up
//! front, and property-tested in `tests/serving_equiv.rs`). The
//! committed `BENCH_serving.json` numbers come from the full 100k-user
//! build in the `serving_baseline` binary; this bench keeps a smaller
//! index so CI's `--test` smoke stays cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, MemoryIndex, ServingMode, ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_storage::{IoStats, TempDir};
use kbtim_topics::Query;
use std::time::Duration;

fn bench_serving_modes(c: &mut Criterion) {
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(10_000).num_topics(8).seed(6).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(4_000),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: 1,
        seed: 42,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("a8-idx").unwrap();
    IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
    let query = Query::new([0, 1, 2], 10);

    let baseline = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().with_threads(Some(1));
    let expected = baseline.query_rr(&query).unwrap();

    let mut group = c.benchmark_group("a8_serving");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for mode in [ServingMode::File, ServingMode::Resident, ServingMode::Mmap] {
        let index =
            KbtimIndex::open_with(dir.path(), IoStats::new(), mode).unwrap().with_threads(Some(1));
        // Backends must be unobservable in answers before we time them.
        assert_eq!(index.query_rr(&query).unwrap().seeds, expected.seeds, "{mode} diverged");

        group.bench_function(BenchmarkId::new("query_rr", mode.name()), |b| {
            b.iter(|| index.query_rr(&query).unwrap())
        });
        group.bench_function(BenchmarkId::new("query_irr", mode.name()), |b| {
            b.iter(|| index.query_irr(&query).unwrap())
        });
        group.bench_function(BenchmarkId::new("memory_load", mode.name()), |b| {
            b.iter(|| MemoryIndex::load(&index).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving_modes);
criterion_main!(benches);
