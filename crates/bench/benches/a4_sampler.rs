//! Ablation: O(1) alias-table sampling vs O(log n) cumulative search for
//! the weighted root distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kbtim_core::alias::{AliasTable, CumulativeSampler};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(13);
    let mut group = c.benchmark_group("a4_sampler");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    for &n in &[1_000usize, 100_000] {
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let alias = AliasTable::new(&weights).unwrap();
        let cumulative = CumulativeSampler::new(&weights).unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("alias", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| alias.sample(&mut rng))
        });
        group.bench_with_input(BenchmarkId::new("cumulative", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| cumulative.sample(&mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
