//! Ablation: lazy (CELF-style) vs naive greedy maximum coverage — the
//! paper's §5.2 motivation for lazy evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbtim_core::maxcover::{greedy_max_cover, greedy_max_cover_naive};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn synth_sets(num_sets: usize, universe: u32, rng: &mut SmallRng) -> Vec<Vec<u32>> {
    (0..num_sets)
        .map(|_| {
            let len = rng.gen_range(1..8);
            let mut set: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
            set.sort_unstable();
            set.dedup();
            set
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let mut group = c.benchmark_group("a1_maxcover");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &num_sets in &[2_000usize, 10_000] {
        let sets = synth_sets(num_sets, 1_000, &mut rng);
        group.bench_with_input(BenchmarkId::new("lazy", num_sets), &sets, |b, sets| {
            b.iter(|| greedy_max_cover(sets, 30))
        });
        group.bench_with_input(BenchmarkId::new("naive", num_sets), &sets, |b, sets| {
            b.iter(|| greedy_max_cover_naive(sets, 30))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
