//! Figure 5 micro-bench: query latency vs `Q.k` for RR, IRR and WRIS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbtim_bench::{ExpContext, ExpScale};
use kbtim_codec::Codec;
use kbtim_core::wris::wris_query;
use kbtim_datagen::DatasetFamily;
use kbtim_index::{IndexVariant, ThetaMode};
use kbtim_propagation::model::IcModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(ExpScale::bench(), "target/kbtim-bench-fixtures");
    let data = ctx.dataset(DatasetFamily::News, 2_000);
    let build = ctx.build_or_load(
        &data,
        Codec::Packed,
        IndexVariant::Irr { partition_size: 100 },
        ThetaMode::Compact,
        None,
    );
    let index = ctx.open(&build);
    let model = IcModel::weighted_cascade(&data.graph);
    let wris_config = ctx.wris_sampling();

    let mut group = c.benchmark_group("f5_vary_k");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for &k in &ctx.scale.k_values {
        let queries = ctx.queries(&data, ctx.scale.default_keywords, k);
        group.bench_with_input(BenchmarkId::new("query_rr", k), &k, |b, _| {
            b.iter(|| index.query_rr(&queries[0]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("query_irr", k), &k, |b, _| {
            b.iter(|| index.query_irr(&queries[0]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("wris", k), &k, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| wris_query(&model, &data.profiles, &queries[0], &wris_config, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
