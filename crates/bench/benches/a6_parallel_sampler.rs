//! Parallel-sampler ablation: RR-set batch generation throughput at
//! 1/2/4/8 worker threads on a ≥100k-node generated graph.
//!
//! The batch sampler's output is bit-identical across thread counts
//! (asserted once up front), so this bench isolates pure scheduling
//! speed-up. Expect ≈linear scaling up to the machine's core count and a
//! flat line beyond it (for example, on a single-core host every row
//! reports the same throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_exec::ExecPool;
use kbtim_propagation::model::IcModel;
use kbtim_propagation::sample_batch;
use rand::Rng;
use std::time::Duration;

const BATCH: usize = 20_000;

fn bench(c: &mut Criterion) {
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(100_000)
        .num_topics(16)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);
    let num_nodes = data.graph.num_nodes();

    // Determinism guard: thread count must not change the sampled sets.
    let reference =
        sample_batch(&model, 2_000, 42, &ExecPool::new(Some(1)), |rng| rng.gen_range(0..num_nodes));
    for threads in [2usize, 8] {
        let check = sample_batch(&model, 2_000, 42, &ExecPool::new(Some(threads)), |rng| {
            rng.gen_range(0..num_nodes)
        });
        assert_eq!(reference, check, "threads={threads} diverged from sequential");
    }

    let mut group = c.benchmark_group("a6_parallel_sampler");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.throughput(Throughput::Elements(BATCH as u64));
    for &threads in &[1usize, 2, 4, 8] {
        let pool = ExecPool::new(Some(threads));
        group.bench_with_input(BenchmarkId::new("rr_batch", threads), &threads, |b, _| {
            b.iter(|| sample_batch(&model, BATCH, 42, &pool, |rng| rng.gen_range(0..num_nodes)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
