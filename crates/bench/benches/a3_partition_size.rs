//! Ablation: IRR partition size δ (the paper fixes δ = 100).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbtim_bench::{ExpContext, ExpScale};
use kbtim_codec::Codec;
use kbtim_datagen::DatasetFamily;
use kbtim_index::{IndexVariant, ThetaMode};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(ExpScale::bench(), "target/kbtim-bench-fixtures");
    let data = ctx.dataset(DatasetFamily::News, 2_000);
    let mut group = c.benchmark_group("a3_partition_size");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for delta in [10u32, 100, 1_000] {
        let build = ctx.build_or_load(
            &data,
            Codec::Packed,
            IndexVariant::Irr { partition_size: delta },
            ThetaMode::Compact,
            None,
        );
        let index = ctx.open(&build);
        let queries = ctx.queries(&data, ctx.scale.default_keywords, ctx.scale.default_k);
        group.bench_with_input(BenchmarkId::new("query_irr", delta), &delta, |b, _| {
            b.iter(|| index.query_irr(&queries[0]).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
