//! Figure 6 micro-bench: query latency vs keyword count `|Q.T|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbtim_bench::{ExpContext, ExpScale};
use kbtim_codec::Codec;
use kbtim_datagen::DatasetFamily;
use kbtim_index::{IndexVariant, ThetaMode};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(ExpScale::bench(), "target/kbtim-bench-fixtures");
    let data = ctx.dataset(DatasetFamily::News, 2_000);
    let build = ctx.build_or_load(
        &data,
        Codec::Packed,
        IndexVariant::Irr { partition_size: 100 },
        ThetaMode::Compact,
        None,
    );
    let index = ctx.open(&build);

    let mut group = c.benchmark_group("f6_vary_keywords");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for &len in &ctx.scale.keyword_counts {
        let queries = ctx.queries(&data, len, ctx.scale.default_k);
        group.bench_with_input(BenchmarkId::new("query_rr", len), &len, |b, _| {
            b.iter(|| index.query_rr(&queries[0]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("query_irr", len), &len, |b, _| {
            b.iter(|| index.query_irr(&queries[0]).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
