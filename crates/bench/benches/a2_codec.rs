//! Ablation: posting-list codecs — raw u32 vs delta + bit-packing
//! (the paper's FastPFOR choice, Table 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kbtim_codec::Codec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn sorted_list(len: usize, gap: u32, rng: &mut SmallRng) -> Vec<u32> {
    let mut acc = 0u32;
    (0..len)
        .map(|_| {
            acc += rng.gen_range(1..=gap);
            acc
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(9);
    let list = sorted_list(100_000, 16, &mut rng);
    let mut group = c.benchmark_group("a2_codec");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(list.len() as u64));
    for (label, codec) in [("raw", Codec::Raw), ("packed", Codec::Packed)] {
        group.bench_with_input(BenchmarkId::new("encode", label), &codec, |b, codec| {
            b.iter(|| {
                let mut out = Vec::new();
                codec.encode_sorted(&list, &mut out);
                out
            })
        });
        let mut encoded = Vec::new();
        codec.encode_sorted(&list, &mut encoded);
        group.bench_with_input(BenchmarkId::new("decode", label), &codec, |b, codec| {
            b.iter(|| {
                let mut out = Vec::new();
                codec.decode_sorted(&encoded, &mut out).unwrap();
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
