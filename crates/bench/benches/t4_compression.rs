//! Table 4 micro-bench: build time with the Raw vs Packed list codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbtim_bench::{ExpContext, ExpScale};
use kbtim_codec::Codec;
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::DatasetFamily;
use kbtim_index::{IndexBuildConfig, IndexBuilder, IndexVariant};
use kbtim_propagation::model::IcModel;
use kbtim_storage::TempDir;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(ExpScale::bench(), "target/kbtim-bench-fixtures");
    let data = ctx.dataset(DatasetFamily::News, 1_500);
    let model = IcModel::weighted_cascade(&data.graph);

    let mut group = c.benchmark_group("t4_compression");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, codec) in [("raw", Codec::Raw), ("packed", Codec::Packed)] {
        group.bench_with_input(BenchmarkId::new("build", label), &codec, |b, &codec| {
            b.iter(|| {
                let dir = TempDir::new("t4-bench").unwrap();
                let config = IndexBuildConfig {
                    sampling: SamplingConfig {
                        theta_cap: Some(3_000),
                        opt_initial_samples: 64,
                        opt_max_rounds: 5,
                        ..SamplingConfig::fast()
                    },
                    codec,
                    variant: IndexVariant::Irr { partition_size: 100 },
                    ..IndexBuildConfig::default()
                };
                IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
