//! Ablation: RR-set sampling cost under IC vs LT (§6.6 model generality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbtim_bench::{ExpContext, ExpScale};
use kbtim_datagen::DatasetFamily;
use kbtim_propagation::model::{IcModel, LtModel};
use kbtim_propagation::{RrSampler, TriggeringModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(ExpScale::bench(), "target/kbtim-bench-fixtures");
    let data = ctx.dataset(DatasetFamily::Twitter, 2_000);
    let graph = &data.graph;
    let ic = IcModel::weighted_cascade(graph);
    let mut lt_rng = SmallRng::seed_from_u64(3);
    let lt = LtModel::random_weights(graph, &mut lt_rng);

    let mut group = c.benchmark_group("a5_models");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    let run = |b: &mut criterion::Bencher, model: &dyn TriggeringModel| {
        let mut sampler = RrSampler::new(graph.num_nodes());
        let mut rng = SmallRng::seed_from_u64(7);
        let mut out = Vec::new();
        b.iter(|| {
            let root = rng.gen_range(0..graph.num_nodes());
            sampler.sample_into(model, root, &mut rng, &mut out);
            out.len()
        })
    };
    group.bench_function(BenchmarkId::new("rr_sample", "IC"), |b| run(b, &ic));
    group.bench_function(BenchmarkId::new("rr_sample", "LT"), |b| run(b, &lt));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
