//! Record a machine-readable baseline for the sharded scatter-gather
//! query path.
//!
//! One news-family dataset is built into four index layouts — S ∈
//! {1, 2, 4, 8} user-range shards, identical sampling otherwise — and
//! the same query mix runs against each. Two things are measured and
//! one is enforced:
//!
//! * **enforced**: every answer from every shard count is bit-identical
//!   to the flat (S = 1) oracle — seeds, marginal gains, coverage and
//!   θ^Q. The determinism contract runs inside the bench itself.
//! * **measured**: closed-loop qps per shard count (the per-shard
//!   decode fans out on the index's worker pool, so extra shards buy
//!   wall-clock only when cores exist — flat on a 1-core CI host, see
//!   `docs/BENCHMARKS.md`), and the on-disk footprint per layout (the
//!   sharded layouts pay the manifest + per-shard catalogs).
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin shard_baseline [--smoke] [OUT.json]
//! ```
//!
//! `--smoke` shrinks the dataset and round count for CI (and skips
//! writing the JSON unless a path is given explicitly).

use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, ServingMode, ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_storage::{IoStats, TempDir};
use kbtim_topics::Query;
use std::time::Instant;

const SEED: u64 = 42;
const TOPICS: u32 = 16;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    users: u32,
    theta_cap: u64,
    /// Closed-loop iterations of the query mix in the timed section.
    rounds: usize,
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = Some(other.to_string()),
        }
    }
    let config = if smoke {
        Config { users: 2_000, theta_cap: 800, rounds: 5 }
    } else {
        Config { users: 100_000, theta_cap: 4_000, rounds: 40 }
    };
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("generating news-family dataset ({} users, {TOPICS} topics)...", config.users);
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(config.users)
        .num_topics(TOPICS)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);

    // Same query mix as serving_baseline, through both disk algorithms.
    let mix: Vec<(Query, &str)> =
        [(vec![0u32, 1], 10u32), (vec![2, 3, 4], 10), (vec![0, 5, 9, 12], 25)]
            .into_iter()
            .flat_map(|(topics, k)| {
                [("rr"), ("irr")].into_iter().map(move |algo| (Query::new(topics.clone(), k), algo))
            })
            .collect();

    let mut oracle: Option<Vec<kbtim_index::QueryOutcome>> = None;
    let mut rows = Vec::new();
    for shards in SHARD_COUNTS {
        eprintln!("building index with {shards} shard(s)...");
        let build_config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(config.theta_cap),
                opt_initial_samples: 128,
                opt_max_rounds: 6,
                ..SamplingConfig::fast()
            },
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 100 },
            threads: host_threads,
            seed: SEED,
            shards,
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new(&format!("shard-baseline-{shards}")).unwrap();
        let started = Instant::now();
        let report =
            IndexBuilder::new(&model, &data.profiles, build_config).build(dir.path()).unwrap();
        let build_secs = started.elapsed().as_secs_f64();

        let index = KbtimIndex::open_with(dir.path(), IoStats::new(), ServingMode::Mmap)
            .unwrap()
            .with_threads(Some(host_threads));
        assert_eq!(index.num_shards(), shards);
        let disk_bytes = index.disk_bytes().unwrap();
        assert_eq!(disk_bytes, report.total_bytes, "disk accounting must match the build report");

        let run = |(query, algo): &(Query, &str)| match *algo {
            "rr" => index.query_rr(query).unwrap(),
            _ => index.query_irr(query).unwrap(),
        };

        // Determinism gate: every shard count answers exactly like the
        // flat oracle before any timing happens.
        let answers: Vec<_> = mix.iter().map(run).collect();
        match &oracle {
            None => oracle = Some(answers),
            Some(want) => {
                for (i, (got, want)) in answers.iter().zip(want).enumerate() {
                    assert_eq!(got.seeds, want.seeds, "S={shards} diverged on request {i}");
                    assert_eq!(got.marginal_gains, want.marginal_gains, "S={shards} req {i}");
                    assert_eq!(got.coverage, want.coverage, "S={shards} req {i}");
                    assert_eq!(got.stats.theta_q, want.stats.theta_q, "S={shards} req {i}");
                }
            }
        }

        let total = config.rounds * mix.len();
        let started = Instant::now();
        for _ in 0..config.rounds {
            for req in &mix {
                std::hint::black_box(run(req));
            }
        }
        let secs = started.elapsed().as_secs_f64();
        let qps = total as f64 / secs;
        eprintln!(
            "S={shards}: {total} queries in {secs:.2}s = {qps:.0} qps \
             ({:.1} MiB on disk, built in {build_secs:.1}s)",
            disk_bytes as f64 / (1024.0 * 1024.0)
        );
        rows.push(format!(
            r#"    "{shards}": {{ "qps": {qps:.1}, "disk_bytes": {disk_bytes}, "build_secs": {build_secs:.2} }}"#
        ));
    }

    if smoke && out_path.is_none() {
        eprintln!("smoke run: all shard counts bit-identical to flat; no JSON written");
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_shard.json".to_string());
    let json = format!(
        r#"{{
  "bench": "sharded_scatter_gather",
  "methodology": "docs/BENCHMARKS.md (incl. the 1-core-CI caveat: per-shard decode parallelism is flat here, the equality gate is the enforced result)",
  "graph": {{ "family": "news", "nodes": {nodes}, "edges": {edges} }},
  "seed": {SEED},
  "host_available_parallelism": {host_threads},
  "index": {{ "users": {users}, "topics": {TOPICS}, "theta_cap": {theta_cap}, "variant": "irr", "partition_size": 100 }},
  "serving_mode": "mmap",
  "per_query_threads": {host_threads},
  "request_mix": "k=10 w=2, k=10 w=3, k=25 w=4, each via rr and irr ({rounds} closed-loop rounds)",
  "comparable_to": "BENCH_serving.json (same graph, sampling config, query shapes)",
  "answers_bit_identical_to_flat": true,
  "shard_counts": {{
{rows}
  }}
}}
"#,
        nodes = data.graph.num_nodes(),
        edges = data.graph.num_edges(),
        users = config.users,
        theta_cap = config.theta_cap,
        rounds = config.rounds,
        rows = rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
