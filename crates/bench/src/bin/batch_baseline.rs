//! Record a machine-readable baseline for the cross-request batch
//! planner.
//!
//! Same 100k-node news-family graph and index configuration as
//! `concurrent_baseline` / `BENCH_concurrent.json`, so the numbers
//! compose: that baseline froze the PR-4 per-request serving path
//! (identical-request coalescing only); this one measures what the
//! batch planner adds on top — *different* requests with overlapping
//! keyword sets sharing one keyword decode per batch. Methodology,
//! caveats and regeneration commands: `docs/BENCHMARKS.md`.
//!
//! A closed-loop load generator runs 1 / 2 / 4 / 8 client threads over
//! a mix of 30 **distinct** requests (5 overlapping topic sets × 3 seed
//! counts × rr/irr) against one shared index, twice: through a plain
//! [`QueryEngine`] (the PR-4 per-request path) and through one with a
//! [`BATCH_WINDOW_US`]-microsecond batch admission window. Every answer on both paths is
//! asserted bit-identical to the serial oracle — the determinism
//! contract is enforced in the bench itself, not just in tests.
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin batch_baseline [--smoke] [OUT.json]
//! ```
//!
//! `--smoke` shrinks the dataset and round count for CI (and skips
//! writing the JSON unless a path is given explicitly).

use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_index::{
    Algo, EngineRequest, IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, PageCache,
    QueryEngine, ServingMode, ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_storage::{IoStats, TempDir};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const TOPICS: u32 = 16;
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH_WINDOW_US: u64 = 150;

struct Config {
    users: u32,
    theta_cap: u64,
    /// Closed-loop iterations of the request mix per client thread.
    rounds_per_client: usize,
}

/// Closed-loop run over `clients` threads against `engine`; client
/// `tid` walks its own `mixes[tid]` (every request in the whole matrix
/// is distinct, so identical-request coalescing can never help either
/// path — only keyword overlap can). Every answer is asserted equal to
/// its serial oracle. Returns queries/sec.
fn drive(
    engine: &Arc<QueryEngine>,
    mixes: &[Vec<EngineRequest>],
    expected: &[Vec<Vec<u32>>],
    clients: usize,
    rounds: usize,
) -> f64 {
    let barrier = Barrier::new(clients);
    let total_requests = clients * rounds * mixes[0].len();
    let started = Instant::now();
    std::thread::scope(|scope| {
        let joins: Vec<_> = (0..clients)
            .map(|tid| {
                let engine = Arc::clone(engine);
                let mix = &mixes[tid];
                let expected = &expected[tid];
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for round in 0..rounds {
                        for i in 0..mix.len() {
                            // Rotate each client's walk so concurrent
                            // clients sit at *different* topic sets at
                            // any instant — batches group partially, as
                            // real advertiser traffic would.
                            let at = (i + tid * 3 + round) % mix.len();
                            let outcome = engine.query(&mix[at]).unwrap();
                            assert_eq!(
                                outcome.seeds, expected[at],
                                "client {tid} diverged from serial on request {at}"
                            );
                        }
                    }
                })
            })
            .collect();
        for join in joins {
            join.join().expect("client thread panicked");
        }
    });
    total_requests as f64 / started.elapsed().as_secs_f64()
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = Some(other.to_string()),
        }
    }
    let config = if smoke {
        Config { users: 2_000, theta_cap: 800, rounds_per_client: 4 }
    } else {
        Config { users: 100_000, theta_cap: 4_000, rounds_per_client: 30 }
    };
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("generating news-family dataset ({} users, {TOPICS} topics)...", config.users);
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(config.users)
        .num_topics(TOPICS)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);

    eprintln!("building IRR index...");
    let build_config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(config.theta_cap),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: host_threads,
        seed: SEED,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("batch-baseline-idx").unwrap();
    let report = IndexBuilder::new(&model, &data.profiles, build_config).build(dir.path()).unwrap();
    eprintln!(
        "index built: Σθ_w = {}, {:.1} MiB, {:.1}s",
        report.total_theta,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed.as_secs_f64()
    );

    // The server configuration (as in concurrent_baseline): mmap pages
    // through the process-wide cache, per-query fan-out pinned to 1 so
    // the client threads are the parallelism. One shared index, two
    // engines: the PR-4 per-request path and the batch planner.
    let mut index =
        KbtimIndex::open_shared(dir.path(), IoStats::new(), ServingMode::Mmap, PageCache::global())
            .unwrap();
    index.set_threads(Some(1));
    let index = Arc::new(index);
    let plain = Arc::new(QueryEngine::new(Arc::clone(&index)));
    let batched = Arc::new(
        QueryEngine::new(index).with_batch_window(Some(Duration::from_micros(BATCH_WINDOW_US))),
    );

    // Per-client request mixes over 4 distinct keywords: overlapping
    // topic sets × seed counts × both disk algorithms, with each
    // client's seed counts offset by its id. Every request in the whole
    // 8×30 matrix is distinct, so the per-request baseline gets nothing
    // from identical-request coalescing — exactly the "different
    // same-keyword queries" regime the planner targets (clients share
    // keywords, not requests).
    let topic_sets: [&[u32]; 5] = [&[0, 1], &[0, 1, 2], &[1, 2], &[2, 3], &[0, 3]];
    let max_clients = *CLIENT_COUNTS.iter().max().unwrap();
    let mixes: Vec<Vec<EngineRequest>> = (0..max_clients)
        .map(|tid| {
            topic_sets
                .iter()
                .flat_map(|&topics| {
                    [5u32, 15, 25].into_iter().flat_map(move |k| {
                        [Algo::Rr, Algo::Irr].into_iter().map(move |algo| EngineRequest {
                            topics: topics.to_vec(),
                            k: k + tid as u32,
                            algo,
                        })
                    })
                })
                .collect()
        })
        .collect();

    // Serial oracle: answers recorded once (for the whole matrix), then
    // a timed single-thread closed loop over the per-request path.
    let expected: Vec<Vec<Vec<u32>>> = mixes
        .iter()
        .map(|mix| mix.iter().map(|req| plain.execute(req).unwrap().seeds.clone()).collect())
        .collect();
    let serial_requests = config.rounds_per_client * mixes[0].len();
    let started = Instant::now();
    for round in 0..config.rounds_per_client {
        for (req, want) in mixes[0].iter().zip(&expected[0]) {
            let outcome = plain.execute(req).unwrap();
            assert_eq!(&outcome.seeds, want, "serial loop diverged at round {round}");
        }
    }
    let serial_qps = serial_requests as f64 / started.elapsed().as_secs_f64();
    eprintln!("serial oracle: {serial_qps:.0} qps");

    let mut rows = Vec::new();
    let mut speedup_8 = 0.0;
    for clients in CLIENT_COUNTS {
        let plain_qps = drive(&plain, &mixes, &expected, clients, config.rounds_per_client);
        let batched_qps = drive(&batched, &mixes, &expected, clients, config.rounds_per_client);
        let speedup = batched_qps / plain_qps;
        if clients == 1 {
            // The adaptive admission window: a solo leader drains its
            // singleton batch immediately instead of waiting the window
            // out, so an unloaded server pays nothing for enabling
            // batching. (Before the adaptive gate this ratio sat at
            // ~0.66x — every solo request ate the full window.)
            assert!(
                speedup > 0.8,
                "1-client batched/unbatched ratio {speedup:.3} — the admission window \
                 must cost a solo client nothing"
            );
        }
        if clients == 8 {
            speedup_8 = speedup;
        }
        eprintln!(
            "{clients} client(s): per-request {plain_qps:.0} qps, batched {batched_qps:.0} qps \
             ({speedup:.2}x)"
        );
        rows.push(format!(
            r#"    "{clients}": {{ "per_request_qps": {plain_qps:.1}, "batched_qps": {batched_qps:.1}, "speedup_batched_vs_per_request": {speedup:.3} }}"#,
        ));
    }
    // Deterministic sharing gate. Under the adaptive admission window a
    // single-CPU host can serialize the closed-loop clients completely —
    // every request a solo leader draining a singleton batch, zero
    // sharing — so scheduler luck must not decide whether the planner's
    // contract is checked. Hold admission, queue six distinct
    // same-keyword requests, then release and lead them as one batch:
    // the shared decode (and the shared max-k greedy) must show in the
    // books, and every answer must still match its serial oracle.
    let shared_before = batched.keyword_decodes_shared();
    let greedy_before = batched.greedy_shared();
    batched.hold_admission(true);
    std::thread::scope(|scope| {
        let gate = &mixes[0][..6];
        let joins: Vec<_> = gate
            .iter()
            .map(|req| {
                let engine = Arc::clone(&batched);
                scope.spawn(move || engine.query(req).unwrap())
            })
            .collect();
        while batched.pending_admission() < gate.len() {
            std::thread::yield_now();
        }
        batched.hold_admission(false);
        let extra = batched.query(&gate[0]).unwrap();
        assert_eq!(extra.seeds, expected[0][0], "held-batch leader diverged from serial");
        for (join, want) in joins.into_iter().zip(&expected[0]) {
            assert_eq!(&join.join().unwrap().seeds, want, "held-batch answer diverged");
        }
    });
    assert!(
        batched.keyword_decodes_shared() > shared_before,
        "a held same-keyword batch must share keyword decodes"
    );
    assert!(
        batched.greedy_shared() > greedy_before,
        "a held same-keyword batch must share its max-k greedy run"
    );
    eprintln!(
        "planner books: {} batches over {} requests, {} keyword-set merges, \
         {} keyword decodes performed, {} shared, {} greedy runs shared",
        batched.batches(),
        batched.batched_requests(),
        batched.merged_groups(),
        batched.keywords_decoded(),
        batched.keyword_decodes_shared(),
        batched.greedy_shared(),
    );

    if smoke && out_path.is_none() {
        eprintln!("smoke run: all answers bit-identical to serial; no JSON written");
        return;
    }
    if !smoke && speedup_8 < 1.5 {
        eprintln!("WARNING: 8-client batched speedup {speedup_8:.2}x below the 1.5x target");
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_batch.json".to_string());
    let json = format!(
        r#"{{
  "bench": "batch_planner",
  "methodology": "docs/BENCHMARKS.md",
  "graph": {{ "family": "news", "nodes": {nodes}, "edges": {edges} }},
  "seed": {SEED},
  "host_available_parallelism": {host_threads},
  "index": {{ "users": {users}, "topics": {TOPICS}, "theta_cap": {theta_cap}, "variant": "irr", "partition_size": 100, "total_theta": {total_theta} }},
  "serving_mode": "mmap (process-wide page cache)",
  "per_query_threads": 1,
  "batch_window_us": {BATCH_WINDOW_US},
  "request_mix": "30 distinct requests per client: 5 overlapping topic sets x k in (5,15,25)+client_id x rr/irr ({rounds} closed-loop rounds per client; no request repeats across clients, so coalescing never helps either path)",
  "comparable_to": "BENCH_concurrent.json (same graph, index config; per_request path = that bench's engine)",
  "answers_bit_identical_to_serial": true,
  "planner_books": {{ "batches": {batches}, "batched_requests": {batched_requests}, "merged_groups": {merged_groups}, "keywords_decoded": {kw_decoded}, "keyword_decodes_shared": {kw_shared} }},
  "serial_qps": {serial_qps:.1},
  "clients": {{
{rows}
  }}
}}
"#,
        nodes = data.graph.num_nodes(),
        edges = data.graph.num_edges(),
        users = config.users,
        theta_cap = config.theta_cap,
        total_theta = report.total_theta,
        rounds = config.rounds_per_client,
        batches = batched.batches(),
        batched_requests = batched.batched_requests(),
        merged_groups = batched.merged_groups(),
        kw_decoded = batched.keywords_decoded(),
        kw_shared = batched.keyword_decodes_shared(),
        rows = rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
