//! Record a machine-readable baseline for the concurrent serving
//! runtime.
//!
//! Same 100k-node news-family graph, index configuration and query mix
//! as `serving_baseline` / `BENCH_serving.json`, so the numbers compose:
//! that baseline froze single-caller query latency per backend; this one
//! measures **aggregate throughput under concurrent clients**. A
//! closed-loop load generator runs 1 / 2 / 4 / 8 client threads against
//! one shared [`QueryEngine`] (mmap backend through the process-wide
//! page cache, per-query fan-out pinned to 1 so client concurrency *is*
//! the parallelism) and compares against a serial one-thread loop over
//! the same request sequence.
//!
//! Every concurrent answer is checked bit-identical to the serial
//! oracle's — the determinism contract is enforced in the bench itself,
//! not just in tests. On a 1-core host the scaling is flat by hardware;
//! the equality checks still run.
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin concurrent_baseline [--smoke] [OUT.json]
//! ```
//!
//! `--smoke` shrinks the dataset and round count for CI (and skips
//! writing the JSON unless a path is given explicitly).

use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_index::{
    Algo, EngineRequest, IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, PageCache,
    QueryEngine, ServingMode, ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_storage::{IoStats, TempDir};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const SEED: u64 = 42;
const TOPICS: u32 = 16;
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    users: u32,
    theta_cap: u64,
    /// Closed-loop iterations of the request mix per client thread.
    rounds_per_client: usize,
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = Some(other.to_string()),
        }
    }
    let config = if smoke {
        Config { users: 2_000, theta_cap: 800, rounds_per_client: 5 }
    } else {
        Config { users: 100_000, theta_cap: 4_000, rounds_per_client: 40 }
    };
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("generating news-family dataset ({} users, {TOPICS} topics)...", config.users);
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(config.users)
        .num_topics(TOPICS)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);

    eprintln!("building IRR index...");
    let build_config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(config.theta_cap),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: host_threads,
        seed: SEED,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("concurrent-baseline-idx").unwrap();
    let report = IndexBuilder::new(&model, &data.profiles, build_config).build(dir.path()).unwrap();
    eprintln!(
        "index built: Σθ_w = {}, {:.1} MiB, {:.1}s",
        report.total_theta,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed.as_secs_f64()
    );

    // The server configuration: mmap pages shared through the
    // process-wide cache, per-query fan-out pinned to 1 worker so the
    // client threads are the parallelism (the `kbtim serve` default).
    let mut index =
        KbtimIndex::open_shared(dir.path(), IoStats::new(), ServingMode::Mmap, PageCache::global())
            .unwrap();
    index.set_threads(Some(1));
    let engine = Arc::new(QueryEngine::new(Arc::new(index)));

    // Same query mix as serving_baseline, each shape through both disk
    // algorithms.
    let mix: Vec<EngineRequest> =
        [(vec![0u32, 1], 10u32), (vec![2, 3, 4], 10), (vec![0, 5, 9, 12], 25)]
            .into_iter()
            .flat_map(|(topics, k)| {
                [Algo::Rr, Algo::Irr].into_iter().map(move |algo| EngineRequest {
                    topics: topics.clone(),
                    k,
                    algo,
                })
            })
            .collect();

    // Serial oracle: answers recorded once, then a timed single-thread
    // closed loop (bypassing coalescing — the "before" this PR measures
    // against).
    let expected: Vec<_> =
        mix.iter().map(|req| engine.execute(req).unwrap().seeds.clone()).collect();
    let serial_requests = config.rounds_per_client * mix.len();
    let started = Instant::now();
    for round in 0..config.rounds_per_client {
        for (req, want) in mix.iter().zip(&expected) {
            let outcome = engine.execute(req).unwrap();
            assert_eq!(&outcome.seeds, want, "serial loop diverged at round {round}");
        }
    }
    let serial_secs = started.elapsed().as_secs_f64();
    let serial_qps = serial_requests as f64 / serial_secs;
    eprintln!("serial: {serial_requests} requests in {serial_secs:.2}s = {serial_qps:.0} qps");

    let mut rows = Vec::new();
    for clients in CLIENT_COUNTS {
        let barrier = Barrier::new(clients);
        let total_requests = clients * config.rounds_per_client * mix.len();
        let started = Instant::now();
        std::thread::scope(|scope| {
            let joins: Vec<_> = (0..clients)
                .map(|tid| {
                    let engine = Arc::clone(&engine);
                    let mix = &mix;
                    let expected = &expected;
                    let barrier = &barrier;
                    let rounds = config.rounds_per_client;
                    scope.spawn(move || {
                        barrier.wait();
                        for round in 0..rounds {
                            for i in 0..mix.len() {
                                // Rotate per thread: clients hit different
                                // requests at any instant, as real
                                // advertisers would.
                                let at = (i + tid + round) % mix.len();
                                let outcome = engine.query(&mix[at]).unwrap();
                                assert_eq!(
                                    outcome.seeds, expected[at],
                                    "client {tid} diverged from serial on request {at}"
                                );
                            }
                        }
                    })
                })
                .collect();
            for join in joins {
                join.join().expect("client thread panicked");
            }
        });
        let secs = started.elapsed().as_secs_f64();
        let qps = total_requests as f64 / secs;
        eprintln!(
            "{clients} client(s): {total_requests} requests in {secs:.2}s = {qps:.0} qps \
             ({:.2}x serial)",
            qps / serial_qps
        );
        rows.push(format!(
            r#"    "{clients}": {{ "qps": {qps:.1}, "speedup_vs_serial": {:.3} }}"#,
            qps / serial_qps
        ));
    }
    eprintln!("engine totals: {} executed, {} coalesced", engine.executed(), engine.coalesced());

    if smoke && out_path.is_none() {
        eprintln!("smoke run: all answers bit-identical to serial; no JSON written");
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_concurrent.json".to_string());
    let json = format!(
        r#"{{
  "bench": "concurrent_serving",
  "methodology": "docs/BENCHMARKS.md (incl. the 1-core-CI caveat: hardware scaling is flat here, coalescing is the measured effect)",
  "graph": {{ "family": "news", "nodes": {nodes}, "edges": {edges} }},
  "seed": {SEED},
  "host_available_parallelism": {host_threads},
  "index": {{ "users": {users}, "topics": {TOPICS}, "theta_cap": {theta_cap}, "variant": "irr", "partition_size": 100, "total_theta": {total_theta} }},
  "serving_mode": "mmap (process-wide page cache)",
  "per_query_threads": 1,
  "request_mix": "k=10 w=2, k=10 w=3, k=25 w=4, each via rr and irr ({rounds} closed-loop rounds per client)",
  "comparable_to": "BENCH_serving.json (same graph, index config, query shapes)",
  "answers_bit_identical_to_serial": true,
  "requests_coalesced": {coalesced},
  "serial_qps": {serial_qps:.1},
  "concurrent_clients": {{
{rows}
  }}
}}
"#,
        nodes = data.graph.num_nodes(),
        edges = data.graph.num_edges(),
        users = config.users,
        theta_cap = config.theta_cap,
        total_theta = report.total_theta,
        rounds = config.rounds_per_client,
        coalesced = engine.coalesced(),
        rows = rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
