//! Record a machine-readable baseline for the mutable delta tier:
//! **what does sustained ingest cost the query path?**
//!
//! One committed answer (`BENCH_mutate.json`), three phases on one
//! server configuration (mmap pages through the process-wide cache,
//! the delta tier attached, requests through the full line-protocol
//! front end):
//!
//! 1. **Static baseline** — closed-loop query clients against the
//!    attached-but-idle tier: the cost of *having* the delta layer.
//! 2. **Sustained ingest** — the same query clients while a writer
//!    drives mutation verbs (`set_topic_weight` / `ingest_user` /
//!    `ingest_edge`) through the protocol, with periodic `flush` ops
//!    compacting into new segment generations mid-storm. Query p50/p99
//!    *during* ingest is the headline number — it prices snapshot
//!    publication and compaction against the read path.
//! 3. **Verification** — after the storm, `DeltaIndex::verify` rebuilds
//!    the union from scratch and structurally compares catalogs: the
//!    served state must equal a clean build of the same content, or
//!    the numbers above priced the wrong system.
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin mutate_baseline [--smoke] [OUT.json]
//! ```
//!
//! `--smoke` shrinks the dataset and window for CI (and skips writing
//! the JSON unless a path is given explicitly).

use kbtim::serve::{handle_line_ctx, Router, ServeCtx};
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_index::{
    DeltaIndex, IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, PageCache, QueryEngine,
    ServingMode, ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_storage::{IoStats, TempDir};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const TOPICS: u32 = 8;
const QUERY_CLIENTS: usize = 4;
const QUERIES: [&str; 4] = [
    r#"{"id":1,"topics":[0,1],"k":10,"algo":"rr"}"#,
    r#"{"id":2,"topics":[0,1],"k":10,"algo":"irr"}"#,
    r#"{"id":3,"topics":[2,3,4],"k":10,"algo":"auto"}"#,
    r#"{"id":4,"topics":[1,5,7],"k":25,"algo":"rr"}"#,
];

struct Config {
    users: u32,
    theta_cap: u64,
    /// Wall-clock length of each measured phase.
    window: Duration,
    /// Journaled mutations between protocol `flush` ops: compaction
    /// runs *during* the measured window, not just after it.
    flush_every: u64,
}

struct PhaseRow {
    label: &'static str,
    served: u64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = Some(other.to_string()),
        }
    }
    let config = if smoke {
        Config {
            users: 2_000,
            theta_cap: 600,
            window: Duration::from_millis(1_200),
            flush_every: 100,
        }
    } else {
        Config { users: 20_000, theta_cap: 2_000, window: Duration::from_secs(8), flush_every: 100 }
    };
    kbtim_fault::reset();
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("generating news-family dataset ({} users, {TOPICS} topics)...", config.users);
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(config.users)
        .num_topics(TOPICS)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);

    eprintln!("building IRR index...");
    let build_config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(config.theta_cap),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: host_threads,
        seed: SEED,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("mutate-baseline-idx").unwrap();
    let report = IndexBuilder::new(&model, &data.profiles, build_config).build(dir.path()).unwrap();
    eprintln!(
        "index built: Σθ_w = {}, {:.1} MiB, {:.1}s",
        report.total_theta,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed.as_secs_f64()
    );

    // The server configuration with the delta tier attached. The tier
    // re-samples with the build's own sampling config — the same
    // requirement `kbtim serve --data` enforces through its flags.
    let mut index =
        KbtimIndex::open_shared(dir.path(), IoStats::new(), ServingMode::Mmap, PageCache::global())
            .unwrap();
    index.set_threads(Some(1));
    let index = Arc::new(index);
    let delta = Arc::new(
        DeltaIndex::attach(Arc::clone(&index), &data.graph, &data.profiles, build_config).unwrap(),
    );
    let engine = Arc::new(QueryEngine::new(Arc::clone(&index)).with_delta(Arc::clone(&delta)));
    let router = Arc::new(Router::single(engine));

    // ---- Phase 1: queries against the idle tier. ---------------------
    let quiet = run_phase(&router, "static", config.window, None);
    eprintln!(
        "static: {} served, {:.0} qps, p50 {:.2} ms, p99 {:.2} ms",
        quiet.served, quiet.qps, quiet.p50_ms, quiet.p99_ms
    );

    // ---- Phase 2: the same queries during sustained ingest. ----------
    let writer = WriterPlan {
        base_users: config.users,
        flush_every: config.flush_every,
        applied: AtomicU64::new(0),
        flushes: AtomicU64::new(0),
    };
    let ingest = run_phase(&router, "during_ingest", config.window, Some(&writer));
    let stats = delta.stats();
    eprintln!(
        "during ingest: {} served, {:.0} qps, p50 {:.2} ms, p99 {:.2} ms",
        ingest.served, ingest.qps, ingest.p50_ms, ingest.p99_ms
    );
    eprintln!(
        "writer: {} mutations ({:.0}/s), {} flushes → segment generation {}, \
         mutation generation {}",
        writer.applied.load(Ordering::Relaxed),
        writer.applied.load(Ordering::Relaxed) as f64 / config.window.as_secs_f64(),
        writer.flushes.load(Ordering::Relaxed),
        stats.flushed_generation,
        stats.generation,
    );
    assert!(writer.applied.load(Ordering::Relaxed) > 0, "the writer never got a mutation in");

    // ---- Phase 3: the served union must equal a from-scratch build. --
    eprintln!("verifying base ∪ delta against a from-scratch rebuild...");
    delta.verify().expect("post-storm union must verify structurally");

    if smoke && out_path.is_none() {
        eprintln!(
            "smoke run: p99 {:.2} ms static → {:.2} ms during ingest, union verified; \
             no JSON written",
            quiet.p99_ms, ingest.p99_ms
        );
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_mutate.json".to_string());
    let json = format!(
        r#"{{
  "bench": "mutable_delta_tier",
  "methodology": "docs/BENCHMARKS.md and docs/OPERATIONS.md (closed-loop query clients; the ingest phase runs a concurrent protocol writer with periodic flush ops; latencies are successful queries only)",
  "graph": {{ "family": "news", "nodes": {nodes}, "edges": {edges} }},
  "seed": {SEED},
  "host_available_parallelism": {host_threads},
  "index": {{ "users": {users}, "topics": {TOPICS}, "theta_cap": {theta_cap}, "variant": "irr", "partition_size": 100, "total_theta": {total_theta} }},
  "serving_mode": "mmap (process-wide page cache), per_query_threads 1, delta tier attached",
  "query_clients": {QUERY_CLIENTS},
  "window_seconds": {window_secs:.1},
  "static": {static_json},
  "during_ingest": {ingest_json},
  "writer": {{ "mutations": {applied}, "mutations_per_sec": {mps:.1}, "flush_every": {flush_every}, "flushes": {flushes}, "final_segment_generation": {seg_gen}, "final_mutation_generation": {mut_gen} }},
  "union_verified_against_rebuild": true
}}
"#,
        nodes = data.graph.num_nodes(),
        edges = data.graph.num_edges(),
        users = config.users,
        theta_cap = config.theta_cap,
        total_theta = report.total_theta,
        window_secs = config.window.as_secs_f64(),
        static_json = phase_json(&quiet),
        ingest_json = phase_json(&ingest),
        applied = writer.applied.load(Ordering::Relaxed),
        mps = writer.applied.load(Ordering::Relaxed) as f64 / config.window.as_secs_f64(),
        flush_every = config.flush_every,
        flushes = writer.flushes.load(Ordering::Relaxed),
        seg_gen = stats.flushed_generation,
        mut_gen = stats.generation,
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}

struct WriterPlan {
    base_users: u32,
    flush_every: u64,
    /// Mutations acked (everything except `flush` ops).
    applied: AtomicU64,
    /// `flush` ops acked.
    flushes: AtomicU64,
}

impl WriterPlan {
    /// The i-th mutation line of the sustained stream: mostly profile
    /// weight updates (the high-rate verb), salted with user and edge
    /// ingests (which dirty every keyword), and a `flush` op every
    /// `flush_every` mutations so compaction lands inside the window.
    fn line(&self, i: u64) -> String {
        if i > 0 && i.is_multiple_of(self.flush_every) {
            return r#"{"op":"flush"}"#.to_string();
        }
        let user = i % self.base_users as u64;
        let topic = i % TOPICS as u64;
        match i % 25 {
            7 => r#"{"op":"ingest_user"}"#.to_string(),
            16 => format!(
                r#"{{"op":"ingest_edge","from":{user},"to":{}}}"#,
                (i * 7) % self.base_users as u64
            ),
            _ => format!(
                r#"{{"op":"set_topic_weight","user":{user},"topic":{topic},"weight":{:.2}}}"#,
                0.05 + (i % 19) as f64 / 20.0
            ),
        }
    }
}

// Counters live on the plan so `main` can read them after the phase.
impl WriterPlan {
    fn run(&self, router: &Arc<Router>, ctx: &Arc<ServeCtx>, stop: &AtomicBool) {
        let mut i = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let line = self.line(i);
            let response = handle_line_ctx(router, ctx, &line);
            if line.contains("\"flush\"") {
                self.flushes.fetch_add(1, Ordering::Relaxed);
            } else {
                self.applied.fetch_add(1, Ordering::Relaxed);
            }
            assert!(
                response.contains("\"generation\""),
                "writer got an error response for {line}: {response}"
            );
            i += 1;
        }
    }
}

/// Closed-loop query clients for one wall-clock window, optionally
/// with the protocol writer running alongside them.
fn run_phase(
    router: &Arc<Router>,
    label: &'static str,
    window: Duration,
    writer: Option<&WriterPlan>,
) -> PhaseRow {
    let ctx = Arc::new(ServeCtx::unlimited());
    let latencies = Mutex::new(Vec::new());
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(QUERY_CLIENTS + usize::from(writer.is_some()));
    std::thread::scope(|scope| {
        if let Some(plan) = writer {
            let router = Arc::clone(router);
            let ctx = Arc::clone(&ctx);
            let (stop, barrier) = (&stop, &barrier);
            scope.spawn(move || {
                barrier.wait();
                plan.run(&router, &ctx, stop);
            });
        }
        for tid in 0..QUERY_CLIENTS {
            let router = Arc::clone(router);
            let ctx = Arc::clone(&ctx);
            let latencies = &latencies;
            let (stop, barrier) = (&stop, &barrier);
            scope.spawn(move || {
                let mut mine = Vec::new();
                barrier.wait();
                let until = Instant::now() + window;
                let mut at = tid;
                while Instant::now() < until {
                    let line = QUERIES[at % QUERIES.len()];
                    at += 1;
                    let t0 = Instant::now();
                    let response = handle_line_ctx(&router, &ctx, line);
                    mine.push(t0.elapsed().as_secs_f64() * 1e3);
                    assert!(
                        response.contains("\"seeds\"") && response.contains("\"generation\""),
                        "{label}: unexpected response {response}"
                    );
                }
                stop.store(true, Ordering::Relaxed);
                latencies.lock().unwrap().append(&mut mine);
            });
        }
    });
    let mut latencies = latencies.into_inner().unwrap();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PhaseRow {
        label,
        served: latencies.len() as u64,
        qps: latencies.len() as f64 / window.as_secs_f64(),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    }
}

fn phase_json(row: &PhaseRow) -> String {
    format!(
        r#"{{ "label": "{}", "served": {}, "qps": {:.1}, "p50_ms": {:.3}, "p99_ms": {:.3} }}"#,
        row.label, row.served, row.qps, row.p50_ms, row.p99_ms
    )
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let at = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[at]
}
