//! Record a machine-readable baseline for the hardened serving runtime.
//!
//! Two questions, one committed answer (`BENCH_robust.json`):
//!
//! 1. **What does overload control buy?** A closed-loop storm of 8
//!    client threads drives the serving front-end
//!    ([`kbtim::serve::handle_line_ctx`]) at 2× the admitted
//!    concurrency, once with the bounded queue (`--max-queue 4`
//!    semantics: excess requests shed as `overloaded`) and once with
//!    shedding disabled. Goodput and the latency distribution of the
//!    *successful* answers are recorded for both: shedding keeps p99
//!    near the uncontended service time, unbounded admission multiplies
//!    it by the queue depth.
//! 2. **What do disarmed failpoints cost?** The registry's fast path is
//!    one atomic load; this bench measures it directly (a tight probe
//!    loop), counts how many evaluations a real query performs (every
//!    point armed as counting `noop`), and **asserts** the implied
//!    end-to-end overhead stays under 2% — the number the failpoint
//!    crate's docs promise.
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin robust_baseline [--smoke] [OUT.json]
//! ```
//!
//! `--smoke` shrinks the dataset and storm duration for CI (and skips
//! writing the JSON unless a path is given explicitly). Answers are
//! spot-checked bit-identical to a fault-free serial oracle throughout.

use kbtim::serve::{handle_line, handle_line_ctx, Json, Router, ServeCtx};
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, PageCache, QueryEngine, ServingMode,
    ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_storage::{IoStats, TempDir};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const TOPICS: u32 = 16;
/// Offered concurrency of the storm…
const OFFERED_CLIENTS: usize = 8;
/// …against this many admitted slots: 2× overload.
const ADMITTED: usize = 4;
/// Max disarmed overhead, as promised by the `kbtim-fault` docs.
const MAX_OVERHEAD_PCT: f64 = 2.0;

/// The request mix (same shapes as `concurrent_baseline`, as protocol
/// lines: the storm exercises the full front-end, parse included).
const LINES: [&str; 6] = [
    r#"{"id":1,"topics":[0,1],"k":10,"algo":"rr"}"#,
    r#"{"id":2,"topics":[0,1],"k":10,"algo":"irr"}"#,
    r#"{"id":3,"topics":[2,3,4],"k":10,"algo":"rr"}"#,
    r#"{"id":4,"topics":[2,3,4],"k":10,"algo":"irr"}"#,
    r#"{"id":5,"topics":[0,5,9,12],"k":25,"algo":"rr"}"#,
    r#"{"id":6,"topics":[0,5,9,12],"k":25,"algo":"irr"}"#,
];

struct Config {
    users: u32,
    theta_cap: u64,
    /// Wall-clock length of each overload scenario.
    storm: Duration,
    /// Iterations of the tight disarmed-probe loop.
    probes: u64,
    /// Closed-loop rounds of the mix for the uncontended baseline.
    baseline_rounds: usize,
}

struct StormRow {
    label: &'static str,
    max_queue: String,
    served: u64,
    shed: u64,
    goodput_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = Some(other.to_string()),
        }
    }
    let config = if smoke {
        Config {
            users: 2_000,
            theta_cap: 600,
            storm: Duration::from_millis(1_200),
            probes: 2_000_000,
            baseline_rounds: 20,
        }
    } else {
        Config {
            users: 20_000,
            theta_cap: 2_000,
            storm: Duration::from_secs(8),
            probes: 20_000_000,
            baseline_rounds: 100,
        }
    };
    // This bench measures the *disarmed* runtime: drop anything
    // KBTIM_FAILPOINTS armed at startup.
    kbtim_fault::reset();
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("generating news-family dataset ({} users, {TOPICS} topics)...", config.users);
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(config.users)
        .num_topics(TOPICS)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);

    eprintln!("building IRR index...");
    let build_config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(config.theta_cap),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: host_threads,
        seed: SEED,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("robust-baseline-idx").unwrap();
    let report = IndexBuilder::new(&model, &data.profiles, build_config).build(dir.path()).unwrap();
    eprintln!(
        "index built: Σθ_w = {}, {:.1} MiB, {:.1}s",
        report.total_theta,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed.as_secs_f64()
    );

    // The server configuration: mmap pages through the process-wide
    // cache, per-query fan-out pinned to 1 (the `kbtim serve` default).
    let mut index =
        KbtimIndex::open_shared(dir.path(), IoStats::new(), ServingMode::Mmap, PageCache::global())
            .unwrap();
    index.set_threads(Some(1));
    let router = Arc::new(Router::single(Arc::new(QueryEngine::new(Arc::new(index)))));

    // Fault-free oracle: line → seeds. Every success below, storm or
    // not, must reproduce these bit-identically.
    let oracle: HashMap<&str, Json> = LINES
        .iter()
        .map(|&line| {
            let response = handle_line(&router, line);
            (line, seeds_of(&response).unwrap_or_else(|| panic!("oracle for {line}: {response}")))
        })
        .collect();

    // ---- Uncontended baseline: one client, closed loop. --------------
    let solo = ServeCtx::unlimited();
    let mut solo_lat = Vec::with_capacity(config.baseline_rounds * LINES.len());
    let started = Instant::now();
    for _ in 0..config.baseline_rounds {
        for line in LINES {
            let t0 = Instant::now();
            let response = handle_line_ctx(&router, &solo, line);
            solo_lat.push(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(seeds_of(&response).as_ref(), Some(&oracle[line]));
        }
    }
    let solo_secs = started.elapsed().as_secs_f64();
    let solo_qps = solo_lat.len() as f64 / solo_secs;
    solo_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (solo_p50, solo_p99) = (percentile(&solo_lat, 0.50), percentile(&solo_lat, 0.99));
    let mean_query_ns = solo_secs * 1e9 / solo_lat.len() as f64;
    eprintln!("uncontended: {solo_qps:.0} qps, p50 {solo_p50:.2} ms, p99 {solo_p99:.2} ms");

    // ---- Disarmed-failpoint overhead. --------------------------------
    // (a) the fast path itself, probed tight;
    let started = Instant::now();
    for _ in 0..config.probes {
        black_box(kbtim_fault::inject(black_box("bench.probe")));
    }
    let ns_per_inject = started.elapsed().as_secs_f64() * 1e9 / config.probes as f64;
    // (b) how often a real query reaches a failpoint: arm everything as
    // counting `noop` (never misbehaves, books every evaluation) and
    // replay the mix on the warm engine.
    kbtim_fault::arm("*", "noop").unwrap();
    const COUNT_ROUNDS: usize = 4;
    for _ in 0..COUNT_ROUNDS {
        for line in LINES {
            let response = handle_line(&router, line);
            assert_eq!(seeds_of(&response).as_ref(), Some(&oracle[line]));
        }
    }
    let evals: u64 = kbtim_fault::evaluations().iter().map(|(_, hits, _)| hits).sum();
    kbtim_fault::reset();
    let evals_per_query = evals as f64 / (COUNT_ROUNDS * LINES.len()) as f64;
    let overhead_pct = evals_per_query * ns_per_inject / mean_query_ns * 100.0;
    eprintln!(
        "failpoints: {ns_per_inject:.2} ns/inject disarmed, {evals_per_query:.0} \
         evaluations/query, {overhead_pct:.4}% of a {:.0} µs query",
        mean_query_ns / 1e3
    );
    assert!(
        overhead_pct <= MAX_OVERHEAD_PCT,
        "disarmed failpoint overhead {overhead_pct:.3}% exceeds the documented \
         {MAX_OVERHEAD_PCT}% budget"
    );

    // ---- 2× overload storm: shed on, then shed off. ------------------
    let shed_on = run_storm(
        &router,
        &oracle,
        ServeCtx::new(ADMITTED, None),
        "shed_on",
        format!("{ADMITTED}"),
        config.storm,
    );
    let shed_off = run_storm(
        &router,
        &oracle,
        ServeCtx::unlimited(),
        "shed_off",
        "unlimited".to_string(),
        config.storm,
    );
    for row in [&shed_on, &shed_off] {
        eprintln!(
            "{}: served {} ({:.0} qps goodput), shed {}, p50 {:.2} ms, p99 {:.2} ms",
            row.label, row.served, row.goodput_qps, row.shed, row.p50_ms, row.p99_ms
        );
    }

    if smoke && out_path.is_none() {
        eprintln!(
            "smoke run: overhead {overhead_pct:.4}% <= {MAX_OVERHEAD_PCT}%, all checked \
             answers bit-identical to the oracle; no JSON written"
        );
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_robust.json".to_string());
    let json = format!(
        r#"{{
  "bench": "robust_serving",
  "methodology": "docs/BENCHMARKS.md and docs/OPERATIONS.md (closed-loop storm at 2x admitted concurrency; latencies are successful requests only)",
  "graph": {{ "family": "news", "nodes": {nodes}, "edges": {edges} }},
  "seed": {SEED},
  "host_available_parallelism": {host_threads},
  "index": {{ "users": {users}, "topics": {TOPICS}, "theta_cap": {theta_cap}, "variant": "irr", "partition_size": 100, "total_theta": {total_theta} }},
  "serving_mode": "mmap (process-wide page cache), per_query_threads 1",
  "request_mix": "k=10 w=2, k=10 w=3, k=25 w=4, each via rr and irr, as protocol lines through the full front-end",
  "answers_bit_identical_to_oracle": true,
  "uncontended": {{ "qps": {solo_qps:.1}, "p50_ms": {solo_p50:.3}, "p99_ms": {solo_p99:.3} }},
  "disarmed_failpoints": {{
    "ns_per_inject": {ns_per_inject:.3},
    "evaluations_per_query": {evals_per_query:.1},
    "mean_query_us": {mean_query_us:.1},
    "overhead_pct": {overhead_pct:.5},
    "asserted_max_pct": {MAX_OVERHEAD_PCT}
  }},
  "overload_2x": {{
    "offered_clients": {OFFERED_CLIENTS},
    "storm_seconds": {storm_secs:.1},
    "shed_on": {shed_on_json},
    "shed_off": {shed_off_json}
  }}
}}
"#,
        nodes = data.graph.num_nodes(),
        edges = data.graph.num_edges(),
        users = config.users,
        theta_cap = config.theta_cap,
        total_theta = report.total_theta,
        mean_query_us = mean_query_ns / 1e3,
        storm_secs = config.storm.as_secs_f64(),
        shed_on_json = storm_json(&shed_on),
        shed_off_json = storm_json(&shed_off),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}

/// Drive `OFFERED_CLIENTS` closed-loop clients against one admission
/// context for a fixed wall-clock window; shed requests back off
/// briefly (as a real client would) instead of spinning.
fn run_storm(
    router: &Arc<Router>,
    oracle: &HashMap<&str, Json>,
    ctx: ServeCtx,
    label: &'static str,
    max_queue: String,
    storm: Duration,
) -> StormRow {
    let ctx = Arc::new(ctx);
    let latencies = Mutex::new(Vec::new());
    let barrier = Barrier::new(OFFERED_CLIENTS);
    std::thread::scope(|scope| {
        for tid in 0..OFFERED_CLIENTS {
            let router = Arc::clone(router);
            let ctx = Arc::clone(&ctx);
            let latencies = &latencies;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut mine = Vec::new();
                barrier.wait();
                let stop = Instant::now() + storm;
                let mut at = tid;
                while Instant::now() < stop {
                    let line = LINES[at % LINES.len()];
                    at += 1;
                    let t0 = Instant::now();
                    let response = handle_line_ctx(&router, &ctx, line);
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    if response.contains("\"seeds\"") {
                        mine.push(ms);
                        // Spot-check determinism under contention without
                        // adding a parse to every request's footprint.
                        if mine.len() % 16 == 0 {
                            assert_eq!(seeds_of(&response).as_ref(), Some(&oracle[line]));
                        }
                    } else if response.contains("\"overloaded\"") {
                        std::thread::sleep(Duration::from_micros(300));
                    } else {
                        panic!("{label}: unexpected response {response}");
                    }
                }
                latencies.lock().unwrap().append(&mut mine);
            });
        }
    });
    let mut latencies = latencies.into_inner().unwrap();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(ctx.served(), latencies.len() as u64, "admission books must balance");
    StormRow {
        label,
        max_queue,
        served: ctx.served(),
        shed: ctx.shed(),
        goodput_qps: latencies.len() as f64 / storm.as_secs_f64(),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    }
}

fn storm_json(row: &StormRow) -> String {
    format!(
        r#"{{ "max_queue": "{}", "served": {}, "shed": {}, "goodput_qps": {:.1}, "p50_ms": {:.3}, "p99_ms": {:.3} }}"#,
        row.max_queue, row.served, row.shed, row.goodput_qps, row.p50_ms, row.p99_ms
    )
}

/// The `"seeds"` field of a successful response, parsed.
fn seeds_of(response: &str) -> Option<Json> {
    Json::parse(response).ok()?.get("seeds").cloned()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let at = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[at]
}
