//! Record a machine-readable baseline for the zero-copy serving tier.
//!
//! Same 100k-node news-family graph, index configuration, query mix and
//! measurement protocol as `flat_baseline` / `BENCH_flat.json`, so the
//! numbers compose: `BENCH_flat.json` froze the PR 2 flat-arena query
//! latencies on the `file` backend; this baseline re-measures
//! `query_rr` / `query_irr` / `MemoryIndex::query` through each
//! [`ServingMode`] backend and additionally counts **heap allocations
//! per query** via a counting global allocator — the scratch-pool claim
//! ("steady-state queries allocate ~zero") is a number here, not prose.
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin serving_baseline [OUT.json]
//! ```

use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, MemoryIndex, ServingMode, ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_storage::{IoStats, TempDir};
use kbtim_topics::Query;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapper counting every allocation call.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const USERS: u32 = 100_000;
const TOPICS: u32 = 16;
const SEED: u64 = 42;
const ROUNDS: usize = 5;

struct Measured {
    mean_ms: f64,
    allocs_per_query: f64,
}

/// Mean wall-clock and allocation count per query over the warm query
/// mix (warm-up pass excluded, so scratch pools are primed — the steady
/// state a serving tier lives in).
fn measure(queries: &[Query], mut run: impl FnMut(&Query)) -> Measured {
    for q in queries {
        run(q); // warm-up: prime caches and scratch pools
    }
    let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for q in queries {
            run(q);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;
    let n = (ROUNDS * queries.len()) as f64;
    Measured { mean_ms: elapsed / n * 1e3, allocs_per_query: allocs as f64 / n }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serving.json".to_string());
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("generating news-family dataset ({USERS} users, {TOPICS} topics)...");
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(USERS)
        .num_topics(TOPICS)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);

    eprintln!("building IRR index over the full graph...");
    let config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(4_000),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: host_threads,
        seed: SEED,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("serving-baseline-idx").unwrap();
    let report = IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
    eprintln!(
        "index built: Σθ_w = {}, {:.1} MiB, {:.1}s",
        report.total_theta,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed.as_secs_f64()
    );

    let queries =
        [Query::new([0, 1], 10), Query::new([2, 3, 4], 10), Query::new([0, 5, 9, 12], 25)];

    // Cross-backend answers must agree before anything is timed.
    let baseline = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().with_threads(Some(1));
    let expected: Vec<_> = queries.iter().map(|q| baseline.query_rr(q).unwrap().seeds).collect();

    let mut rows = Vec::new();
    for mode in [ServingMode::File, ServingMode::Resident, ServingMode::Mmap] {
        let index =
            KbtimIndex::open_with(dir.path(), IoStats::new(), mode).unwrap().with_threads(Some(1));
        for (q, want) in queries.iter().zip(&expected) {
            assert_eq!(&index.query_rr(q).unwrap().seeds, want, "{mode} diverged");
            assert_eq!(&index.query_irr(q).unwrap().seeds, want, "{mode} irr diverged");
        }
        let memory = MemoryIndex::load(&index).unwrap();

        let rr = measure(&queries, |q| {
            std::hint::black_box(index.query_rr(q).unwrap());
        });
        let irr = measure(&queries, |q| {
            std::hint::black_box(index.query_irr(q).unwrap());
        });
        let mem = measure(&queries, |q| {
            std::hint::black_box(memory.query(q));
        });
        let sample = index.query_rr(&queries[0]).unwrap();
        eprintln!(
            "{mode:>9}: rr {:.3} ms ({:.0} allocs)  irr {:.3} ms ({:.0} allocs)  \
             memory {:.3} ms ({:.0} allocs)  resident {:.1} MiB",
            rr.mean_ms,
            rr.allocs_per_query,
            irr.mean_ms,
            irr.allocs_per_query,
            mem.mean_ms,
            mem.allocs_per_query,
            index.resident_bytes() as f64 / (1024.0 * 1024.0),
        );
        rows.push(format!(
            r#"    "{mode}": {{
      "query_rr_mean_ms": {:.3},
      "query_rr_allocs_per_query": {:.1},
      "query_irr_mean_ms": {:.3},
      "query_irr_allocs_per_query": {:.1},
      "memory_query_mean_ms": {:.3},
      "memory_query_allocs_per_query": {:.1},
      "per_query_read_ops": {},
      "per_query_cache_hits": {},
      "resident_bytes": {}
    }}"#,
            rr.mean_ms,
            rr.allocs_per_query,
            irr.mean_ms,
            irr.allocs_per_query,
            mem.mean_ms,
            mem.allocs_per_query,
            sample.stats.io.read_ops,
            sample.stats.io.cache_hits,
            index.resident_bytes(),
        ));
    }

    let json = format!(
        r#"{{
  "bench": "serving_tier",
  "graph": {{ "family": "news", "nodes": {nodes}, "edges": {edges} }},
  "seed": {SEED},
  "host_available_parallelism": {host_threads},
  "index": {{ "users": {USERS}, "topics": {TOPICS}, "theta_cap": 4000, "variant": "irr", "partition_size": 100, "total_theta": {total_theta} }},
  "queries": "k=10 w=2, k=10 w=3, k=25 w=4 (mean over {ROUNDS} rounds each, warm scratch pools)",
  "comparable_to": "BENCH_flat.json query_latency_ms (same graph, index config, query mix; file backend)",
  "outputs_bit_identical_across_backends": true,
  "modes": {{
{modes}
  }}
}}
"#,
        nodes = data.graph.num_nodes(),
        edges = data.graph.num_edges(),
        total_theta = report.total_theta,
        modes = rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
