//! Record a machine-readable baseline for the flat arena data path.
//!
//! On the same 100k-node news-family graph (and seed) as
//! `BENCH_parallel.json`, measures:
//!
//! 1. single-thread invert + greedy throughput of the frozen pre-arena
//!    pipeline (`HashMap` inverted lists + `Vec<bool>`/`HashSet` CELF)
//!    vs the flat pipeline (CSR [`InvertedIndex`] + bitset CELF), after
//!    asserting both produce bit-identical seed sequences;
//! 2. single-thread RR-batch sampling throughput into the `RrBatch`
//!    arena (directly comparable to `BENCH_parallel.json`'s rows);
//! 3. end-to-end query latency against a freshly built IRR index on the
//!    full graph: Algorithm 2 (`query_rr`), Algorithm 4 (`query_irr`)
//!    and the RAM-resident [`MemoryIndex`].
//!
//! Results are written as JSON (default `BENCH_flat.json`; pass a path
//! to override).
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin flat_baseline [OUT.json]
//! ```

use kbtim_bench::legacy;
use kbtim_core::invindex::InvertedIndex;
use kbtim_core::maxcover::greedy_max_cover_inverted;
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_exec::ExecPool;
use kbtim_index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, MemoryIndex, ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_propagation::sample_batch;
use kbtim_storage::{IoStats, TempDir};
use kbtim_topics::Query;
use rand::Rng;
use std::time::Instant;

const USERS: u32 = 100_000;
const TOPICS: u32 = 16;
const BATCH: usize = 20_000;
const ROUNDS: usize = 5;
const SEED: u64 = 42;
const K: u32 = 50;

fn best_secs(rounds: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_flat.json".to_string());
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("generating news-family dataset ({USERS} users, {TOPICS} topics)...");
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(USERS)
        .num_topics(TOPICS)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);
    let num_nodes = data.graph.num_nodes();
    let num_edges = data.graph.num_edges();

    // --- stage 1: invert + greedy, hashmap vs flat (single thread) ------
    let pool = ExecPool::sequential();
    let batch = sample_batch(&model, BATCH, SEED, &pool, |rng| rng.gen_range(0..num_nodes));
    let sets_vec = batch.to_vecs();

    let flat_result =
        greedy_max_cover_inverted(&InvertedIndex::from_batch(&batch), BATCH as u64, K);
    let legacy_result = legacy::invert_and_cover_hashmap(&sets_vec, K);
    assert_eq!(flat_result, legacy_result, "flat and legacy pipelines diverged");
    eprintln!(
        "pipelines bit-identical: {} seeds, coverage {}",
        flat_result.seeds.len(),
        flat_result.covered
    );

    let hashmap_secs = best_secs(ROUNDS, || {
        std::hint::black_box(legacy::invert_and_cover_hashmap(&sets_vec, K));
    });
    let flat_secs = best_secs(ROUNDS, || {
        std::hint::black_box(greedy_max_cover_inverted(
            &InvertedIndex::from_batch(&batch),
            BATCH as u64,
            K,
        ));
    });
    let hashmap_rate = BATCH as f64 / hashmap_secs;
    let flat_rate = BATCH as f64 / flat_secs;
    let speedup = flat_rate / hashmap_rate;
    eprintln!("invert+greedy  hashmap {hashmap_rate:>12.0} sets/s");
    eprintln!("invert+greedy  flat    {flat_rate:>12.0} sets/s  ({speedup:.2}x)");

    // --- stage 2: arena sampling throughput, single thread --------------
    let sampler_secs = best_secs(ROUNDS, || {
        std::hint::black_box(sample_batch(&model, BATCH, SEED, &pool, |rng| {
            rng.gen_range(0..num_nodes)
        }));
    });
    let sampler_rate = BATCH as f64 / sampler_secs;
    eprintln!("rr sampling    arena   {sampler_rate:>12.0} sets/s (1 thread)");

    // --- stage 3: end-to-end query latency on a full-size index ---------
    eprintln!("building IRR index over the full graph...");
    let config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(4_000),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: host_threads,
        seed: SEED,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("flat-baseline-idx").unwrap();
    let report = IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
    eprintln!(
        "index built: Σθ_w = {}, {:.1} MiB, {:.1}s",
        report.total_theta,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed.as_secs_f64()
    );
    let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().with_threads(Some(1));
    let memory = MemoryIndex::load(&index).unwrap();
    eprintln!(
        "memory index resident: {:.1} MiB",
        memory.resident_bytes() as f64 / (1024.0 * 1024.0)
    );

    let queries =
        [Query::new([0, 1], 10), Query::new([2, 3, 4], 10), Query::new([0, 5, 9, 12], 25)];
    let mean_ms = |mut run: Box<dyn FnMut(&Query)>| -> f64 {
        for q in &queries {
            run(q); // warm-up
        }
        let mut total = 0.0;
        let rounds = 5;
        for _ in 0..rounds {
            for q in &queries {
                let start = Instant::now();
                run(q);
                total += start.elapsed().as_secs_f64();
            }
        }
        total / (rounds * queries.len()) as f64 * 1e3
    };
    let rr_ms = mean_ms(Box::new(|q| {
        std::hint::black_box(index.query_rr(q).unwrap());
    }));
    let irr_ms = mean_ms(Box::new(|q| {
        std::hint::black_box(index.query_irr(q).unwrap());
    }));
    let mem_ms = mean_ms(Box::new(|q| {
        std::hint::black_box(memory.query(q));
    }));
    eprintln!("query latency  rr {rr_ms:.2} ms  irr {irr_ms:.2} ms  memory {mem_ms:.2} ms");

    let json = format!(
        r#"{{
  "bench": "flat_datapath",
  "graph": {{ "family": "news", "nodes": {num_nodes}, "edges": {num_edges} }},
  "batch_size": {BATCH},
  "seed": {SEED},
  "host_available_parallelism": {host_threads},
  "invert_greedy_single_thread": {{
    "k": {K},
    "hashmap_sets_per_sec": {hashmap_rate:.1},
    "flat_sets_per_sec": {flat_rate:.1},
    "speedup_flat_vs_hashmap": {speedup:.3},
    "outputs_bit_identical": true
  }},
  "arena_sampler_sets_per_sec_1_thread": {sampler_rate:.1},
  "query_latency_ms": {{
    "index": {{ "users": {USERS}, "topics": {TOPICS}, "theta_cap": 4000, "variant": "irr", "partition_size": 100, "total_theta": {total_theta}, "memory_resident_bytes": {resident} }},
    "queries": "k=10 w=2, k=10 w=3, k=25 w=4 (mean over 5 rounds each)",
    "query_rr_mean_ms": {rr_ms:.3},
    "query_irr_mean_ms": {irr_ms:.3},
    "memory_query_mean_ms": {mem_ms:.3}
  }}
}}
"#,
        total_theta = report.total_theta,
        resident = memory.resident_bytes(),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
