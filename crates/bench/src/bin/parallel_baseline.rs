//! Record a machine-readable baseline for parallel RR-set generation.
//!
//! Measures `kbtim_propagation::sample_batch` throughput at 1/2/4/8
//! worker threads on a 100k-node news-family graph, verifies the outputs
//! are bit-identical across thread counts, and writes the results as JSON
//! (default `BENCH_parallel.json`; pass a path to override).
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin parallel_baseline [OUT.json]
//! ```

use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_exec::ExecPool;
use kbtim_propagation::model::IcModel;
use kbtim_propagation::sample_batch;
use rand::Rng;
use std::time::Instant;

const USERS: u32 = 100_000;
const BATCH: usize = 20_000;
const ROUNDS: usize = 3;
const SEED: u64 = 42;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("generating news-family dataset ({USERS} users)...");
    let data =
        DatasetConfig::family(DatasetFamily::News).num_users(USERS).num_topics(16).seed(6).build();
    let model = IcModel::weighted_cascade(&data.graph);
    let num_nodes = data.graph.num_nodes();
    let num_edges = data.graph.num_edges();

    // Cross-thread-count determinism check before measuring anything.
    let reference = sample_batch(&model, 2_000, SEED, &ExecPool::new(Some(1)), |rng| {
        rng.gen_range(0..num_nodes)
    });
    for threads in [2usize, 4, 8] {
        let check = sample_batch(&model, 2_000, SEED, &ExecPool::new(Some(threads)), |rng| {
            rng.gen_range(0..num_nodes)
        });
        assert_eq!(reference, check, "threads={threads} diverged from sequential output");
    }
    eprintln!("determinism check passed (1 == 2 == 4 == 8 threads)");

    let mut rows = Vec::new();
    let mut base_rate = 0.0f64;
    for &threads in &[1usize, 2, 4, 8] {
        let pool = ExecPool::new(Some(threads));
        // Warm-up round, then best-of-ROUNDS.
        let _ = sample_batch(&model, BATCH, SEED, &pool, |rng| rng.gen_range(0..num_nodes));
        let mut best_secs = f64::INFINITY;
        for _ in 0..ROUNDS {
            let start = Instant::now();
            let sets = sample_batch(&model, BATCH, SEED, &pool, |rng| rng.gen_range(0..num_nodes));
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(sets.len(), BATCH);
            best_secs = best_secs.min(secs);
        }
        let rate = BATCH as f64 / best_secs;
        if threads == 1 {
            base_rate = rate;
        }
        let speedup = rate / base_rate;
        eprintln!("threads={threads:>2}  {rate:>12.0} sets/s  speedup {speedup:.2}x");
        rows.push(format!(
            "    {{ \"threads\": {threads}, \"sets_per_sec\": {rate:.1}, \"speedup_vs_1\": {speedup:.3} }}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"parallel_rr_sampler\",\n  \"graph\": {{ \"family\": \"news\", \"nodes\": {num_nodes}, \"edges\": {num_edges} }},\n  \"batch_size\": {BATCH},\n  \"seed\": {SEED},\n  \"host_available_parallelism\": {host_threads},\n  \"deterministic_across_threads\": true,\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
