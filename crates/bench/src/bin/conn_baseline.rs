//! Record a machine-readable baseline for the connection-scaling story
//! of the TCP serving front ends (`BENCH_conn.json`).
//!
//! The scenario the epoll front end exists for: **M active pipelined
//! clients over N mostly-idle connections**. A thread-per-connection
//! server pays one OS thread per idle advertiser holding a connection
//! open; the epoll loop multiplexes them all onto one thread plus a
//! fixed worker pool. Both front ends serve the same closed-loop
//! pipelined load (depth 8, responses matched by echoed `id`) while
//! the bench records goodput, p99 latency, resident set and **thread
//! count** from `/proc/self/status` — the thread column is the
//! headline: ~idle_conns threads versus a handful.
//!
//! Every answer is checked bit-identical to the serial oracle
//! (`handle_line` on a fresh engine) — the determinism contract is
//! enforced in the bench itself.
//!
//! The bench also pins the batch-planner regression this PR fixes: fed
//! from the epoll ready queue, the planner no longer condvar-sleeps to
//! collect an admission window, so a **single pipelined client with
//! batching on** must reach ≥ 0.95× its unbatched throughput
//! (`BENCH_batch.json` recorded 0.90× through the old sleeping
//! planner). The ratio is asserted, not just recorded.
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin conn_baseline [--smoke] [OUT.json]
//! ```
//!
//! `--smoke` shrinks the dataset, connection count and round count for
//! CI (and skips writing the JSON unless a path is given explicitly).

use kbtim::serve::{handle_line, serve_epoll, serve_threads, EpollConfig, Json, Router, ServeCtx};
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, PageCache, QueryEngine, ServingMode,
    ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_storage::{IoStats, TempDir};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const TOPICS: u32 = 16;
/// Requests in flight per active client.
const PIPELINE_DEPTH: usize = 8;
/// Required batched/unbatched throughput ratio for one pipelined
/// client (the planner fed from the ready queue must not sleep).
const MIN_BATCHED_RATIO: f64 = 0.95;

/// The request mix (same shapes as `concurrent_baseline`), as bodies —
/// ids are assigned per client so pipelined responses match back.
const BODIES: [&str; 6] = [
    r#""topics":[0,1],"k":10,"algo":"rr""#,
    r#""topics":[0,1],"k":10,"algo":"irr""#,
    r#""topics":[2,3,4],"k":10,"algo":"rr""#,
    r#""topics":[2,3,4],"k":10,"algo":"irr""#,
    r#""topics":[0,5,9,12],"k":25,"algo":"rr""#,
    r#""topics":[0,5,9,12],"k":25,"algo":"irr""#,
];

struct Config {
    users: u32,
    theta_cap: u64,
    /// Mostly-idle connections held open during the storm.
    idle_conns: usize,
    /// Active pipelined clients.
    active_clients: usize,
    /// Requests per active client.
    requests_per_client: usize,
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = Some(other.to_string()),
        }
    }
    let config = if smoke {
        Config {
            users: 2_000,
            theta_cap: 800,
            idle_conns: 256,
            active_clients: 2,
            requests_per_client: 120,
        }
    } else {
        Config {
            users: 100_000,
            theta_cap: 4_000,
            idle_conns: 4_096,
            active_clients: 4,
            requests_per_client: 600,
        }
    };
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("generating news-family dataset ({} users, {TOPICS} topics)...", config.users);
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(config.users)
        .num_topics(TOPICS)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);

    eprintln!("building IRR index...");
    let build_config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(config.theta_cap),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: host_threads,
        seed: SEED,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("conn-baseline-idx").unwrap();
    let report = IndexBuilder::new(&model, &data.profiles, build_config).build(dir.path()).unwrap();
    eprintln!(
        "index built: Σθ_w = {}, {:.1} MiB, {:.1}s",
        report.total_theta,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed.as_secs_f64()
    );

    // Serial oracle: body → expected "seeds" value.
    let oracle: HashMap<&'static str, Json> = {
        let engine = Arc::new(QueryEngine::new(Arc::new(open_engine_index(dir.path()))));
        let router = Router::single(engine);
        BODIES
            .iter()
            .map(|&body| {
                let response = handle_line(&router, &format!("{{{body}}}"));
                let json = Json::parse(&response).expect("oracle response parses");
                let seeds = json.get("seeds").expect("oracle answers succeed").clone();
                (body, seeds)
            })
            .collect()
    };

    // The headline comparison: both front ends under the same load,
    // idle connections held open throughout.
    let mut rows = Vec::new();
    let front_ends: &[&str] =
        if cfg!(target_os = "linux") { &["epoll", "threads"] } else { &["threads"] };
    for &fe in front_ends {
        let row = run_scenario(dir.path(), fe, true, &config, &oracle);
        eprintln!(
            "{fe}: {} requests over {} conns ({} active): {:.0} qps, p99 {:.2} ms, \
             rss {:.1} MiB, {} threads",
            config.active_clients * config.requests_per_client,
            config.idle_conns + config.active_clients,
            config.active_clients,
            row.qps,
            row.p99_ms,
            row.rss_mib,
            row.threads,
        );
        rows.push(row);
    }

    // The planner regression gate: one pipelined client, epoll front
    // end, batching on vs off — no idle connections, pure throughput.
    let (batched_ratio_json, batched_ratio) = if cfg!(target_os = "linux") {
        let solo = Config { idle_conns: 0, active_clients: 1, ..config };
        let unbatched = run_measured(dir.path(), "epoll", false, &solo, &oracle);
        let batched = run_measured(dir.path(), "epoll", true, &solo, &oracle);
        let ratio = batched.qps / unbatched.qps;
        eprintln!(
            "1-client epoll: unbatched {:.0} qps, batched {:.0} qps, ratio {ratio:.3} \
             (floor {MIN_BATCHED_RATIO})",
            unbatched.qps, batched.qps
        );
        assert!(
            ratio >= MIN_BATCHED_RATIO,
            "batch planner fed from the ready queue must not sleep: \
             batched {:.1} qps < {MIN_BATCHED_RATIO} x unbatched {:.1} qps",
            batched.qps,
            unbatched.qps
        );
        (format!("{ratio:.3}"), ratio)
    } else {
        ("null".to_string(), f64::NAN)
    };
    let _ = batched_ratio;

    if smoke && out_path.is_none() {
        eprintln!("smoke run: all answers bit-identical to serial; no JSON written");
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_conn.json".to_string());
    let row_json = rows
        .iter()
        .map(|r| {
            format!(
                r#"    "{}": {{ "qps": {:.1}, "p50_ms": {:.3}, "p99_ms": {:.3}, "rss_mib": {:.1}, "threads": {} }}"#,
                r.front_end, r.qps, r.p50_ms, r.p99_ms, r.rss_mib, r.threads
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        r#"{{
  "bench": "connection_scaling",
  "methodology": "docs/BENCHMARKS.md (M active pipelined clients over N mostly-idle connections; rss/threads from /proc/self/status mid-storm, server in-process)",
  "graph": {{ "family": "news", "nodes": {nodes}, "edges": {edges} }},
  "seed": {SEED},
  "host_available_parallelism": {host_threads},
  "index": {{ "users": {users}, "topics": {TOPICS}, "theta_cap": {theta_cap}, "variant": "irr", "partition_size": 100, "total_theta": {total_theta} }},
  "serving_mode": "mmap (process-wide page cache), per-query threads 1",
  "load": {{ "idle_conns": {idle}, "active_clients": {active}, "pipeline_depth": {PIPELINE_DEPTH}, "requests_per_client": {reqs} }},
  "answers_bit_identical_to_serial": true,
  "front_ends": {{
{row_json}
  }},
  "one_client_batched_vs_unbatched_qps_ratio": {batched_ratio_json},
  "batched_ratio_floor_asserted": {MIN_BATCHED_RATIO},
  "comparable_to": "BENCH_batch.json (same planner; its 1-client ratio of 0.903 went through the condvar admission window this PR retires)"
}}
"#,
        nodes = data.graph.num_nodes(),
        edges = data.graph.num_edges(),
        users = config.users,
        theta_cap = config.theta_cap,
        total_theta = report.total_theta,
        idle = config.idle_conns,
        active = config.active_clients,
        reqs = config.requests_per_client,
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}

struct Row {
    front_end: &'static str,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    rss_mib: f64,
    threads: u64,
}

fn open_engine_index(dir: &Path) -> KbtimIndex {
    // The server configuration: mmap pages shared through the
    // process-wide cache, per-query fan-out pinned to 1 worker so
    // client concurrency is the parallelism (the `kbtim serve`
    // default).
    let mut index =
        KbtimIndex::open_shared(dir, IoStats::new(), ServingMode::Mmap, PageCache::global())
            .unwrap();
    index.set_threads(Some(1));
    index
}

/// Warm-up pass then a measured pass (first-touch page faults and
/// fresh-pool allocations land in the warm-up).
fn run_measured(
    dir: &Path,
    front_end: &'static str,
    batching: bool,
    config: &Config,
    oracle: &HashMap<&'static str, Json>,
) -> Row {
    let _ = run_scenario(dir, front_end, batching, config, oracle);
    run_scenario(dir, front_end, batching, config, oracle)
}

fn run_scenario(
    dir: &Path,
    front_end: &'static str,
    batching: bool,
    config: &Config,
    oracle: &HashMap<&'static str, Json>,
) -> Row {
    let engine = QueryEngine::new(Arc::new(open_engine_index(dir)))
        .with_batch_window(batching.then(|| Duration::from_micros(200)))
        .with_merge_cache(8);
    let router = Arc::new(Router::single(Arc::new(engine)));
    let ctx = Arc::new(ServeCtx::new(1024, None).with_front_end(front_end));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let (router, ctx) = (Arc::clone(&router), Arc::clone(&ctx));
        match front_end {
            "epoll" => std::thread::spawn(move || {
                serve_epoll(
                    listener,
                    router,
                    ctx,
                    EpollConfig { max_conns: 16_384, workers: 2, ..EpollConfig::default() },
                )
            }),
            _ => std::thread::spawn(move || {
                serve_threads(listener, router, ctx, 1 << 20, false, Duration::from_secs(10))
            }),
        }
    };

    // N mostly-idle connections, open for the whole storm. Under the
    // threads front end every one of these pins an OS thread.
    let idle: Vec<TcpStream> =
        (0..config.idle_conns).map(|_| TcpStream::connect(addr).unwrap()).collect();
    // Give the thread-per-connection server a beat to finish spawning
    // before sampling thread counts.
    std::thread::sleep(Duration::from_millis(100));

    let started = Instant::now();
    let clients: Vec<_> = (0..config.active_clients)
        .map(|c| {
            let requests = config.requests_per_client;
            let oracle = oracle.clone();
            std::thread::spawn(move || run_client(addr, c as u64, requests, &oracle))
        })
        .collect();
    // Sample mid-storm, with the idle connections established and the
    // active clients running.
    std::thread::sleep(Duration::from_millis(50));
    let (rss_mib, threads) = proc_status();
    let mut latencies: Vec<f64> = Vec::new();
    for client in clients {
        latencies.extend(client.join().expect("client thread"));
    }
    let wall = started.elapsed().as_secs_f64();
    drop(idle);
    ctx.begin_shutdown();
    server.join().expect("serve thread").expect("serve loop exits cleanly");

    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize] * 1e3;
    Row {
        front_end,
        qps: latencies.len() as f64 / wall,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        rss_mib,
        threads,
    }
}

/// One pipelined client: a sliding window of `PIPELINE_DEPTH` requests
/// in flight, responses matched by echoed id and checked against the
/// oracle. Returns per-request latencies in seconds.
fn run_client(
    addr: SocketAddr,
    client: u64,
    requests: usize,
    oracle: &HashMap<&'static str, Json>,
) -> Vec<f64> {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    // The sliding window writes one small request line at a time —
    // with Nagle on, writes 2..N of a burst stall behind the first
    // packet's ACK, which the server (batching the whole window) has
    // no data to piggyback on.
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let mut inflight: HashMap<u64, (&'static str, Instant)> = HashMap::new();
    let mut latencies = Vec::with_capacity(requests);
    let mut sent = 0usize;
    let mut line = String::new();
    while latencies.len() < requests {
        while sent < requests && inflight.len() < PIPELINE_DEPTH {
            let id = client * 1_000_000 + sent as u64;
            let body = BODIES[(sent + client as usize) % BODIES.len()];
            writeln!(writer, "{{\"id\":{id},{body}}}").unwrap();
            inflight.insert(id, (body, Instant::now()));
            sent += 1;
        }
        line.clear();
        assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server closed early");
        let response = line.trim();
        let json = Json::parse(response).expect("responses are protocol JSON");
        let Some(Json::Num(id)) = json.get("id") else {
            panic!("response without echoed id: {response}");
        };
        let (body, sent_at) =
            inflight.remove(&(*id as u64)).expect("echoed id matches a pending request");
        latencies.push(sent_at.elapsed().as_secs_f64());
        assert_eq!(
            json.get("seeds"),
            Some(&oracle[body]),
            "client {client}: answer must be bit-identical to the serial oracle: {response}"
        );
    }
    latencies
}

/// `VmRSS` (MiB) and `Threads` from `/proc/self/status`; zeros where
/// unavailable.
fn proc_status() -> (f64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0.0, 0);
    };
    let field = |key: &str| {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:") as f64 / 1024.0, field("Threads:"))
}
