//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin experiments -- \
//!     [--scale small|full] [--root DIR] [--only table2,fig5,...]
//! ```
//!
//! Experiments: `table2 fig4 table3 table4 table5 fig5 table6 table7 fig6
//! fig7 table8`. Indexes are cached under `--root` (default
//! `target/kbtim-exp`), so reruns only pay query time. See DESIGN.md for
//! the experiment ↔ module map and EXPERIMENTS.md for recorded results.

use kbtim_bench::table::{fmt_bytes, fmt_duration, TextTable};
use kbtim_bench::{ExpContext, ExpScale};
use kbtim_codec::Codec;
use kbtim_core::ris::ris_query;
use kbtim_core::wris::wris_query;
use kbtim_datagen::{Dataset, DatasetFamily};
use kbtim_graph::stats::{graph_stats, in_degree_histogram, log_binned_in_degrees, log_log_slope};
use kbtim_index::{IndexVariant, KbtimIndex, ThetaMode};
use kbtim_propagation::model::{IcModel, LtModel};
use kbtim_propagation::spread::monte_carlo_targeted;
use kbtim_propagation::TriggeringModel;
use kbtim_topics::Query;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Duration;

// table7 precedes fig5/table6 so the shared Q.k sweep is computed once
// *with* its Monte-Carlo spread columns and then reused.
const ALL: &[&str] = &[
    "table2", "fig4", "table3", "table4", "table5", "table7", "fig5", "table6", "fig6", "fig7",
    "table8",
];

fn main() {
    let mut scale = ExpScale::small();
    let mut root = String::from("target/kbtim-exp");
    let mut only: Option<Vec<String>> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = ExpScale::by_name(&args[i]).unwrap_or_else(|| {
                    eprintln!("unknown scale {:?} (small|full)", args[i]);
                    std::process::exit(2);
                });
            }
            "--root" => {
                i += 1;
                root = args[i].clone();
            }
            "--only" => {
                i += 1;
                only = Some(args[i].split(',').map(str::to_string).collect());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: experiments [--scale small|full] [--root DIR] [--only LIST]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let selected: Vec<&str> = match &only {
        Some(list) => {
            for name in list {
                assert!(ALL.contains(&name.as_str()), "unknown experiment {name}");
            }
            ALL.iter().copied().filter(|e| list.iter().any(|s| s == e)).collect()
        }
        None => ALL.to_vec(),
    };

    let ctx = ExpContext::new(scale, &root);
    println!("== KB-TIM experiment harness  (scale: {}, cache root: {root}) ==\n", ctx.scale.name);
    let started = std::time::Instant::now();
    let mut harness = Harness::new(ctx);
    for exp in &selected {
        match *exp {
            "table2" => harness.table2(),
            "fig4" => harness.fig4(),
            "table3" => harness.table3(),
            "table4" => harness.table4(),
            "table5" => harness.table5(),
            "fig5" => harness.fig5(),
            "table6" => harness.table6(),
            "table7" => harness.table7(),
            "fig6" => harness.fig6(),
            "fig7" => harness.fig7(),
            "table8" => harness.table8(),
            _ => unreachable!(),
        }
    }
    println!("== done in {} ==", fmt_duration(started.elapsed()));
}

/// One row of the shared Q.k sweep (feeds Fig 5, Table 6 and Table 7).
struct SweepRow {
    k: u32,
    rr_time: Duration,
    irr_time: Duration,
    wris_time: Duration,
    rr_loaded: u64,
    irr_loaded: u64,
    irr_ios: u64,
    spread_wris: f64,
    spread_rr: f64,
    spread_irr: f64,
    spread_rr_hat: Option<f64>,
}

struct Harness {
    ctx: ExpContext,
    datasets: HashMap<(DatasetFamily, u32), Dataset>,
    /// Cached Q.k sweeps per family; the flag records whether the cached
    /// rows include the (expensive) Monte-Carlo spread columns.
    sweeps: HashMap<DatasetFamily, (bool, Vec<SweepRow>)>,
}

impl Harness {
    fn new(ctx: ExpContext) -> Harness {
        Harness { ctx, datasets: HashMap::new(), sweeps: HashMap::new() }
    }

    fn sizes(&self, family: DatasetFamily) -> Vec<u32> {
        match family {
            DatasetFamily::News => self.ctx.scale.news_sizes.clone(),
            DatasetFamily::Twitter => self.ctx.scale.twitter_sizes.clone(),
        }
    }

    fn dataset(&mut self, family: DatasetFamily, size: u32) -> &Dataset {
        let ctx = &self.ctx;
        self.datasets.entry((family, size)).or_insert_with(|| ctx.dataset(family, size))
    }

    fn default_size(&self, family: DatasetFamily) -> u32 {
        match family {
            DatasetFamily::News => self.ctx.scale.default_news_size(),
            DatasetFamily::Twitter => self.ctx.scale.default_twitter_size(),
        }
    }

    /// Packed IRR index (the workhorse shared by most query experiments)
    /// plus the default query workload for the dataset.
    fn default_index(&mut self, family: DatasetFamily, size: u32) -> (KbtimIndex, Vec<Query>) {
        let keywords = self.ctx.scale.default_keywords;
        let k = self.ctx.scale.default_k;
        let ctx = self.ctx.clone();
        let data = self.dataset(family, size);
        let build = ctx.build_or_load(
            data,
            Codec::Packed,
            IndexVariant::Irr { partition_size: 100 },
            ThetaMode::Compact,
            None,
        );
        let queries = ctx.queries(data, keywords, k);
        (ctx.open(&build), queries)
    }

    // ------------------------------------------------------------------
    // Table 2: dataset statistics.
    // ------------------------------------------------------------------
    fn table2(&mut self) {
        println!("-- Table 2: dataset statistics (scaled; paper: news 0.2M-1.4M, twitter 10M-40M)");
        let mut t = TextTable::new(["dataset", "#users", "#edges", "avg degree"]);
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            for size in self.sizes(family) {
                let data = self.dataset(family, size);
                let s = graph_stats(&data.graph);
                let name = data.name.clone();
                t.row([
                    name,
                    s.num_nodes.to_string(),
                    s.num_edges.to_string(),
                    format!("{:.1}", s.avg_degree),
                ]);
            }
        }
        t.print();
    }

    // ------------------------------------------------------------------
    // Figure 4: in-degree distributions.
    // ------------------------------------------------------------------
    fn fig4(&mut self) {
        println!("-- Figure 4: in-degree distributions (log-binned, base 2)");
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            let size = *self.sizes(family).last().expect("sizes");
            let data = self.dataset(family, size);
            let name = data.name.clone();
            let slope = log_log_slope(&in_degree_histogram(&data.graph)).unwrap_or(f64::NAN);
            let binned = log_binned_in_degrees(&data.graph, 2.0);
            let mut t = TextTable::new(["in-degree ≥", "#users"]);
            for (deg, count) in binned {
                t.row([deg.to_string(), count.to_string()]);
            }
            println!("{name}  (log-log slope {slope:.2}; heavy tails as in the paper's Fig 4)");
            t.print();
        }
    }

    // ------------------------------------------------------------------
    // Table 3: θ̂_w (Eqn 8) vs θ_w (Eqn 10) — size & build time, news.
    // ------------------------------------------------------------------
    fn table3(&mut self) {
        println!(
            "-- Table 3: index size/time with theta-hat (Eqn 8) vs theta (Eqn 10), news family"
        );
        // A higher cap than the family default so the θ̂/θ contrast is not
        // clipped (DESIGN.md documents the cap substitution).
        let cap = self.ctx.scale.news_theta_cap * 4;
        let mut t = TextTable::new([
            "dataset",
            "RR th^ size",
            "RR th size",
            "IRR th^ size",
            "IRR th size",
            "RR th^ time",
            "RR th time",
            "IRR th^ time",
            "IRR th time",
        ]);
        for size in self.sizes(DatasetFamily::News) {
            let ctx = self.ctx.clone();
            let data = self.dataset(DatasetFamily::News, size);
            let mut cells = vec![data.name.clone()];
            let mut times = Vec::new();
            for variant in [IndexVariant::Rr, IndexVariant::Irr { partition_size: 100 }] {
                for mode in [ThetaMode::Conservative, ThetaMode::Compact] {
                    let b = ctx.build_or_load(data, Codec::Packed, variant, mode, Some(cap));
                    cells.push(fmt_bytes(b.total_bytes));
                    times.push(fmt_duration(b.elapsed));
                }
            }
            cells.extend(times);
            t.row(cells);
        }
        t.print();
    }

    // ------------------------------------------------------------------
    // Table 4: compressed vs uncompressed — size & time, both families.
    // ------------------------------------------------------------------
    fn table4(&mut self) {
        println!("-- Table 4: disk size & build time, uncompressed (Raw) vs compressed (Packed)");
        let mut t = TextTable::new([
            "dataset",
            "RR raw",
            "IRR raw",
            "RR packed",
            "IRR packed",
            "t(RR raw)",
            "t(IRR raw)",
            "t(RR packed)",
            "t(IRR packed)",
        ]);
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            for size in self.sizes(family) {
                let ctx = self.ctx.clone();
                let data = self.dataset(family, size);
                let mut sizes = vec![data.name.clone()];
                let mut times = Vec::new();
                for codec in [Codec::Raw, Codec::Packed] {
                    for variant in [IndexVariant::Rr, IndexVariant::Irr { partition_size: 100 }] {
                        let b = ctx.build_or_load(data, codec, variant, ThetaMode::Compact, None);
                        sizes.push(fmt_bytes(b.total_bytes));
                        times.push(fmt_duration(b.elapsed));
                    }
                }
                sizes.extend(times);
                t.row(sizes);
            }
        }
        t.print();
    }

    // ------------------------------------------------------------------
    // Table 5: Σ θ_w and mean RR-set size per graph size.
    // ------------------------------------------------------------------
    fn table5(&mut self) {
        println!("-- Table 5: sum of theta_w and mean RR-set size vs graph size");
        let mut t = TextTable::new(["dataset", "sum theta_w", "mean RR size"]);
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            for size in self.sizes(family) {
                let ctx = self.ctx.clone();
                let data = self.dataset(family, size);
                let b = ctx.build_or_load(
                    data,
                    Codec::Packed,
                    IndexVariant::Irr { partition_size: 100 },
                    ThetaMode::Compact,
                    None,
                );
                t.row([
                    data.name.clone(),
                    b.total_theta.to_string(),
                    format!("{:.1}", b.mean_rr_size),
                ]);
            }
        }
        t.print();
    }

    // ------------------------------------------------------------------
    // Shared Q.k sweep (Fig 5 / Table 6 / Table 7).
    // ------------------------------------------------------------------
    fn k_sweep(&mut self, family: DatasetFamily, with_spreads: bool) -> &[SweepRow] {
        if let Some((has_spreads, _)) = self.sweeps.get(&family) {
            if !with_spreads || *has_spreads {
                return &self.sweeps[&family].1;
            }
        }
        let size = self.default_size(family);
        let keywords = self.ctx.scale.default_keywords;
        let ctx = self.ctx.clone();
        let scale = ctx.scale.clone();
        let (index, _) = self.default_index(family, size);
        let data = &self.datasets[&(family, size)];
        let model = IcModel::weighted_cascade(&data.graph);
        let wris_config = ctx.wris_sampling();

        // Conservative (θ̂) RR index for Table 7's extra news column.
        let rr_hat_index = (with_spreads && family == DatasetFamily::News).then(|| {
            let cap = scale.news_theta_cap * 4;
            let b = ctx.build_or_load(
                data,
                Codec::Packed,
                IndexVariant::Rr,
                ThetaMode::Conservative,
                Some(cap),
            );
            ctx.open(&b)
        });

        let mut rows = Vec::new();
        for &k in &scale.k_values {
            let queries = ctx.queries(data, keywords, k);
            let mc_queries = queries.len().min(3);
            let mut row = SweepRow {
                k,
                rr_time: Duration::ZERO,
                irr_time: Duration::ZERO,
                wris_time: Duration::ZERO,
                rr_loaded: 0,
                irr_loaded: 0,
                irr_ios: 0,
                spread_wris: 0.0,
                spread_rr: 0.0,
                spread_irr: 0.0,
                spread_rr_hat: rr_hat_index.as_ref().map(|_| 0.0),
            };
            let mut mc_rng = SmallRng::seed_from_u64(1000 + k as u64);
            for (qi, q) in queries.iter().enumerate() {
                let rr = index.query_rr(q).expect("rr");
                let irr = index.query_irr(q).expect("irr");
                row.rr_time += rr.stats.elapsed;
                row.irr_time += irr.stats.elapsed;
                row.rr_loaded += rr.stats.rr_sets_loaded;
                row.irr_loaded += irr.stats.rr_sets_loaded;
                row.irr_ios += irr.stats.io.read_ops;
                if with_spreads && qi < mc_queries {
                    row.spread_rr += monte_carlo_targeted(
                        &model,
                        &data.profiles,
                        q,
                        &rr.seeds,
                        scale.mc_rounds,
                        &mut mc_rng,
                    );
                    row.spread_irr += monte_carlo_targeted(
                        &model,
                        &data.profiles,
                        q,
                        &irr.seeds,
                        scale.mc_rounds,
                        &mut mc_rng,
                    );
                    if let (Some(hat), Some(total)) =
                        (rr_hat_index.as_ref(), row.spread_rr_hat.as_mut())
                    {
                        let hat_outcome = hat.query_rr(q).expect("rr-hat");
                        *total += monte_carlo_targeted(
                            &model,
                            &data.profiles,
                            q,
                            &hat_outcome.seeds,
                            scale.mc_rounds,
                            &mut mc_rng,
                        );
                    }
                }
            }
            let n = queries.len() as u32;
            row.rr_time /= n;
            row.irr_time /= n;
            row.rr_loaded /= n as u64;
            row.irr_loaded /= n as u64;
            row.irr_ios /= n as u64;

            // WRIS: fewer runs — it is the slow baseline.
            let wris_n = queries.len().min(scale.wris_queries);
            let mut wris_rng = SmallRng::seed_from_u64(2000 + k as u64);
            for q in queries.iter().take(wris_n) {
                let t0 = std::time::Instant::now();
                let result = wris_query(&model, &data.profiles, q, &wris_config, &mut wris_rng);
                row.wris_time += t0.elapsed();
                if with_spreads {
                    row.spread_wris += monte_carlo_targeted(
                        &model,
                        &data.profiles,
                        q,
                        &result.seeds,
                        scale.mc_rounds,
                        &mut mc_rng,
                    );
                }
            }
            row.wris_time /= wris_n as u32;
            if with_spreads {
                row.spread_rr /= mc_queries as f64;
                row.spread_irr /= mc_queries as f64;
                row.spread_wris /= wris_n as f64;
                if let Some(total) = row.spread_rr_hat.as_mut() {
                    *total /= mc_queries as f64;
                }
            }
            rows.push(row);
        }
        self.sweeps.insert(family, (with_spreads, rows));
        &self.sweeps[&family].1
    }

    // ------------------------------------------------------------------
    // Figure 5: query time and #RR sets loaded vs Q.k.
    // ------------------------------------------------------------------
    fn fig5(&mut self) {
        println!(
            "-- Figure 5: vary Q.k ({}-keyword queries; avg over {} queries)",
            self.ctx.scale.default_keywords, self.ctx.scale.queries_per_length
        );
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            let rows = self.k_sweep(family, false);
            let mut t = TextTable::new([
                "Q.k",
                "RR time",
                "IRR time",
                "WRIS time",
                "RR loaded",
                "IRR loaded",
            ]);
            for r in rows {
                t.row([
                    r.k.to_string(),
                    fmt_duration(r.rr_time),
                    fmt_duration(r.irr_time),
                    fmt_duration(r.wris_time),
                    r.rr_loaded.to_string(),
                    r.irr_loaded.to_string(),
                ]);
            }
            println!("{family:?}");
            t.print();
        }
    }

    // ------------------------------------------------------------------
    // Table 6: IRR I/O counts vs Q.k.
    // ------------------------------------------------------------------
    fn table6(&mut self) {
        println!("-- Table 6: number of positioned reads for IRR when varying Q.k");
        let headers: Vec<String> = std::iter::once("dataset".to_string())
            .chain(self.ctx.scale.k_values.iter().map(|k| format!("k={k}")))
            .collect();
        let mut t = TextTable::new(headers);
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            let rows = self.k_sweep(family, false);
            let cells: Vec<String> = std::iter::once(format!("{family:?}"))
                .chain(rows.iter().map(|r| r.irr_ios.to_string()))
                .collect();
            t.row(cells);
        }
        t.print();
    }

    // ------------------------------------------------------------------
    // Table 7: influence spread vs Q.k (Monte-Carlo ground truth).
    // ------------------------------------------------------------------
    fn table7(&mut self) {
        println!(
            "-- Table 7: targeted influence spread vs Q.k ({} MC rounds)",
            self.ctx.scale.mc_rounds
        );
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            let rows = self.k_sweep(family, true);
            let has_hat = rows.first().is_some_and(|r| r.spread_rr_hat.is_some());
            let mut headers = vec!["Q.k".to_string(), "WRIS".to_string()];
            if has_hat {
                headers.push("RR(th-hat)".to_string());
            }
            headers.push("RR".to_string());
            headers.push("IRR".to_string());
            let mut t = TextTable::new(headers);
            for r in rows {
                let mut cells = vec![r.k.to_string(), format!("{:.1}", r.spread_wris)];
                if let Some(hat) = r.spread_rr_hat {
                    cells.push(format!("{hat:.1}"));
                }
                cells.push(format!("{:.1}", r.spread_rr));
                cells.push(format!("{:.1}", r.spread_irr));
                t.row(cells);
            }
            println!("{family:?}");
            t.print();
        }
    }

    // ------------------------------------------------------------------
    // Figure 6: vary the number of query keywords.
    // ------------------------------------------------------------------
    fn fig6(&mut self) {
        println!(
            "-- Figure 6: vary |Q.T| (k = {}; avg over {} queries)",
            self.ctx.scale.default_k, self.ctx.scale.queries_per_length
        );
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            let size = self.default_size(family);
            let ctx = self.ctx.clone();
            let scale = ctx.scale.clone();
            let (index, _) = self.default_index(family, size);
            let data = &self.datasets[&(family, size)];
            let model = IcModel::weighted_cascade(&data.graph);
            let wris_config = ctx.wris_sampling();
            let mut t = TextTable::new([
                "|Q.T|",
                "RR time",
                "IRR time",
                "WRIS time",
                "RR loaded",
                "IRR loaded",
            ]);
            for &len in &scale.keyword_counts {
                let queries = ctx.queries(data, len, scale.default_k);
                let mut rr_time = Duration::ZERO;
                let mut irr_time = Duration::ZERO;
                let mut rr_loaded = 0u64;
                let mut irr_loaded = 0u64;
                for q in &queries {
                    let rr = index.query_rr(q).expect("rr");
                    let irr = index.query_irr(q).expect("irr");
                    rr_time += rr.stats.elapsed;
                    irr_time += irr.stats.elapsed;
                    rr_loaded += rr.stats.rr_sets_loaded;
                    irr_loaded += irr.stats.rr_sets_loaded;
                }
                let n = queries.len() as u32;
                let mut wris_time = Duration::ZERO;
                let wris_n = queries.len().min(scale.wris_queries);
                let mut rng = SmallRng::seed_from_u64(3000 + len as u64);
                for q in queries.iter().take(wris_n) {
                    let t0 = std::time::Instant::now();
                    let _ = wris_query(&model, &data.profiles, q, &wris_config, &mut rng);
                    wris_time += t0.elapsed();
                }
                t.row([
                    len.to_string(),
                    fmt_duration(rr_time / n),
                    fmt_duration(irr_time / n),
                    fmt_duration(wris_time / wris_n as u32),
                    (rr_loaded / n as u64).to_string(),
                    (irr_loaded / n as u64).to_string(),
                ]);
            }
            println!("{family:?}");
            t.print();
        }
    }

    // ------------------------------------------------------------------
    // Figure 7: vary the graph size.
    // ------------------------------------------------------------------
    fn fig7(&mut self) {
        println!(
            "-- Figure 7: vary |V| ({}-keyword queries, k = {})",
            self.ctx.scale.default_keywords, self.ctx.scale.default_k
        );
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            let ctx = self.ctx.clone();
            let scale = ctx.scale.clone();
            let mut t = TextTable::new([
                "dataset",
                "RR time",
                "IRR time",
                "WRIS time",
                "RR loaded",
                "IRR loaded",
            ]);
            for size in self.sizes(family) {
                let (index, queries) = self.default_index(family, size);
                let data = &self.datasets[&(family, size)];
                let model = IcModel::weighted_cascade(&data.graph);
                let wris_config = ctx.wris_sampling();
                let mut rr_time = Duration::ZERO;
                let mut irr_time = Duration::ZERO;
                let mut rr_loaded = 0u64;
                let mut irr_loaded = 0u64;
                for q in &queries {
                    let rr = index.query_rr(q).expect("rr");
                    let irr = index.query_irr(q).expect("irr");
                    rr_time += rr.stats.elapsed;
                    irr_time += irr.stats.elapsed;
                    rr_loaded += rr.stats.rr_sets_loaded;
                    irr_loaded += irr.stats.rr_sets_loaded;
                }
                let n = queries.len() as u32;
                let mut wris_time = Duration::ZERO;
                let wris_n = queries.len().min(scale.wris_queries);
                let mut rng = SmallRng::seed_from_u64(4000 + size as u64);
                for q in queries.iter().take(wris_n) {
                    let t0 = std::time::Instant::now();
                    let _ = wris_query(&model, &data.profiles, q, &wris_config, &mut rng);
                    wris_time += t0.elapsed();
                }
                t.row([
                    data.name.clone(),
                    fmt_duration(rr_time / n),
                    fmt_duration(irr_time / n),
                    fmt_duration(wris_time / wris_n as u32),
                    (rr_loaded / n as u64).to_string(),
                    (irr_loaded / n as u64).to_string(),
                ]);
            }
            println!("{family:?}");
            t.print();
        }
    }

    // ------------------------------------------------------------------
    // Table 8: example seeds per keyword, IC vs LT vs untargeted RIS.
    // ------------------------------------------------------------------
    fn table8(&mut self) {
        println!("-- Table 8: top-8 seeds per keyword (synthetic topics named after the paper's)");
        for family in [DatasetFamily::News, DatasetFamily::Twitter] {
            let size = self.default_size(family);
            let ctx = self.ctx.clone();
            let data = self.dataset(family, size);
            // Two popular held topics stand in for "software" / "journal".
            let mut held: Vec<u32> = (0..data.profiles.num_topics())
                .filter(|&w| data.profiles.doc_freq(w) > 0)
                .collect();
            held.sort_by_key(|&w| std::cmp::Reverse(data.profiles.doc_freq(w)));
            let keywords = [("software", held[1]), ("journal", held[4.min(held.len() - 1)])];

            let ic = IcModel::weighted_cascade(&data.graph);
            let mut lt_rng = SmallRng::seed_from_u64(88);
            let lt = LtModel::random_weights(&data.graph, &mut lt_rng);
            let sampling = ctx.wris_sampling();

            let mut t = TextTable::new(["method", "keyword", "top-8 seeds"]);
            for (label, model) in [("WRIS(IC)", &ic as &dyn TriggeringModel), ("WRIS(LT)", &lt)] {
                for (name, topic) in keywords {
                    let mut rng = SmallRng::seed_from_u64(55);
                    let q = Query::new([topic], 8);
                    let seeds = wris_query(model, &data.profiles, &q, &sampling, &mut rng).seeds;
                    t.row([label.to_string(), name.to_string(), format!("{seeds:?}")]);
                }
            }
            let mut rng = SmallRng::seed_from_u64(55);
            let ris = ris_query(&ic, 8, &sampling, &mut rng);
            t.row(["RIS".to_string(), "(any)".to_string(), format!("{:?}", ris.seeds)]);
            println!("{family:?}");
            t.print();
        }
    }
}
