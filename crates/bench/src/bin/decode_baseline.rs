//! Record a machine-readable baseline for the SIMD decode kernels and
//! the cross-batch prepared-query cache.
//!
//! Two layers, measured in one binary because they bound the same cost
//! — getting keyword postings from disk bytes to merged coverage:
//!
//! 1. **Kernel microbench** — `bitpack::unpack_block` throughput,
//!    scalar versus every SIMD tier this host supports, across the bit
//!    widths real indexes produce. Both paths decode the same packed
//!    blocks and the outputs are asserted equal, so the speedup numbers
//!    are backed by a bit-equality check in the bench itself.
//! 2. **Query-level cache run** — the same 100k-node news-family graph
//!    as `BENCH_batch.json`, served twice over several rounds of a hot
//!    keyword-set mix: once with the prepared-query cache off (every
//!    round decodes again) and once with it on (round one warms,
//!    later rounds skip decode entirely). The books prove it:
//!    `keywords_decoded` grows linearly without the cache and stays
//!    **flat** with it while the request count keeps growing.
//!
//! ```text
//! cargo run --release -p kbtim-bench --bin decode_baseline [--smoke] [OUT.json]
//! ```
//!
//! `--smoke` shrinks the dataset and round count for CI (and skips
//! writing the JSON unless a path is given explicitly). Methodology and
//! regeneration commands: `docs/BENCHMARKS.md`.

use kbtim_codec::bitpack::{pack_block, unpack_block_scalar, unpack_block_with, BLOCK_LEN};
use kbtim_codec::simd::{active_level, supported_levels, SimdLevel};
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{DatasetConfig, DatasetFamily};
use kbtim_index::{
    Algo, EngineRequest, IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, PageCache,
    QueryEngine, ServingMode, ThetaMode,
};
use kbtim_propagation::model::IcModel;
use kbtim_storage::{IoStats, TempDir};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const TOPICS: u32 = 16;
const WIDTHS: [u8; 10] = [1, 2, 4, 5, 8, 12, 16, 20, 25, 32];
const BATCH_WINDOW_US: u64 = 150;
const MERGE_CACHE_ENTRIES: usize = 64;

struct Config {
    users: u32,
    theta_cap: u64,
    /// Packed blocks per width in the kernel microbench.
    blocks: usize,
    /// Decode passes over those blocks per measurement.
    passes: usize,
    /// Rounds of the hot keyword-set mix in the cache run.
    rounds: usize,
}

/// Deterministic xorshift so the bench needs no RNG dependency and
/// packs identical blocks on every host.
fn xorshift(state: &mut u64) -> u32 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state >> 32) as u32
}

/// Decode `blocks` with `level` `passes` times; returns (million u32
/// per second, checksum) — the checksum forces the work and doubles as
/// the cross-level equality probe.
fn measure_unpack(packed: &[Vec<u8>], width: u8, level: SimdLevel, passes: usize) -> (f64, u64) {
    let mut out = Vec::with_capacity(BLOCK_LEN);
    let mut checksum = 0u64;
    let started = Instant::now();
    for _ in 0..passes {
        for block in packed {
            out.clear();
            let used = unpack_block_with(level, block, width, &mut out).expect("bench block");
            assert_eq!(used, block.len());
            checksum = checksum.wrapping_add(out.iter().map(|&v| u64::from(v)).sum::<u64>());
        }
    }
    let decoded = (passes * packed.len() * BLOCK_LEN) as f64;
    (decoded / started.elapsed().as_secs_f64() / 1e6, checksum)
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = Some(other.to_string()),
        }
    }
    let config = if smoke {
        Config { users: 2_000, theta_cap: 800, blocks: 256, passes: 20, rounds: 4 }
    } else {
        Config { users: 100_000, theta_cap: 4_000, blocks: 4_096, passes: 200, rounds: 10 }
    };
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // ---- Layer 1: unpack kernel, scalar vs every supported tier. ----
    let active = active_level();
    eprintln!(
        "simd: active {} (supported: {})",
        active.name(),
        supported_levels().iter().map(|l| l.name()).collect::<Vec<_>>().join(", ")
    );
    let mut width_rows = Vec::new();
    for width in WIDTHS {
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        let mut state = SEED | 1;
        let packed: Vec<Vec<u8>> = (0..config.blocks)
            .map(|_| {
                let values: Vec<u32> =
                    (0..BLOCK_LEN).map(|_| xorshift(&mut state) & mask).collect();
                let mut out = Vec::new();
                pack_block(&values, width, &mut out);
                out
            })
            .collect();
        // Scalar reference throughput via the same dispatch entry the
        // oracle tests use.
        let mut scalar_out = Vec::with_capacity(BLOCK_LEN);
        let scalar_check: u64 = packed
            .iter()
            .map(|block| {
                scalar_out.clear();
                unpack_block_scalar(block, width, &mut scalar_out).expect("bench block");
                scalar_out.iter().map(|&v| u64::from(v)).sum::<u64>()
            })
            .sum();
        let (scalar_mps, scalar_sum) =
            measure_unpack(&packed, width, SimdLevel::Scalar, config.passes);
        assert_eq!(scalar_sum, scalar_check.wrapping_mul(config.passes as u64));
        let (simd_mps, simd_sum) = measure_unpack(&packed, width, active, config.passes);
        assert_eq!(simd_sum, scalar_sum, "width {width}: SIMD decode diverged from scalar");
        let speedup = simd_mps / scalar_mps;
        eprintln!(
            "width {width:>2}: scalar {scalar_mps:>8.1} Mu32/s, {} {simd_mps:>8.1} Mu32/s \
             ({speedup:.2}x)",
            active.name()
        );
        width_rows.push(format!(
            r#"    "{width}": {{ "scalar_mu32_per_s": {scalar_mps:.1}, "simd_mu32_per_s": {simd_mps:.1}, "speedup": {speedup:.3} }}"#
        ));
    }

    // ---- Layer 2: cold vs cached serving on the news graph. ----
    eprintln!("generating news-family dataset ({} users, {TOPICS} topics)...", config.users);
    let data = DatasetConfig::family(DatasetFamily::News)
        .num_users(config.users)
        .num_topics(TOPICS)
        .seed(6)
        .build();
    let model = IcModel::weighted_cascade(&data.graph);
    eprintln!("building IRR index...");
    let build_config = IndexBuildConfig {
        sampling: SamplingConfig {
            theta_cap: Some(config.theta_cap),
            opt_initial_samples: 128,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        },
        theta_mode: ThetaMode::Compact,
        variant: IndexVariant::Irr { partition_size: 100 },
        threads: host_threads,
        seed: SEED,
        ..IndexBuildConfig::default()
    };
    let dir = TempDir::new("decode-baseline-idx").unwrap();
    let report = IndexBuilder::new(&model, &data.profiles, build_config).build(dir.path()).unwrap();
    eprintln!(
        "index built: Σθ_w = {}, {:.1} MiB, {:.1}s",
        report.total_theta,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed.as_secs_f64()
    );

    let mut index =
        KbtimIndex::open_shared(dir.path(), IoStats::new(), ServingMode::Mmap, PageCache::global())
            .unwrap();
    index.set_threads(Some(1));
    let index = Arc::new(index);
    let window = Some(Duration::from_micros(BATCH_WINDOW_US));
    let cold = Arc::new(QueryEngine::new(Arc::clone(&index)).with_batch_window(window));
    let cached = Arc::new(
        QueryEngine::new(index).with_batch_window(window).with_merge_cache(MERGE_CACHE_ENTRIES),
    );

    // The hot mix: 5 overlapping topic sets × 3 seed counts × rr/irr —
    // 30 distinct requests, same shape as `BENCH_batch.json`'s per-
    // client mix, so the two baselines compose.
    let topic_sets: [&[u32]; 5] = [&[0, 1], &[0, 1, 2], &[1, 2], &[2, 3], &[0, 3]];
    let mix: Vec<EngineRequest> = topic_sets
        .iter()
        .flat_map(|&topics| {
            [5u32, 15, 25].into_iter().flat_map(move |k| {
                [Algo::Rr, Algo::Irr].into_iter().map(move |algo| EngineRequest {
                    topics: topics.to_vec(),
                    k,
                    algo,
                })
            })
        })
        .collect();
    let expected: Vec<Vec<u32>> =
        mix.iter().map(|req| cold.execute(req).unwrap().seeds.clone()).collect();

    // `(requests_so_far, keywords_decoded_so_far)` after each round, per
    // engine: the cache's contract is the second column going flat.
    let mut round_rows = Vec::new();
    let mut cold_qps = 0.0;
    let mut cached_qps = 0.0;
    for (label, engine, qps_out) in
        [("cold", &cold, &mut cold_qps), ("cached", &cached, &mut cached_qps)]
    {
        let mut books = Vec::new();
        let started = Instant::now();
        for _ in 0..config.rounds {
            for (req, want) in mix.iter().zip(&expected) {
                let outcome = engine.query(req).unwrap();
                assert_eq!(&outcome.seeds, want, "{label} engine diverged from serial");
            }
            books.push((engine.batched_requests(), engine.keywords_decoded()));
        }
        *qps_out = (config.rounds * mix.len()) as f64 / started.elapsed().as_secs_f64();
        eprintln!("{label}: {:.0} qps; (requests, keywords_decoded) by round: {books:?}", *qps_out);
        round_rows.push((label, books));
    }

    // The headline invariant, asserted rather than eyeballed: with the
    // cache every post-warmup round decodes nothing new, without it
    // every round decodes the full mix again.
    let cold_books = &round_rows[0].1;
    let cached_books = &round_rows[1].1;
    assert!(
        cold_books[config.rounds - 1].1 >= cold_books[0].1 * config.rounds as u64,
        "cold keywords_decoded must grow every round"
    );
    let warm = cached_books[0].1;
    for (requests, decoded) in &cached_books[1..] {
        assert_eq!(
            *decoded, warm,
            "cached keywords_decoded must stay flat after warmup (at {requests} requests)"
        );
    }
    assert_eq!(cached.merge_cache_misses(), topic_sets.len() as u64, "one miss per hot set");
    assert!(cached.merge_cache_hits() > 0);
    eprintln!(
        "cache books: {} hits, {} misses, {} evictions, {} entries, {} bytes resident",
        cached.merge_cache_hits(),
        cached.merge_cache_misses(),
        cached.merge_cache_evictions(),
        cached.merge_cache_len(),
        cached.merge_cache_bytes(),
    );

    if smoke && out_path.is_none() {
        eprintln!("smoke run: SIMD bit-identical to scalar, cached books flat; no JSON written");
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_decode.json".to_string());
    let books_json = |books: &[(u64, u64)]| {
        books
            .iter()
            .map(|(requests, decoded)| {
                format!(r#"      {{ "requests": {requests}, "keywords_decoded": {decoded} }}"#)
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        r#"{{
  "bench": "decode",
  "methodology": "docs/BENCHMARKS.md",
  "host_available_parallelism": {host_threads},
  "simd": {{ "active": "{active}", "supported": [{supported}] }},
  "unpack_blocks": {blocks},
  "unpack_widths": {{
{width_rows}
  }},
  "graph": {{ "family": "news", "nodes": {nodes}, "edges": {edges} }},
  "seed": {SEED},
  "index": {{ "users": {users}, "topics": {TOPICS}, "theta_cap": {theta_cap}, "variant": "irr", "partition_size": 100, "total_theta": {total_theta} }},
  "serving_mode": "mmap (process-wide page cache)",
  "batch_window_us": {BATCH_WINDOW_US},
  "merge_cache_entries": {MERGE_CACHE_ENTRIES},
  "request_mix": "30 distinct requests: 5 overlapping topic sets x k in (5,15,25) x rr/irr, {rounds} serial rounds",
  "comparable_to": "BENCH_batch.json (same graph, index config, mix shape)",
  "answers_bit_identical_to_serial": true,
  "cold_qps": {cold_qps:.1},
  "cached_qps": {cached_qps:.1},
  "cold_rounds": [
{cold_rows}
  ],
  "cached_rounds": [
{cached_rows}
  ],
  "cache_books": {{ "hits": {hits}, "misses": {misses}, "evictions": {evictions}, "entries": {entries}, "bytes_resident": {bytes} }}
}}
"#,
        active = active.name(),
        supported = supported_levels()
            .iter()
            .map(|l| format!("\"{}\"", l.name()))
            .collect::<Vec<_>>()
            .join(", "),
        blocks = config.blocks,
        width_rows = width_rows.join(",\n"),
        nodes = data.graph.num_nodes(),
        edges = data.graph.num_edges(),
        users = config.users,
        theta_cap = config.theta_cap,
        total_theta = report.total_theta,
        rounds = config.rounds,
        cold_rows = books_json(cold_books),
        cached_rows = books_json(cached_books),
        hits = cached.merge_cache_hits(),
        misses = cached.merge_cache_misses(),
        evictions = cached.merge_cache_evictions(),
        entries = cached.merge_cache_len(),
        bytes = cached.merge_cache_bytes(),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
