//! Benchmark harness for the KB-TIM paper's evaluation (§6).
//!
//! Two consumers share this crate:
//!
//! * the `experiments` binary (`cargo run --release -p kbtim-bench --bin
//!   experiments`) regenerates **every table and figure** of the paper as
//!   text rows — the per-experiment index lives in `DESIGN.md`;
//! * the Criterion benches (`cargo bench`) time the hot paths and the
//!   ablations on small fixtures.
//!
//! Indexes are cached under a root directory keyed by dataset + build
//! configuration, so query experiments do not pay repeated build costs
//! and build experiments report the originally measured times.

pub mod legacy;
pub mod scale;
pub mod setup;
pub mod table;

pub use scale::ExpScale;
pub use setup::ExpContext;
