//! Minimal aligned text tables for experiment output.

/// A column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> TextTable {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns, a header underline and a trailing blank
    /// line.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push('\n');
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a byte count as a human-readable string.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Format a duration in engineering style (µs / ms / s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // header, rule, 2 rows, trailing blank
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.0 MiB");
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }
}
