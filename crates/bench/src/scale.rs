//! Experiment scale presets.
//!
//! The paper ran on a 60 GB server against graphs with up to 1.3 B edges;
//! this reproduction targets laptops. Two presets keep the *shape* of
//! every experiment while bounding wall-clock time; `full` is the scale
//! reported in `EXPERIMENTS.md`.

/// All knobs that size an experiment run.
#[derive(Debug, Clone)]
pub struct ExpScale {
    /// Preset name ("small" / "full"), echoed in report headers.
    pub name: &'static str,
    /// News-family |V| sweep (paper: 0.2M–1.4M).
    pub news_sizes: Vec<u32>,
    /// Twitter-family |V| sweep (paper: 10M–40M).
    pub twitter_sizes: Vec<u32>,
    /// Topic-space size (paper: 200).
    pub num_topics: u32,
    /// Per-keyword θ cap for news builds (see DESIGN.md on caps).
    pub news_theta_cap: u64,
    /// Per-keyword θ cap for twitter builds.
    pub twitter_theta_cap: u64,
    /// θ cap used by the *online* WRIS baseline at query time.
    pub wris_theta_cap: u64,
    /// Queries measured per data point (paper: 100).
    pub queries_per_length: usize,
    /// Queries measured per data point for the slow WRIS baseline.
    pub wris_queries: usize,
    /// The `Q.k` sweep of Figure 5 / Tables 6–7.
    pub k_values: Vec<u32>,
    /// The `|Q.T|` sweep of Figure 6.
    pub keyword_counts: Vec<usize>,
    /// Default `Q.k` (paper: 30).
    pub default_k: u32,
    /// Default `|Q.T|` (paper: 5).
    pub default_keywords: usize,
    /// Monte-Carlo rounds for spread ground truth (Table 7).
    pub mc_rounds: u32,
    /// ε used everywhere (paper: 0.1; see DESIGN.md).
    pub eps: f64,
    /// `K` — the Q.k upper bound baked into the index (paper: 100).
    pub k_max: u32,
}

impl ExpScale {
    /// Minutes-scale smoke preset.
    pub fn small() -> ExpScale {
        ExpScale {
            name: "small",
            news_sizes: vec![5_000, 10_000, 15_000, 20_000],
            twitter_sizes: vec![3_000, 5_000, 8_000, 10_000],
            num_topics: 24,
            news_theta_cap: 15_000,
            twitter_theta_cap: 10_000,
            wris_theta_cap: 150_000,
            queries_per_length: 5,
            wris_queries: 2,
            k_values: vec![10, 20, 30, 40, 50],
            keyword_counts: vec![1, 2, 3, 4, 5, 6],
            default_k: 30,
            default_keywords: 5,
            mc_rounds: 2_000,
            // ε = 1.0 keeps the θ formulas un-capped at laptop scale so the
            // growth trends of Tables 3/5 and Figure 7 are visible; the
            // bound is a uniform 1/ε² factor (DESIGN.md).
            eps: 1.0,
            k_max: 50,
        }
    }

    /// The scale recorded in `EXPERIMENTS.md` (÷10 news, ÷1000 twitter vs
    /// the paper).
    pub fn full() -> ExpScale {
        ExpScale {
            name: "full",
            news_sizes: vec![20_000, 60_000, 100_000, 140_000],
            twitter_sizes: vec![10_000, 20_000, 30_000, 40_000],
            num_topics: 48,
            news_theta_cap: 40_000,
            twitter_theta_cap: 25_000,
            wris_theta_cap: 400_000,
            queries_per_length: 10,
            wris_queries: 1,
            k_values: vec![10, 15, 20, 25, 30, 35, 40, 45, 50],
            keyword_counts: vec![1, 2, 3, 4, 5, 6],
            default_k: 30,
            default_keywords: 5,
            mc_rounds: 2_000,
            // See ExpScale::small on ε.
            eps: 1.0,
            k_max: 50,
        }
    }

    /// Tiny preset for the Criterion micro-benches.
    pub fn bench() -> ExpScale {
        ExpScale {
            name: "bench",
            news_sizes: vec![2_000],
            twitter_sizes: vec![2_000],
            num_topics: 12,
            news_theta_cap: 4_000,
            twitter_theta_cap: 3_000,
            wris_theta_cap: 20_000,
            queries_per_length: 3,
            wris_queries: 1,
            k_values: vec![10, 30, 50],
            keyword_counts: vec![1, 3, 6],
            default_k: 30,
            default_keywords: 3,
            mc_rounds: 500,
            eps: 0.5,
            k_max: 50,
        }
    }

    /// Parse a preset by name.
    pub fn by_name(name: &str) -> Option<ExpScale> {
        match name {
            "small" => Some(ExpScale::small()),
            "full" => Some(ExpScale::full()),
            "bench" => Some(ExpScale::bench()),
            _ => None,
        }
    }

    /// The "default" dataset sizes used by single-dataset experiments
    /// (paper: n0.6M and t10M).
    pub fn default_news_size(&self) -> u32 {
        self.news_sizes.get(1).copied().unwrap_or(self.news_sizes[0])
    }

    /// See [`ExpScale::default_news_size`].
    pub fn default_twitter_size(&self) -> u32 {
        self.twitter_sizes[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        for name in ["small", "full", "bench"] {
            let scale = ExpScale::by_name(name).unwrap();
            assert_eq!(scale.name, name);
            assert!(!scale.news_sizes.is_empty());
            assert!(!scale.twitter_sizes.is_empty());
        }
        assert!(ExpScale::by_name("nope").is_none());
    }

    #[test]
    fn full_matches_scaled_table2() {
        let full = ExpScale::full();
        assert_eq!(full.news_sizes, vec![20_000, 60_000, 100_000, 140_000]);
        assert_eq!(full.twitter_sizes, vec![10_000, 20_000, 30_000, 40_000]);
        assert_eq!(full.k_values.len(), 9);
        assert_eq!(full.default_k, 30);
        assert_eq!(full.default_keywords, 5);
    }

    #[test]
    fn default_sizes() {
        let s = ExpScale::small();
        assert_eq!(s.default_news_size(), 10_000);
        assert_eq!(s.default_twitter_size(), 3_000);
    }
}
