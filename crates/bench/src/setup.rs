//! Dataset construction and cached index builds for experiments.

use crate::scale::ExpScale;
use kbtim_codec::Codec;
use kbtim_core::theta::SamplingConfig;
use kbtim_datagen::{news_shape, twitter_edges_per_node, Dataset, DatasetConfig, DatasetFamily};
use kbtim_index::{IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, ThetaMode};
use kbtim_propagation::model::IcModel;
use kbtim_storage::IoStats;
use kbtim_topics::workload::QueryWorkloadConfig;
use kbtim_topics::Query;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Everything an experiment needs: the scale preset and a cache root.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Size / budget preset.
    pub scale: ExpScale,
    /// Directory that caches built indexes between runs.
    pub root: PathBuf,
}

/// Summary of a (possibly cached) index build.
#[derive(Debug, Clone)]
pub struct CachedBuild {
    /// Index directory.
    pub dir: PathBuf,
    /// Σ θ_w.
    pub total_theta: u64,
    /// Mean RR-set size.
    pub mean_rr_size: f64,
    /// Total bytes on disk.
    pub total_bytes: u64,
    /// Build wall time (the original one if served from cache).
    pub elapsed: Duration,
    /// Whether this call rebuilt the index or reused the cache.
    pub from_cache: bool,
}

impl ExpContext {
    /// Context rooted at `root` (usually `target/kbtim-exp`).
    pub fn new(scale: ExpScale, root: impl AsRef<Path>) -> ExpContext {
        ExpContext { scale, root: root.as_ref().to_path_buf() }
    }

    /// Deterministic dataset for a family at a given size.
    pub fn dataset(&self, family: DatasetFamily, num_users: u32) -> Dataset {
        let mut config =
            DatasetConfig::family(family).num_users(num_users).num_topics(self.scale.num_topics);
        match family {
            DatasetFamily::Twitter => {
                config = config.edges_per_node(twitter_edges_per_node(num_users));
            }
            DatasetFamily::News => {
                let (m, recip) = news_shape(num_users);
                config = config.edges_per_node(m).reciprocal_prob(recip);
            }
        }
        config.build()
    }

    /// Sampling settings for index builds of a family.
    pub fn sampling(&self, family: DatasetFamily) -> SamplingConfig {
        let cap = match family {
            DatasetFamily::News => self.scale.news_theta_cap,
            DatasetFamily::Twitter => self.scale.twitter_theta_cap,
        };
        SamplingConfig {
            eps: self.scale.eps,
            k_max: self.scale.k_max,
            theta_cap: Some(cap),
            ..SamplingConfig::fast()
        }
    }

    /// Sampling settings for the online WRIS baseline. OPT estimation is
    /// bounded (512 → ~16k samples) so a WRIS measurement reflects the
    /// sampling pipeline rather than an unbounded estimator refinement.
    pub fn wris_sampling(&self) -> SamplingConfig {
        SamplingConfig {
            eps: self.scale.eps,
            k_max: self.scale.k_max,
            theta_cap: Some(self.scale.wris_theta_cap),
            opt_initial_samples: 512,
            opt_max_rounds: 6,
            ..SamplingConfig::fast()
        }
    }

    /// The standard measured query workload for a dataset: fixed keyword
    /// count, `queries_per_length` queries, given `k`.
    pub fn queries(&self, data: &Dataset, keywords: usize, k: u32) -> Vec<Query> {
        data.queries(QueryWorkloadConfig {
            min_keywords: keywords,
            max_keywords: keywords,
            queries_per_length: self.scale.queries_per_length,
            k,
            keyword_skew: 1.0,
        })
    }

    /// Build (or load from cache) an index for `data` under the given
    /// configuration knobs; `theta_cap` overrides the family default when
    /// provided (Table 3 uses a higher cap to expose the θ̂/θ contrast).
    pub fn build_or_load(
        &self,
        data: &Dataset,
        codec: Codec,
        variant: IndexVariant,
        theta_mode: ThetaMode,
        theta_cap: Option<u64>,
    ) -> CachedBuild {
        let sampling = SamplingConfig {
            theta_cap: theta_cap.or(self.sampling(data.family).theta_cap),
            ..self.sampling(data.family)
        };
        let tag = cache_tag(data, codec, variant, theta_mode, &sampling);
        let dir = self.root.join(&tag);
        let report_path = dir.join("report.txt");
        if let Some(cached) = load_report(&report_path, &dir) {
            return cached;
        }

        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling,
            codec,
            theta_mode,
            variant,
            threads: 8,
            seed: 42,
            shards: 1,
        };
        let report = IndexBuilder::new(&model, &data.profiles, config)
            .build(&dir)
            .expect("index build failed");
        let cached = CachedBuild {
            dir: dir.clone(),
            total_theta: report.total_theta,
            mean_rr_size: report.mean_rr_size,
            total_bytes: report.total_bytes,
            elapsed: report.elapsed,
            from_cache: false,
        };
        save_report(&report_path, &cached);
        cached
    }

    /// Open an index previously produced by
    /// [`ExpContext::build_or_load`].
    pub fn open(&self, build: &CachedBuild) -> KbtimIndex {
        KbtimIndex::open(&build.dir, IoStats::new()).expect("open index")
    }
}

fn cache_tag(
    data: &Dataset,
    codec: Codec,
    variant: IndexVariant,
    theta_mode: ThetaMode,
    sampling: &SamplingConfig,
) -> String {
    let codec_tag = match codec {
        Codec::Raw => "raw",
        Codec::Packed => "packed",
    };
    let variant_tag = match variant {
        IndexVariant::Rr => "rr".to_string(),
        IndexVariant::Irr { partition_size } => format!("irr{partition_size}"),
    };
    let mode_tag = match theta_mode {
        ThetaMode::Conservative => "cons",
        ThetaMode::Compact => "compact",
    };
    format!(
        "{}-{}t-{codec_tag}-{variant_tag}-{mode_tag}-cap{}-eps{}",
        data.name,
        data.profiles.num_topics(),
        sampling.theta_cap.unwrap_or(0),
        (sampling.eps * 100.0) as u32
    )
}

fn save_report(path: &Path, build: &CachedBuild) {
    let body = format!(
        "total_theta={}\nmean_rr_size={}\ntotal_bytes={}\nelapsed_us={}\n",
        build.total_theta,
        build.mean_rr_size,
        build.total_bytes,
        build.elapsed.as_micros()
    );
    std::fs::write(path, body).expect("write build report");
}

fn load_report(path: &Path, dir: &Path) -> Option<CachedBuild> {
    let body = std::fs::read_to_string(path).ok()?;
    let mut total_theta = None;
    let mut mean_rr_size = None;
    let mut total_bytes = None;
    let mut elapsed_us = None;
    for line in body.lines() {
        let (key, value) = line.split_once('=')?;
        match key {
            "total_theta" => total_theta = value.parse::<u64>().ok(),
            "mean_rr_size" => mean_rr_size = value.parse::<f64>().ok(),
            "total_bytes" => total_bytes = value.parse::<u64>().ok(),
            "elapsed_us" => elapsed_us = value.parse::<u64>().ok(),
            _ => {}
        }
    }
    Some(CachedBuild {
        dir: dir.to_path_buf(),
        total_theta: total_theta?,
        mean_rr_size: mean_rr_size?,
        total_bytes: total_bytes?,
        elapsed: Duration::from_micros(elapsed_us?),
        from_cache: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_storage::TempDir;

    fn tiny_context(root: &Path) -> ExpContext {
        let mut scale = ExpScale::bench();
        scale.news_sizes = vec![300];
        scale.news_theta_cap = 500;
        ExpContext::new(scale, root)
    }

    #[test]
    fn build_then_cache_hit() {
        let root = TempDir::new("exp-cache").unwrap();
        let ctx = tiny_context(root.path());
        let data = ctx.dataset(DatasetFamily::News, 300);
        let first = ctx.build_or_load(
            &data,
            Codec::Packed,
            IndexVariant::Irr { partition_size: 50 },
            ThetaMode::Compact,
            None,
        );
        assert!(!first.from_cache);
        let second = ctx.build_or_load(
            &data,
            Codec::Packed,
            IndexVariant::Irr { partition_size: 50 },
            ThetaMode::Compact,
            None,
        );
        assert!(second.from_cache);
        assert_eq!(first.total_theta, second.total_theta);
        assert_eq!(first.total_bytes, second.total_bytes);
        // The report stores microseconds, so compare at that granularity.
        assert_eq!(first.elapsed.as_micros(), second.elapsed.as_micros());

        let index = ctx.open(&second);
        let queries = ctx.queries(&data, 2, 5);
        assert!(!queries.is_empty());
        let outcome = index.query_irr(&queries[0]).unwrap();
        assert!(outcome.stats.theta_q > 0);
    }

    #[test]
    fn different_configs_get_different_dirs() {
        let root = TempDir::new("exp-tags").unwrap();
        let ctx = tiny_context(root.path());
        let data = ctx.dataset(DatasetFamily::News, 300);
        let a = ctx.build_or_load(&data, Codec::Packed, IndexVariant::Rr, ThetaMode::Compact, None);
        let b = ctx.build_or_load(&data, Codec::Raw, IndexVariant::Rr, ThetaMode::Compact, None);
        assert_ne!(a.dir, b.dir);
        assert!(b.total_bytes > a.total_bytes, "raw must be bigger than packed");
    }

    #[test]
    fn twitter_density_applied() {
        let root = TempDir::new("exp-density").unwrap();
        let ctx = tiny_context(root.path());
        let news = ctx.dataset(DatasetFamily::News, 2_000);
        let twitter = ctx.dataset(DatasetFamily::Twitter, 2_000);
        assert!(twitter.graph.avg_degree() > 2.0 * news.graph.avg_degree());
    }
}
