//! Frozen copy of the pre-arena coverage data path, kept **only** as a
//! measurement baseline.
//!
//! Before the flat refactor, the invert + greedy stage ran on
//! `HashMap<NodeId, Vec<u32>>` inverted lists, a `Vec<bool>` covered
//! array and a `HashSet` of selected nodes. The production code now uses
//! `kbtim_core::invindex::InvertedIndex` + the bitset CELF loop; this
//! module preserves the old shape verbatim (sequential variant) so
//! `a7_flat_datapath` and the `flat_baseline` binary can report an
//! honest before/after on identical instances. Do not use outside
//! benchmarks.

use kbtim_core::maxcover::MaxCoverResult;
use kbtim_graph::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Node → sorted set-id lists, hash-map shape (the pre-arena `invert`).
pub fn invert_hashmap(sets: &[Vec<NodeId>]) -> HashMap<NodeId, Vec<u32>> {
    let mut inverted: HashMap<NodeId, Vec<u32>> = HashMap::new();
    for (i, set) in sets.iter().enumerate() {
        for &node in set {
            let list = inverted.entry(node).or_default();
            if list.last() != Some(&(i as u32)) {
                list.push(i as u32);
            }
        }
    }
    inverted
}

/// Sequential lazy CELF over hash-map inverted lists — the pre-arena
/// `greedy_max_cover_inverted`, byte for byte (minus the parallel-refresh
/// arm, which never fires on a sequential pool).
pub fn greedy_max_cover_hashmap(
    inverted: &HashMap<NodeId, Vec<u32>>,
    num_sets: u64,
    k: u32,
) -> MaxCoverResult {
    let mut covered = vec![false; num_sets as usize];
    let mut heap: BinaryHeap<(u64, Reverse<NodeId>)> =
        inverted.iter().map(|(&node, list)| (list.len() as u64, Reverse(node))).collect();
    let mut result = MaxCoverResult { seeds: Vec::new(), marginal_gains: Vec::new(), covered: 0 };
    let mut selected: HashSet<NodeId> = HashSet::new();

    let recount = |node: NodeId, covered: &[bool]| -> u64 {
        inverted[&node].iter().filter(|&&s| !covered[s as usize]).count() as u64
    };

    while (result.seeds.len() as u32) < k {
        let Some(&(stale_gain, Reverse(node))) = heap.peek() else { break };
        if stale_gain == 0 {
            break;
        }
        heap.pop();
        if selected.contains(&node) {
            continue;
        }
        let gain = recount(node, &covered);
        if gain == stale_gain {
            result.seeds.push(node);
            result.marginal_gains.push(gain);
            result.covered += gain;
            selected.insert(node);
            for &s in &inverted[&node] {
                covered[s as usize] = true;
            }
        } else {
            heap.push((gain, Reverse(node)));
        }
    }
    result
}

/// The whole legacy stage: hash-map inversion + hash-map CELF.
pub fn invert_and_cover_hashmap(sets: &[Vec<NodeId>], k: u32) -> MaxCoverResult {
    greedy_max_cover_hashmap(&invert_hashmap(sets), sets.len() as u64, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_core::maxcover::greedy_max_cover;

    #[test]
    fn legacy_agrees_with_flat_production_path() {
        let mut state = 17u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let sets: Vec<Vec<NodeId>> = (0..500)
            .map(|_| {
                let len = 1 + (next() % 6) as usize;
                let mut set: Vec<u32> = (0..len).map(|_| next() % 80).collect();
                set.sort_unstable();
                set.dedup();
                set
            })
            .collect();
        for k in [0u32, 1, 10, 40] {
            assert_eq!(invert_and_cover_hashmap(&sets, k), greedy_max_cover(&sets, k), "k={k}");
        }
    }
}
