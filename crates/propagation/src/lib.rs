//! Influence propagation models and estimators for KB-TIM (§2.1).
//!
//! Everything is expressed through the **general triggering model** of
//! Kempe et al.: each node `v` independently samples a *trigger set* — a
//! random subset of its in-neighbours — and `v` becomes active as soon as
//! any member of its trigger set is active. Both models evaluated in the
//! paper are instances:
//!
//! * **Independent cascade (IC)** — every in-edge `(u, v)` joins the
//!   trigger set independently with probability `p(u, v)`; the paper uses
//!   the weighted-cascade assignment `p(e) = 1/N_v`.
//! * **Linear threshold (LT)** — at most one in-neighbour is chosen, with
//!   probability equal to its edge weight (weights per node sum to ≤ 1);
//!   the paper assigns random normalised weights.
//!
//! The equivalence between trigger-set sampling and the step-by-step
//! cascade is the classic *live-edge* argument, and it is what makes
//! reverse-reachable (RR) sampling model-agnostic: an RR set for root `v`
//! is exactly the set of nodes that reach `v` through live edges, obtained
//! by a reverse BFS that samples trigger sets on demand ([`rr`]).
//!
//! [`spread`] provides forward Monte-Carlo estimation of `E[I(S)]` and the
//! targeted `E[I^Q(S)]`, plus *exact* enumeration for tiny graphs used to
//! pin down the paper's worked examples in tests.

pub mod batch;
pub mod model;
pub mod rr;
pub mod spread;
pub mod triggering;

pub use batch::RrBatch;
pub use model::{IcModel, LtModel, TriggeringModel};
pub use rr::{sample_batch, RrSampler};
pub use triggering::TableTriggeringModel;
