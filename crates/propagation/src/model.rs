//! The triggering-model trait and its IC / LT instances.

use kbtim_graph::{Graph, NodeId};
use rand::{Rng, RngCore};

/// A propagation model in triggering form.
///
/// Implementations hold a reference to the graph and know, for every node
/// `v`, the distribution of its random trigger set (a subset of
/// `in_neighbors(v)`). All of RR sampling, Monte-Carlo spread and the exact
/// enumerators are generic over this trait, mirroring the paper's claim
/// that WRIS inherits RIS's support for any triggering model.
pub trait TriggeringModel: Send + Sync {
    /// The graph this model propagates over.
    fn graph(&self) -> &Graph;

    /// Sample a trigger set for `v` into `out` (cleared first).
    ///
    /// Members are in-neighbours of `v`; order is unspecified.
    fn sample_triggers(&self, v: NodeId, rng: &mut dyn RngCore, out: &mut Vec<NodeId>);

    /// Exact trigger-set distribution of `v` as `(set, probability)` pairs
    /// summing to 1. Used by the exact spread enumerators in tests; may be
    /// exponentially large in `in_degree(v)` for IC, so callers cap degree.
    fn trigger_distribution(&self, v: NodeId) -> Vec<(Vec<NodeId>, f64)>;

    /// Short human-readable name ("IC" / "LT"), used in experiment tables.
    fn name(&self) -> &'static str;
}

/// How IC edge probabilities are assigned.
#[derive(Debug, Clone, Copy, PartialEq)]
enum IcAssignment {
    /// `p(u, v) = 1 / in_degree(v)` — the paper's default (§2.1).
    WeightedCascade,
    /// Constant probability for every edge.
    Uniform(f64),
    /// Explicit per-edge probabilities (stored separately).
    PerEdge,
}

/// Independent cascade model.
///
/// Each in-edge of `v` enters the trigger set independently with its own
/// probability.
pub struct IcModel<'g> {
    graph: &'g Graph,
    assignment: IcAssignment,
    /// Per-edge probabilities aligned with `graph.in_neighbors(v)` order,
    /// indexed by `rev_offsets[v] + i`. Empty unless `PerEdge`.
    probs: Vec<f32>,
    rev_offsets: Vec<u64>,
}

impl<'g> IcModel<'g> {
    /// The paper's weighted-cascade assignment `p(e) = 1/N_v`.
    pub fn weighted_cascade(graph: &'g Graph) -> IcModel<'g> {
        IcModel {
            graph,
            assignment: IcAssignment::WeightedCascade,
            probs: Vec::new(),
            rev_offsets: Vec::new(),
        }
    }

    /// Constant probability `p` on every edge.
    pub fn uniform(graph: &'g Graph, p: f64) -> IcModel<'g> {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        IcModel {
            graph,
            assignment: IcAssignment::Uniform(p),
            probs: Vec::new(),
            rev_offsets: Vec::new(),
        }
    }

    /// Explicit probabilities via a function of the edge `(u, v)`.
    pub fn from_fn(graph: &'g Graph, mut f: impl FnMut(NodeId, NodeId) -> f64) -> IcModel<'g> {
        let rev_offsets = reverse_offsets(graph);
        let mut probs = Vec::with_capacity(graph.num_edges() as usize);
        for v in graph.nodes() {
            for &u in graph.in_neighbors(v) {
                let p = f(u, v);
                assert!((0.0..=1.0).contains(&p), "probability {p} for edge ({u},{v})");
                probs.push(p as f32);
            }
        }
        IcModel { graph, assignment: IcAssignment::PerEdge, probs, rev_offsets }
    }

    /// Probability of edge `(u, v)`; `u` must be an in-neighbour of `v`.
    pub fn edge_prob(&self, u: NodeId, v: NodeId) -> f64 {
        match self.assignment {
            IcAssignment::WeightedCascade => 1.0 / self.graph.in_degree(v) as f64,
            IcAssignment::Uniform(p) => p,
            IcAssignment::PerEdge => {
                let idx = self
                    .graph
                    .in_neighbors(v)
                    .binary_search(&u)
                    .expect("u is not an in-neighbor of v");
                self.probs[self.rev_offsets[v as usize] as usize + idx] as f64
            }
        }
    }
}

impl TriggeringModel for IcModel<'_> {
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn sample_triggers(&self, v: NodeId, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        out.clear();
        let neighbors = self.graph.in_neighbors(v);
        match self.assignment {
            IcAssignment::WeightedCascade => {
                let p = 1.0 / neighbors.len().max(1) as f64;
                for &u in neighbors {
                    if rng.gen::<f64>() < p {
                        out.push(u);
                    }
                }
            }
            IcAssignment::Uniform(p) => {
                for &u in neighbors {
                    if rng.gen::<f64>() < p {
                        out.push(u);
                    }
                }
            }
            IcAssignment::PerEdge => {
                let base = self.rev_offsets[v as usize] as usize;
                for (i, &u) in neighbors.iter().enumerate() {
                    if rng.gen::<f64>() < self.probs[base + i] as f64 {
                        out.push(u);
                    }
                }
            }
        }
    }

    fn trigger_distribution(&self, v: NodeId) -> Vec<(Vec<NodeId>, f64)> {
        let neighbors = self.graph.in_neighbors(v);
        assert!(
            neighbors.len() <= 20,
            "exact IC enumeration limited to in-degree <= 20 (got {})",
            neighbors.len()
        );
        let probs: Vec<f64> = neighbors.iter().map(|&u| self.edge_prob(u, v)).collect();
        let mut dist = Vec::with_capacity(1 << neighbors.len());
        for mask in 0u32..(1u32 << neighbors.len()) {
            let mut set = Vec::new();
            let mut p = 1.0f64;
            for (i, &u) in neighbors.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    set.push(u);
                    p *= probs[i];
                } else {
                    p *= 1.0 - probs[i];
                }
            }
            if p > 0.0 {
                dist.push((set, p));
            }
        }
        dist
    }

    fn name(&self) -> &'static str {
        "IC"
    }
}

/// Linear threshold model in triggering form: each node picks at most one
/// in-neighbour, with probability equal to the edge weight.
pub struct LtModel<'g> {
    graph: &'g Graph,
    /// Cumulative in-edge weights aligned with `in_neighbors(v)`;
    /// `cum[rev_offsets[v] + i]` is the prefix sum through neighbour `i`.
    cum_weights: Vec<f64>,
    rev_offsets: Vec<u64>,
}

impl<'g> LtModel<'g> {
    /// The paper's assignment (§6.6): each in-edge gets a random value in
    /// `[0, 1]`, normalised so a node's incoming weights sum to exactly 1.
    pub fn random_weights(graph: &'g Graph, rng: &mut impl Rng) -> LtModel<'g> {
        Self::from_fn_normalized(graph, |_, _| rng.gen_range(0.05..1.0))
    }

    /// Classic degree-normalised LT: every in-edge of `v` weighs
    /// `1/in_degree(v)`.
    pub fn degree_normalized(graph: &'g Graph) -> LtModel<'g> {
        Self::from_fn_normalized(graph, |_, _| 1.0)
    }

    /// Arbitrary raw weights, normalised per node to sum to 1.
    pub fn from_fn_normalized(
        graph: &'g Graph,
        mut raw: impl FnMut(NodeId, NodeId) -> f64,
    ) -> LtModel<'g> {
        let rev_offsets = reverse_offsets(graph);
        let mut cum_weights = Vec::with_capacity(graph.num_edges() as usize);
        for v in graph.nodes() {
            let neighbors = graph.in_neighbors(v);
            let weights: Vec<f64> = neighbors
                .iter()
                .map(|&u| {
                    let w = raw(u, v);
                    assert!(w > 0.0 && w.is_finite(), "raw LT weight must be positive");
                    w
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            for w in &weights {
                acc += w / total;
                cum_weights.push(acc);
            }
            // Guard against floating drift: the last prefix must be 1.
            if let Some(last) = cum_weights.last_mut() {
                if !neighbors.is_empty() {
                    *last = 1.0;
                }
            }
        }
        LtModel { graph, cum_weights, rev_offsets }
    }

    /// Weight `b(u, v)` of edge `(u, v)`.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> f64 {
        let neighbors = self.graph.in_neighbors(v);
        let idx = neighbors.binary_search(&u).expect("u is not an in-neighbor of v");
        let base = self.rev_offsets[v as usize] as usize;
        let hi = self.cum_weights[base + idx];
        let lo = if idx == 0 { 0.0 } else { self.cum_weights[base + idx - 1] };
        hi - lo
    }
}

impl TriggeringModel for LtModel<'_> {
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn sample_triggers(&self, v: NodeId, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        out.clear();
        let neighbors = self.graph.in_neighbors(v);
        if neighbors.is_empty() {
            return;
        }
        let base = self.rev_offsets[v as usize] as usize;
        let cum = &self.cum_weights[base..base + neighbors.len()];
        let x = rng.gen::<f64>();
        // Weights sum to 1, so exactly one neighbour is always chosen.
        let idx = cum.partition_point(|&c| c <= x).min(neighbors.len() - 1);
        out.push(neighbors[idx]);
    }

    fn trigger_distribution(&self, v: NodeId) -> Vec<(Vec<NodeId>, f64)> {
        let neighbors = self.graph.in_neighbors(v);
        if neighbors.is_empty() {
            return vec![(Vec::new(), 1.0)];
        }
        neighbors.iter().map(|&u| (vec![u], self.edge_weight(u, v))).collect()
    }

    fn name(&self) -> &'static str {
        "LT"
    }
}

/// Prefix sums of in-degrees, i.e. per-node base offsets into any array
/// aligned with `in_neighbors` order.
fn reverse_offsets(graph: &Graph) -> Vec<u64> {
    let mut offsets = vec![0u64; graph.num_nodes() as usize + 1];
    for v in graph.nodes() {
        offsets[v as usize + 1] = offsets[v as usize] + graph.in_degree(v) as u64;
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_cascade_probability() {
        let g = gen::star(5); // 0 → 1..4, each target has in-degree 1
        let model = IcModel::weighted_cascade(&g);
        assert_eq!(model.edge_prob(0, 3), 1.0);
        // With p = 1 the trigger set is always the full in-neighbour set.
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        model.sample_triggers(3, &mut rng, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn uniform_zero_and_one() {
        let g = gen::complete(4);
        let zero = IcModel::uniform(&g, 0.0);
        let one = IcModel::uniform(&g, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        zero.sample_triggers(2, &mut rng, &mut out);
        assert!(out.is_empty());
        one.sample_triggers(2, &mut rng, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn per_edge_probs() {
        let g = kbtim_graph::Graph::from_edges(3, &[(0, 2), (1, 2)]);
        let model = IcModel::from_fn(&g, |u, _| if u == 0 { 1.0 } else { 0.25 });
        assert_eq!(model.edge_prob(0, 2), 1.0);
        assert_eq!(model.edge_prob(1, 2), 0.25);
    }

    #[test]
    fn ic_empirical_trigger_rate() {
        let g = kbtim_graph::Graph::from_edges(2, &[(0, 1)]);
        let model = IcModel::uniform(&g, 0.3);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        let mut hits = 0;
        let rounds = 100_000;
        for _ in 0..rounds {
            model.sample_triggers(1, &mut rng, &mut out);
            hits += out.len();
        }
        let rate = hits as f64 / rounds as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn ic_distribution_sums_to_one() {
        let g = kbtim_graph::Graph::from_edges(4, &[(0, 3), (1, 3), (2, 3)]);
        let model = IcModel::uniform(&g, 0.4);
        let dist = model.trigger_distribution(3);
        assert_eq!(dist.len(), 8);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lt_always_picks_exactly_one() {
        let g = gen::complete(5);
        let mut rng = SmallRng::seed_from_u64(4);
        let model = LtModel::random_weights(&g, &mut rng);
        let mut out = Vec::new();
        for _ in 0..100 {
            model.sample_triggers(2, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
            assert!(g.in_neighbors(2).contains(&out[0]));
        }
    }

    #[test]
    fn lt_weights_sum_to_one() {
        let g = gen::complete(6);
        let mut rng = SmallRng::seed_from_u64(5);
        let model = LtModel::random_weights(&g, &mut rng);
        for v in g.nodes() {
            let total: f64 = g.in_neighbors(v).iter().map(|&u| model.edge_weight(u, v)).sum();
            assert!((total - 1.0).abs() < 1e-9, "node {v} weights sum to {total}");
        }
    }

    #[test]
    fn lt_empirical_matches_weights() {
        let g = kbtim_graph::Graph::from_edges(3, &[(0, 2), (1, 2)]);
        let model = LtModel::from_fn_normalized(&g, |u, _| if u == 0 { 3.0 } else { 1.0 });
        assert!((model.edge_weight(0, 2) - 0.75).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut out = Vec::new();
        let mut zero_picks = 0;
        let rounds = 100_000;
        for _ in 0..rounds {
            model.sample_triggers(2, &mut rng, &mut out);
            if out[0] == 0 {
                zero_picks += 1;
            }
        }
        let rate = zero_picks as f64 / rounds as f64;
        assert!((rate - 0.75).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn lt_distribution_matches_weights() {
        let g = kbtim_graph::Graph::from_edges(3, &[(0, 2), (1, 2)]);
        let model = LtModel::degree_normalized(&g);
        let dist = model.trigger_distribution(2);
        assert_eq!(dist.len(), 2);
        for (set, p) in dist {
            assert_eq!(set.len(), 1);
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn no_in_neighbors_empty_triggers() {
        let g = gen::line(3);
        let ic = IcModel::weighted_cascade(&g);
        let lt = LtModel::degree_normalized(&g);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut out = vec![99];
        ic.sample_triggers(0, &mut rng, &mut out);
        assert!(out.is_empty());
        lt.sample_triggers(0, &mut rng, &mut out);
        assert!(out.is_empty());
        assert_eq!(lt.trigger_distribution(0), vec![(Vec::new(), 1.0)]);
    }

    #[test]
    fn model_names() {
        let g = gen::line(2);
        assert_eq!(IcModel::weighted_cascade(&g).name(), "IC");
        assert_eq!(LtModel::degree_normalized(&g).name(), "LT");
    }
}
