//! Explicit general triggering model (Kempe et al. \[15\]).
//!
//! IC and LT are the two *named* instances the paper evaluates, but the
//! machinery (RR sampling, WRIS, the disk indexes) works for **any**
//! triggering model — §2.1 note 2 and §6.6 of the paper. This module makes
//! that concrete: a model defined by an explicit per-node distribution
//! over trigger sets. Use cases:
//!
//! * representing learned models whose trigger distributions came from
//!   data rather than a formula;
//! * constructing adversarial distributions in tests (correlated edges,
//!   "all-or-nothing" neighbourhoods) that neither IC nor LT can express;
//! * snapshotting another model's exact distribution
//!   ([`TableTriggeringModel::from_model`]) to prove estimator equivalence.

use crate::model::TriggeringModel;
use kbtim_graph::{Graph, NodeId};
use rand::{Rng, RngCore};

/// A triggering model given by an explicit distribution table per node.
pub struct TableTriggeringModel<'g> {
    graph: &'g Graph,
    /// `tables[v]` lists `(trigger_set, probability)`; probabilities sum
    /// to 1, sets are subsets of `in_neighbors(v)`.
    tables: Vec<Vec<(Vec<NodeId>, f64)>>,
    /// Per-node cumulative probabilities aligned with `tables[v]`.
    cums: Vec<Vec<f64>>,
}

impl<'g> TableTriggeringModel<'g> {
    /// Build from explicit tables.
    ///
    /// # Panics
    ///
    /// Panics when a table is empty, probabilities do not sum to ≈ 1, a
    /// trigger set contains a non-in-neighbour, or entries are malformed.
    pub fn new(graph: &'g Graph, tables: Vec<Vec<(Vec<NodeId>, f64)>>) -> TableTriggeringModel<'g> {
        assert_eq!(tables.len(), graph.num_nodes() as usize, "one table per node");
        let mut cums = Vec::with_capacity(tables.len());
        for (v, table) in tables.iter().enumerate() {
            assert!(!table.is_empty(), "node {v}: empty trigger table");
            let neighbors = graph.in_neighbors(v as NodeId);
            let mut acc = 0.0f64;
            let mut cum = Vec::with_capacity(table.len());
            for (set, p) in table {
                assert!(p.is_finite() && *p >= 0.0, "node {v}: bad probability {p}");
                assert!(
                    set.iter().all(|u| neighbors.binary_search(u).is_ok()),
                    "node {v}: trigger set member is not an in-neighbor"
                );
                acc += p;
                cum.push(acc);
            }
            assert!((acc - 1.0).abs() < 1e-6, "node {v}: probabilities sum to {acc}");
            // Snap the last entry so sampling can never fall off the end.
            *cum.last_mut().expect("non-empty") = 1.0;
            cums.push(cum);
        }
        TableTriggeringModel { graph, tables, cums }
    }

    /// Snapshot another model's exact trigger distribution into a table
    /// model. The two models are then *distributionally identical*, which
    /// the tests exploit to show every estimator treats them the same.
    pub fn from_model<M: TriggeringModel + ?Sized>(
        graph: &'g Graph,
        model: &M,
    ) -> TableTriggeringModel<'g> {
        let tables = graph.nodes().map(|v| model.trigger_distribution(v)).collect();
        TableTriggeringModel::new(graph, tables)
    }
}

impl TriggeringModel for TableTriggeringModel<'_> {
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn sample_triggers(&self, v: NodeId, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        out.clear();
        let cum = &self.cums[v as usize];
        let x = rng.gen::<f64>();
        let idx = cum.partition_point(|&c| c <= x).min(cum.len() - 1);
        out.extend_from_slice(&self.tables[v as usize][idx].0);
    }

    fn trigger_distribution(&self, v: NodeId) -> Vec<(Vec<NodeId>, f64)> {
        self.tables[v as usize].clone()
    }

    fn name(&self) -> &'static str {
        "triggering"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IcModel, LtModel};
    use crate::spread::{exact_spread, monte_carlo_spread};
    use crate::RrSampler;
    use kbtim_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_of_ic_has_same_exact_spread() {
        let g = kbtim_graph::Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let ic = IcModel::uniform(&g, 0.5);
        let table = TableTriggeringModel::from_model(&g, &ic);
        for seeds in [vec![0u32], vec![1, 2], vec![3]] {
            let a = exact_spread(&ic, &seeds);
            let b = exact_spread(&table, &seeds);
            assert!((a - b).abs() < 1e-12, "{seeds:?}: {a} vs {b}");
        }
    }

    #[test]
    fn snapshot_of_lt_matches_monte_carlo() {
        let g = gen::complete(5);
        let lt = LtModel::degree_normalized(&g);
        let table = TableTriggeringModel::from_model(&g, &lt);
        let mut rng = SmallRng::seed_from_u64(1);
        let a = monte_carlo_spread(&lt, &[0], 40_000, &mut rng);
        let b = monte_carlo_spread(&table, &[0], 40_000, &mut rng);
        assert!((a - b).abs() < 0.05, "{a} vs {b}");
    }

    #[test]
    fn correlated_all_or_nothing_distribution() {
        // Node 2 is triggered by BOTH 0 and 1 together (p = 0.5) or by
        // neither — a correlation IC cannot express: under this model
        // p(2 | seed {0}) = 0.5 (needs 0 ∈ triggers, satisfied in the
        // all-branch)... but activation requires only one active member,
        // so seeding {0} activates 2 with probability 0.5, same as seeding
        // {1}; IC with independent edges of marginal 0.5 would give
        // p(2 | {0,1}) = 0.75, while this correlated model gives 0.5.
        let g = kbtim_graph::Graph::from_edges(3, &[(0, 2), (1, 2)]);
        let tables =
            vec![vec![(vec![], 1.0)], vec![(vec![], 1.0)], vec![(vec![0, 1], 0.5), (vec![], 0.5)]];
        let model = TableTriggeringModel::new(&g, tables);
        let p_single = crate::spread::exact_activation_probability(&model, &[0], 2);
        let p_both = crate::spread::exact_activation_probability(&model, &[0, 1], 2);
        assert!((p_single - 0.5).abs() < 1e-12);
        assert!((p_both - 0.5).abs() < 1e-12, "correlated: both seeds add nothing");
    }

    #[test]
    fn rr_sampling_respects_table_distribution() {
        // P(0 ∈ RR(1)) must equal the table's marginal probability.
        let g = kbtim_graph::Graph::from_edges(2, &[(0, 1)]);
        let tables = vec![vec![(vec![], 1.0)], vec![(vec![0], 0.3), (vec![], 0.7)]];
        let model = TableTriggeringModel::new(&g, tables);
        let mut sampler = RrSampler::new(2);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut hits = 0u32;
        let rounds = 100_000;
        let mut out = Vec::new();
        for _ in 0..rounds {
            sampler.sample_into(&model, 1, &mut rng, &mut out);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let rate = hits as f64 / rounds as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "probabilities sum")]
    fn bad_probability_sum_panics() {
        let g = gen::line(2);
        let tables = vec![vec![(vec![], 1.0)], vec![(vec![0], 0.6), (vec![], 0.6)]];
        TableTriggeringModel::new(&g, tables);
    }

    #[test]
    #[should_panic(expected = "not an in-neighbor")]
    fn foreign_trigger_member_panics() {
        let g = gen::line(3); // in_neighbors(2) = [1]
        let tables = vec![
            vec![(vec![], 1.0)],
            vec![(vec![0], 1.0)],
            vec![(vec![0], 1.0)], // 0 is not an in-neighbour of 2
        ];
        TableTriggeringModel::new(&g, tables);
    }

    #[test]
    fn name_is_triggering() {
        let g = gen::line(2);
        let ic = IcModel::uniform(&g, 0.5);
        let table = TableTriggeringModel::from_model(&g, &ic);
        assert_eq!(table.name(), "triggering");
    }
}
