//! Reverse-reachable (RR) set sampling (Definition 2).
//!
//! An RR set for root `v` contains every node that can reach `v` in a
//! random live-edge instantiation of the graph. Under the triggering
//! abstraction the live in-edges of a node are exactly its sampled trigger
//! set, so a reverse BFS that samples trigger sets on demand generates RR
//! sets for *any* model — the key to the paper's model-generality claim.
//!
//! Two entry points:
//!
//! * [`RrSampler`] — one set at a time against a caller-owned RNG (used
//!   where the call pattern is inherently serial);
//! * [`sample_batch`] — the **hot path**: θ sets at once, sharded over a
//!   [`kbtim_exec::ExecPool`] with per-shard RNG streams. Output is
//!   bit-identical for every thread count, so the WRIS/RIS/index layers
//!   can parallelize freely without giving up reproducibility.

use crate::batch::RrBatch;
use crate::model::TriggeringModel;
use kbtim_exec::{shard_count, shard_range, shard_seed, ExecPool, DEFAULT_SHARD_SIZE};
use kbtim_graph::NodeId;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Reusable RR-set sampler.
///
/// Holds scratch buffers (stamped visited array, BFS queue) so that
/// sampling millions of RR sets during index construction performs no
/// per-set allocation beyond the output.
pub struct RrSampler {
    /// `visited[v] == round` marks membership in the current RR set.
    visited: Vec<u32>,
    round: u32,
    queue: Vec<NodeId>,
    triggers: Vec<NodeId>,
}

impl RrSampler {
    /// Create a sampler for graphs with `num_nodes` nodes.
    pub fn new(num_nodes: u32) -> RrSampler {
        RrSampler {
            visited: vec![0; num_nodes as usize],
            round: 0,
            queue: Vec::new(),
            triggers: Vec::new(),
        }
    }

    /// Sample one RR set rooted at `root` into `out` (cleared first).
    ///
    /// The output is sorted ascending and always contains `root` itself.
    pub fn sample_into<M: TriggeringModel + ?Sized>(
        &mut self,
        model: &M,
        root: NodeId,
        rng: &mut dyn RngCore,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            // Stamp wrapped around: reset the array and restart at 1.
            self.visited.iter_mut().for_each(|s| *s = 0);
            self.round = 1;
        }
        let round = self.round;

        self.visited[root as usize] = round;
        out.push(root);
        self.queue.clear();
        self.queue.push(root);

        while let Some(x) = self.queue.pop() {
            model.sample_triggers(x, rng, &mut self.triggers);
            for &u in &self.triggers {
                if self.visited[u as usize] != round {
                    self.visited[u as usize] = round;
                    out.push(u);
                    self.queue.push(u);
                }
            }
        }
        out.sort_unstable();
    }

    /// Convenience allocation-per-call variant of
    /// [`RrSampler::sample_into`].
    pub fn sample<M: TriggeringModel + ?Sized>(
        &mut self,
        model: &M,
        root: NodeId,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.sample_into(model, root, rng, &mut out);
        out
    }
}

/// Sample `count` RR sets, with roots drawn by `root_of`, on the pool.
///
/// The batch is split into fixed-size shards ([`DEFAULT_SHARD_SIZE`]);
/// shard `s` draws both its roots and its reverse-BFS coin flips from
/// `SmallRng::seed_from_u64(seed ^ s)` and shard outputs concatenate in
/// shard order, so the returned sets are a pure function of
/// `(model, count, seed)` — **identical for any thread count**. Each
/// worker samples into a local [`RrBatch`] arena through one reused
/// [`RrSampler`] and scratch buffer, so the only per-set cost is one
/// `memcpy` into the arena; the merged batch is a pure concatenation in
/// shard order.
pub fn sample_batch<M, F>(
    model: &M,
    count: usize,
    seed: u64,
    pool: &ExecPool,
    root_of: F,
) -> RrBatch
where
    M: TriggeringModel + ?Sized,
    F: Fn(&mut SmallRng) -> NodeId + Sync,
{
    let num_nodes = model.graph().num_nodes();
    let shards = shard_count(count, DEFAULT_SHARD_SIZE);
    let mut per_shard: Vec<RrBatch> = pool.map_shards_with(
        shards,
        || (RrSampler::new(num_nodes), Vec::new()),
        |(sampler, scratch), shard| {
            let mut rng = SmallRng::seed_from_u64(shard_seed(seed, shard as u64));
            let range = shard_range(count, DEFAULT_SHARD_SIZE, shard);
            let mut batch = RrBatch::with_capacity(range.len(), 0);
            for _ in range {
                let root = root_of(&mut rng);
                sampler.sample_into(model, root, &mut rng, scratch);
                batch.push(scratch);
            }
            batch
        },
    );
    if per_shard.len() == 1 {
        // Lone shard (small batches, sequential pools): move the arena
        // out instead of re-copying it.
        return per_shard.pop().expect("one shard");
    }
    let total: usize = per_shard.iter().map(RrBatch::total_members).sum();
    let mut out = RrBatch::with_capacity(count, total);
    for shard_batch in &per_shard {
        out.append(shard_batch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IcModel;
    use kbtim_graph::{gen, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn contains_root() {
        let g = gen::line(5);
        let model = IcModel::uniform(&g, 0.0);
        let mut sampler = RrSampler::new(5);
        let mut rng = SmallRng::seed_from_u64(1);
        for v in g.nodes() {
            assert_eq!(sampler.sample(&model, v, &mut rng), vec![v]);
        }
    }

    #[test]
    fn full_ancestors_with_p_one() {
        let g = gen::line(6); // 0→1→…→5
        let model = IcModel::uniform(&g, 1.0);
        let mut sampler = RrSampler::new(6);
        let mut rng = SmallRng::seed_from_u64(2);
        let rr = sampler.sample(&model, 4, &mut rng);
        assert_eq!(rr, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cycle_with_p_one_is_everything() {
        let g = gen::cycle(7);
        let model = IcModel::uniform(&g, 1.0);
        let mut sampler = RrSampler::new(7);
        let mut rng = SmallRng::seed_from_u64(3);
        let rr = sampler.sample(&model, 3, &mut rng);
        assert_eq!(rr, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn output_sorted_and_unique() {
        let g = gen::complete(12);
        let model = IcModel::uniform(&g, 0.4);
        let mut sampler = RrSampler::new(12);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..200 {
            let rr = sampler.sample(&model, 5, &mut rng);
            assert!(rr.windows(2).all(|w| w[0] < w[1]), "not sorted/unique: {rr:?}");
            assert!(rr.contains(&5));
        }
    }

    #[test]
    fn membership_frequency_matches_activation_probability() {
        // Graph 0→1 with p = 0.6: P(0 ∈ RR(1)) must equal 0.6.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let model = IcModel::uniform(&g, 0.6);
        let mut sampler = RrSampler::new(2);
        let mut rng = SmallRng::seed_from_u64(5);
        let rounds = 100_000;
        let mut hits = 0u32;
        let mut out = Vec::new();
        for _ in 0..rounds {
            sampler.sample_into(&model, 1, &mut rng, &mut out);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let rate = hits as f64 / rounds as f64;
        assert!((rate - 0.6).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn two_hop_membership_probability() {
        // 0→1→2 with p = 0.5 per edge: P(0 ∈ RR(2)) = 0.25.
        let g = gen::line(3);
        let model = IcModel::uniform(&g, 0.5);
        let mut sampler = RrSampler::new(3);
        let mut rng = SmallRng::seed_from_u64(6);
        let rounds = 200_000;
        let mut hits = 0u32;
        let mut out = Vec::new();
        for _ in 0..rounds {
            sampler.sample_into(&model, 2, &mut rng, &mut out);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let rate = hits as f64 / rounds as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let mut seed_rng = SmallRng::seed_from_u64(77);
        let g = gen::erdos_renyi(200, 900, &mut seed_rng);
        let model = IcModel::weighted_cascade(&g);
        let run = |threads: usize| {
            let pool = ExecPool::new(Some(threads));
            sample_batch(&model, 2_000, 1234, &pool, |rng| {
                use rand::Rng;
                rng.gen_range(0..200u32)
            })
        };
        let single = run(1);
        assert_eq!(single.len(), 2_000);
        for threads in [2, 4, 8] {
            assert_eq!(single, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn batch_sets_sorted_and_rooted() {
        let g = gen::complete(10);
        let model = IcModel::uniform(&g, 0.5);
        let pool = ExecPool::new(Some(4));
        let sets = sample_batch(&model, 600, 5, &pool, |_| 3);
        assert_eq!(sets.len(), 600);
        for set in sets.iter() {
            assert!(set.contains(&3), "root missing");
            assert!(set.windows(2).all(|w| w[0] < w[1]), "unsorted: {set:?}");
        }
    }

    #[test]
    fn batch_matches_serial_sampler_exactly() {
        // The arena batch must hold exactly the sets a serial sampler with
        // the same per-shard RNG streams would produce (one shard here, so
        // a single stream covers the whole batch).
        let g = gen::complete(9);
        let model = IcModel::uniform(&g, 0.4);
        let pool = ExecPool::sequential();
        let batch = sample_batch(&model, 100, 11, &pool, |_| 2);
        let mut sampler = RrSampler::new(9);
        let mut rng = SmallRng::seed_from_u64(shard_seed(11, 0));
        let mut expected = Vec::new();
        for _ in 0..100 {
            expected.push(sampler.sample(&model, 2, &mut rng));
        }
        assert_eq!(batch.to_vecs(), expected);
    }

    #[test]
    fn batch_membership_rate_matches_probability() {
        // Same statistical contract as the serial sampler: 0→1 with
        // p = 0.6 ⇒ P(0 ∈ RR(1)) = 0.6, regardless of sharding.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let model = IcModel::uniform(&g, 0.6);
        let pool = ExecPool::new(Some(4));
        let sets = sample_batch(&model, 100_000, 9, &pool, |_| 1);
        let hits = sets.iter().filter(|s| s.contains(&0)).count();
        let rate = hits as f64 / sets.len() as f64;
        assert!((rate - 0.6).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn empty_batch() {
        let g = gen::line(3);
        let model = IcModel::uniform(&g, 1.0);
        let pool = ExecPool::sequential();
        assert!(sample_batch(&model, 0, 1, &pool, |_| 0).is_empty());
    }

    #[test]
    fn sampler_reuse_is_clean_across_rounds() {
        let g = gen::complete(8);
        let model = IcModel::uniform(&g, 1.0);
        let mut sampler = RrSampler::new(8);
        let mut rng = SmallRng::seed_from_u64(7);
        // With p = 1 every RR set is all 8 nodes; any stamp leakage across
        // reuse would surface as missing members.
        let mut out = Vec::new();
        for root in 0..8u32 {
            sampler.sample_into(&model, root, &mut rng, &mut out);
            assert_eq!(out.len(), 8);
        }
    }
}
