//! Influence spread estimation: Monte-Carlo (forward live-edge simulation)
//! and exact enumeration for tiny graphs.
//!
//! `E[I(S)]` is the expected number of activated users; the targeted
//! variant `E[I^Q(S)] = Σ_v p(S ↝ v) · φ(v, Q)` (Eqn 2) weighs each
//! activated user by ad relevance. Both are special cases of a
//! weight-function spread, which is what the implementations below expose.

use crate::model::TriggeringModel;
use kbtim_graph::NodeId;
use kbtim_topics::{Query, UserProfiles};
use rand::RngCore;

/// Forward Monte-Carlo estimate of the weighted spread
/// `E[Σ_{v ∈ I(S)} weight(v)]` over `rounds` live-edge simulations.
///
/// Each round samples trigger sets lazily: a node's trigger set is drawn
/// the first time an active neighbour touches it and memoised for the rest
/// of the round, which keeps LT (and any correlated triggering model)
/// exact.
pub fn monte_carlo_weighted<M: TriggeringModel + ?Sized>(
    model: &M,
    seeds: &[NodeId],
    rounds: u32,
    rng: &mut dyn RngCore,
    mut weight: impl FnMut(NodeId) -> f64,
) -> f64 {
    assert!(rounds > 0, "need at least one simulation round");
    let graph = model.graph();
    let n = graph.num_nodes() as usize;
    // Stamped scratch state reused across rounds.
    let mut active = vec![0u32; n];
    let mut trigger_stamp = vec![0u32; n];
    let mut trigger_cache: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut queue: Vec<NodeId> = Vec::new();

    // Per-node weights are looked up once and cached (weight() may be
    // expensive, e.g. a φ(v, Q) profile merge).
    let mut weight_cache: Vec<f64> = Vec::with_capacity(n);
    for v in 0..n {
        weight_cache.push(weight(v as NodeId));
    }

    let mut total = 0.0f64;
    for round in 1..=rounds {
        let mut round_sum = 0.0f64;
        queue.clear();
        for &s in seeds {
            if active[s as usize] != round {
                active[s as usize] = round;
                round_sum += weight_cache[s as usize];
                queue.push(s);
            }
        }
        while let Some(u) = queue.pop() {
            for &v in graph.out_neighbors(u) {
                if active[v as usize] == round {
                    continue;
                }
                if trigger_stamp[v as usize] != round {
                    trigger_stamp[v as usize] = round;
                    let cache = &mut trigger_cache[v as usize];
                    model.sample_triggers(v, rng, cache);
                }
                if trigger_cache[v as usize].contains(&u) {
                    active[v as usize] = round;
                    round_sum += weight_cache[v as usize];
                    queue.push(v);
                }
            }
        }
        total += round_sum;
    }
    total / rounds as f64
}

/// A Monte-Carlo spread estimate with uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadEstimate {
    /// Sample mean of the per-round weighted spreads.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of simulation rounds.
    pub rounds: u32,
}

impl SpreadEstimate {
    /// Central-limit 95 % confidence interval `(lo, hi)`.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error;
        (self.mean - half, self.mean + half)
    }

    /// `true` when `value` lies inside the 95 % interval.
    pub fn contains(&self, value: f64) -> bool {
        let (lo, hi) = self.ci95();
        lo <= value && value <= hi
    }
}

/// Like [`monte_carlo_weighted`], additionally reporting the standard
/// error so callers (e.g. an advertiser comparing two campaigns) can tell
/// whether a spread difference is signal or simulation noise.
pub fn monte_carlo_weighted_ci<M: TriggeringModel + ?Sized>(
    model: &M,
    seeds: &[NodeId],
    rounds: u32,
    rng: &mut dyn RngCore,
    mut weight: impl FnMut(NodeId) -> f64,
) -> SpreadEstimate {
    assert!(rounds >= 2, "need at least two rounds for a variance estimate");
    // Welford's online mean/variance over per-round totals.
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    let mut count = 0u32;
    let graph = model.graph();
    let n = graph.num_nodes() as usize;
    let mut active = vec![0u32; n];
    let mut trigger_stamp = vec![0u32; n];
    let mut trigger_cache: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut queue: Vec<NodeId> = Vec::new();
    let weight_cache: Vec<f64> = (0..n).map(|v| weight(v as NodeId)).collect();

    for round in 1..=rounds {
        let mut round_sum = 0.0f64;
        queue.clear();
        for &s in seeds {
            if active[s as usize] != round {
                active[s as usize] = round;
                round_sum += weight_cache[s as usize];
                queue.push(s);
            }
        }
        while let Some(u) = queue.pop() {
            for &v in graph.out_neighbors(u) {
                if active[v as usize] == round {
                    continue;
                }
                if trigger_stamp[v as usize] != round {
                    trigger_stamp[v as usize] = round;
                    model.sample_triggers(v, rng, &mut trigger_cache[v as usize]);
                }
                if trigger_cache[v as usize].contains(&u) {
                    active[v as usize] = round;
                    round_sum += weight_cache[v as usize];
                    queue.push(v);
                }
            }
        }
        count += 1;
        let delta = round_sum - mean;
        mean += delta / count as f64;
        m2 += delta * (round_sum - mean);
    }
    let variance = m2 / (count as f64 - 1.0);
    SpreadEstimate { mean, std_error: (variance / count as f64).sqrt(), rounds }
}

/// Monte-Carlo estimate of the plain spread `E[I(S)]`.
pub fn monte_carlo_spread<M: TriggeringModel + ?Sized>(
    model: &M,
    seeds: &[NodeId],
    rounds: u32,
    rng: &mut dyn RngCore,
) -> f64 {
    monte_carlo_weighted(model, seeds, rounds, rng, |_| 1.0)
}

/// Monte-Carlo estimate of the targeted spread `E[I^Q(S)]` (Eqn 2).
pub fn monte_carlo_targeted<M: TriggeringModel + ?Sized>(
    model: &M,
    profiles: &UserProfiles,
    query: &Query,
    seeds: &[NodeId],
    rounds: u32,
    rng: &mut dyn RngCore,
) -> f64 {
    monte_carlo_weighted(model, seeds, rounds, rng, |v| profiles.phi(v, query))
}

/// Exact weighted spread by enumerating every joint trigger configuration.
///
/// The number of configurations is `Π_v |trigger_distribution(v)|`, capped
/// at 2²² — this is a test oracle for paper-scale examples, not a
/// production estimator.
pub fn exact_weighted_spread<M: TriggeringModel + ?Sized>(
    model: &M,
    seeds: &[NodeId],
    mut weight: impl FnMut(NodeId) -> f64,
) -> f64 {
    let graph = model.graph();
    let n = graph.num_nodes() as usize;

    // Per-node distributions; nodes with a deterministic (single-outcome)
    // distribution do not contribute branching.
    let dists: Vec<Vec<(Vec<NodeId>, f64)>> =
        graph.nodes().map(|v| model.trigger_distribution(v)).collect();
    let combos: f64 = dists.iter().map(|d| d.len() as f64).product();
    assert!(combos <= (1 << 22) as f64, "exact enumeration would need {combos} configurations");

    let weights: Vec<f64> = (0..n).map(|v| weight(v as NodeId)).collect();

    // Depth-first product over per-node choices, carrying the probability.
    let mut choice = vec![0usize; n];
    let mut total = 0.0f64;
    enumerate(&dists, 0, 1.0, &mut choice, &mut |choice, p| {
        // Live edge u → v exists iff u ∈ triggers(v) under this choice.
        // Forward reachability from the seeds over live edges.
        let mut active = vec![false; n];
        let mut queue: Vec<NodeId> = Vec::new();
        let mut sum = 0.0;
        for &s in seeds {
            if !active[s as usize] {
                active[s as usize] = true;
                sum += weights[s as usize];
                queue.push(s);
            }
        }
        while let Some(u) = queue.pop() {
            for v in 0..n {
                if active[v] {
                    continue;
                }
                let triggers = &dists[v][choice[v]].0;
                if triggers.contains(&u) {
                    active[v] = true;
                    sum += weights[v];
                    queue.push(v as NodeId);
                }
            }
        }
        total += p * sum;
    });
    total
}

fn enumerate(
    dists: &[Vec<(Vec<NodeId>, f64)>],
    node: usize,
    prob: f64,
    choice: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize], f64),
) {
    if node == dists.len() {
        visit(choice, prob);
        return;
    }
    for (i, (_, p)) in dists[node].iter().enumerate() {
        choice[node] = i;
        enumerate(dists, node + 1, prob * p, choice, visit);
    }
}

/// Exact `E[I(S)]` (unit weights).
pub fn exact_spread<M: TriggeringModel + ?Sized>(model: &M, seeds: &[NodeId]) -> f64 {
    exact_weighted_spread(model, seeds, |_| 1.0)
}

/// Exact activation probability `p(S ↝ target)`.
pub fn exact_activation_probability<M: TriggeringModel + ?Sized>(
    model: &M,
    seeds: &[NodeId],
    target: NodeId,
) -> f64 {
    exact_weighted_spread(model, seeds, |v| if v == target { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IcModel, LtModel};
    use kbtim_graph::{gen, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_line_graph() {
        // 0→1→2 with p = 0.5: E[I({0})] = 1 + 0.5 + 0.25 = 1.75.
        let g = gen::line(3);
        let model = IcModel::uniform(&g, 0.5);
        let spread = exact_spread(&model, &[0]);
        assert!((spread - 1.75).abs() < 1e-12, "{spread}");
    }

    #[test]
    fn exact_activation_on_diamond() {
        // 0→1, 0→2, 1→3, 2→3 each p = 0.5:
        // p(1 active) = 0.5; p(3) = 1 - (1 - 0.25)² = 0.4375.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let model = IcModel::uniform(&g, 0.5);
        assert!((exact_activation_probability(&model, &[0], 1) - 0.5).abs() < 1e-12);
        let p3 = exact_activation_probability(&model, &[0], 3);
        assert!((p3 - 0.4375).abs() < 1e-12, "{p3}");
    }

    #[test]
    fn monte_carlo_matches_exact_ic() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let model = IcModel::uniform(&g, 0.5);
        let exact = exact_spread(&model, &[0]);
        let mut rng = SmallRng::seed_from_u64(11);
        let mc = monte_carlo_spread(&model, &[0], 60_000, &mut rng);
        assert!((mc - exact).abs() < 0.02, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn monte_carlo_matches_exact_lt() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let model = LtModel::degree_normalized(&g);
        let exact = exact_spread(&model, &[0]);
        let mut rng = SmallRng::seed_from_u64(12);
        let mc = monte_carlo_spread(&model, &[0], 60_000, &mut rng);
        assert!((mc - exact).abs() < 0.02, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn seeds_always_count() {
        let g = gen::line(4);
        let model = IcModel::uniform(&g, 0.0);
        let mut rng = SmallRng::seed_from_u64(13);
        let mc = monte_carlo_spread(&model, &[1, 3], 100, &mut rng);
        assert_eq!(mc, 2.0);
        assert_eq!(exact_spread(&model, &[1, 3]), 2.0);
    }

    #[test]
    fn duplicate_seeds_not_double_counted() {
        let g = gen::line(3);
        let model = IcModel::uniform(&g, 0.0);
        let mut rng = SmallRng::seed_from_u64(14);
        assert_eq!(monte_carlo_spread(&model, &[1, 1, 1], 10, &mut rng), 1.0);
    }

    #[test]
    fn weighted_spread_uses_weights() {
        let g = gen::line(2);
        let model = IcModel::uniform(&g, 1.0);
        let mut rng = SmallRng::seed_from_u64(15);
        let w =
            monte_carlo_weighted(&model, &[0], 10, &mut rng, |v| if v == 1 { 10.0 } else { 1.0 });
        assert_eq!(w, 11.0);
        assert_eq!(exact_weighted_spread(&model, &[0], |v| if v == 1 { 10.0 } else { 1.0 }), 11.0);
    }

    #[test]
    fn targeted_spread_against_profiles() {
        use kbtim_topics::{Query, UserProfiles};
        let g = gen::line(2); // 0 → 1, p = 1
        let model = IcModel::uniform(&g, 1.0);
        let profiles = UserProfiles::from_entries(2, 1, &[(1, 0, 0.5)]);
        let q = Query::new([0], 1);
        let mut rng = SmallRng::seed_from_u64(16);
        let spread = monte_carlo_targeted(&model, &profiles, &q, &[0], 10, &mut rng);
        // Only node 1 is relevant: φ(1, Q) = 0.5 · idf, activated surely.
        let expected = 0.5 * profiles.idf(0);
        assert!((spread - expected).abs() < 1e-9);
    }

    #[test]
    fn ci_contains_exact_value() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let model = IcModel::uniform(&g, 0.5);
        let exact = exact_spread(&model, &[0]);
        let mut rng = SmallRng::seed_from_u64(21);
        let est = monte_carlo_weighted_ci(&model, &[0], 20_000, &mut rng, |_| 1.0);
        assert!(est.contains(exact), "CI {:?} misses exact {exact}", est.ci95());
        assert!((est.mean - exact).abs() < 0.05);
        assert!(est.std_error > 0.0);
    }

    #[test]
    fn ci_width_shrinks_with_rounds() {
        let g = gen::line(5);
        let model = IcModel::uniform(&g, 0.5);
        let mut rng = SmallRng::seed_from_u64(22);
        let small = monte_carlo_weighted_ci(&model, &[0], 500, &mut rng, |_| 1.0);
        let large = monte_carlo_weighted_ci(&model, &[0], 50_000, &mut rng, |_| 1.0);
        assert!(
            large.std_error < small.std_error / 5.0,
            "small {} vs large {}",
            small.std_error,
            large.std_error
        );
    }

    #[test]
    fn ci_of_deterministic_spread_is_tight() {
        // p = 1 everywhere: zero variance.
        let g = gen::line(3);
        let model = IcModel::uniform(&g, 1.0);
        let mut rng = SmallRng::seed_from_u64(23);
        let est = monte_carlo_weighted_ci(&model, &[0], 100, &mut rng, |_| 1.0);
        assert_eq!(est.mean, 3.0);
        assert_eq!(est.std_error, 0.0);
        assert_eq!(est.ci95(), (3.0, 3.0));
    }

    #[test]
    fn ci_mean_matches_plain_estimator() {
        let g = gen::complete(6);
        let model = IcModel::uniform(&g, 0.3);
        let mut rng_a = SmallRng::seed_from_u64(24);
        let mut rng_b = SmallRng::seed_from_u64(24);
        let plain = monte_carlo_spread(&model, &[0, 1], 2_000, &mut rng_a);
        let with_ci = monte_carlo_weighted_ci(&model, &[0, 1], 2_000, &mut rng_b, |_| 1.0);
        assert!((plain - with_ci.mean).abs() < 1e-9, "{plain} vs {}", with_ci.mean);
    }

    #[test]
    fn lt_spread_on_cycle() {
        // Cycle of 3 with degree-normalised LT: every node has exactly one
        // in-neighbour with weight 1, so seeding any node activates all.
        let g = gen::cycle(3);
        let model = LtModel::degree_normalized(&g);
        assert!((exact_spread(&model, &[0]) - 3.0).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(17);
        assert_eq!(monte_carlo_spread(&model, &[0], 50, &mut rng), 3.0);
    }
}
