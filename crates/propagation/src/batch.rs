//! Flat arena storage for batches of RR sets.
//!
//! The hot stages of the system (sampling → inversion → greedy coverage)
//! move *batches* of RR sets around, and a `Vec<Vec<NodeId>>` pays one
//! heap allocation and one pointer chase per set. [`RrBatch`] stores the
//! whole batch CSR-style instead: every member of every set lives in one
//! contiguous `members` arena, and `offsets[i]..offsets[i + 1]` delimits
//! set `i`. Iteration is a pair of slice reads, batches merge by pure
//! concatenation (which is exactly how the deterministic sharded sampler
//! combines per-shard output), and the memory footprint is
//! `4·(members + sets + 1)` bytes, no per-set headers.
//!
//! The Vec-of-Vec shape survives only as an adapter
//! ([`RrBatch::from_sets`] / [`RrBatch::to_vecs`]) for test oracles.

use kbtim_graph::NodeId;

/// A batch of RR sets in one flat CSR arena.
///
/// Invariants: `offsets` is non-empty, starts at 0, is non-decreasing,
/// and its last element equals `members.len()`. Individual sets keep
/// whatever order the producer wrote (the samplers emit sorted, unique
/// members).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrBatch {
    /// Every set's members, back to back.
    members: Vec<NodeId>,
    /// `sets + 1` boundaries into `members` (CSR offsets).
    offsets: Vec<u32>,
}

impl Default for RrBatch {
    fn default() -> RrBatch {
        RrBatch::new()
    }
}

impl RrBatch {
    /// Empty batch.
    pub fn new() -> RrBatch {
        RrBatch { members: Vec::new(), offsets: vec![0] }
    }

    /// Empty batch with room for `sets` sets and `members` total members.
    pub fn with_capacity(sets: usize, members: usize) -> RrBatch {
        let mut offsets = Vec::with_capacity(sets + 1);
        offsets.push(0);
        RrBatch { members: Vec::with_capacity(members), offsets }
    }

    /// Number of sets in the batch.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the batch holds no sets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total members across all sets (the arena length).
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// Set `i` as a slice of the arena.
    pub fn set(&self, i: usize) -> &[NodeId] {
        &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate over all sets in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[NodeId]> + '_ {
        self.offsets.windows(2).map(|w| &self.members[w[0] as usize..w[1] as usize])
    }

    /// The raw member arena (all sets concatenated).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Append one set (copied into the arena).
    pub fn push(&mut self, set: &[NodeId]) {
        self.members.extend_from_slice(set);
        let end = u32::try_from(self.members.len()).expect("RR arena exceeds u32 offsets");
        self.offsets.push(end);
    }

    /// Append every set of `other`, preserving order — the shard-merge
    /// primitive: concatenating per-shard batches in shard order is
    /// bit-identical to sampling the whole batch serially.
    pub fn append(&mut self, other: &RrBatch) {
        let base = self.members.len() as u64;
        self.members.extend_from_slice(&other.members);
        u32::try_from(self.members.len()).expect("RR arena exceeds u32 offsets");
        self.offsets.extend(other.offsets.iter().skip(1).map(|&o| (base + o as u64) as u32));
    }

    /// Adapter from the Vec-of-Vec shape (test oracles).
    pub fn from_sets(sets: &[Vec<NodeId>]) -> RrBatch {
        let total = sets.iter().map(Vec::len).sum();
        let mut batch = RrBatch::with_capacity(sets.len(), total);
        for set in sets {
            batch.push(set);
        }
        batch
    }

    /// Adapter to the Vec-of-Vec shape (test oracles).
    pub fn to_vecs(&self) -> Vec<Vec<NodeId>> {
        self.iter().map(|s| s.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_slice() {
        let mut batch = RrBatch::new();
        assert!(batch.is_empty());
        batch.push(&[1, 2, 3]);
        batch.push(&[]);
        batch.push(&[7]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.total_members(), 4);
        assert_eq!(batch.set(0), &[1, 2, 3]);
        assert_eq!(batch.set(1), &[] as &[NodeId]);
        assert_eq!(batch.set(2), &[7]);
    }

    #[test]
    fn vec_roundtrip() {
        let sets = vec![vec![0u32, 4], vec![], vec![2, 2, 9], vec![1]];
        let batch = RrBatch::from_sets(&sets);
        assert_eq!(batch.to_vecs(), sets);
        assert_eq!(batch.iter().len(), sets.len());
        for (a, b) in batch.iter().zip(&sets) {
            assert_eq!(a, b.as_slice());
        }
    }

    #[test]
    fn append_equals_concatenation() {
        let a = RrBatch::from_sets(&[vec![1, 2], vec![3]]);
        let b = RrBatch::from_sets(&[vec![], vec![4, 5]]);
        let mut merged = RrBatch::new();
        merged.append(&a);
        merged.append(&b);
        assert_eq!(merged, RrBatch::from_sets(&[vec![1, 2], vec![3], vec![], vec![4, 5]]));
    }

    #[test]
    fn append_to_empty_and_of_empty() {
        let mut batch = RrBatch::new();
        batch.append(&RrBatch::new());
        assert!(batch.is_empty());
        let other = RrBatch::from_sets(&[vec![9]]);
        batch.append(&other);
        assert_eq!(batch, other);
    }
}
