//! Synthetic dataset families reproducing the paper's workload shapes.
//!
//! The paper evaluates on SNAP's Twitter (41.6M users, dense, heavy-tailed
//! in-degrees up to 10⁵) and News (1.42M media sites, sparse, avg degree
//! 2.2–5.2) graphs with 200 extracted topics (§6.1, Table 2, Fig 4). Those
//! datasets are not redistributable, so this crate generates families with
//! the same *shape*:
//!
//! * [`DatasetFamily::Twitter`] — directed preferential attachment with
//!   high reciprocity: dense, power-law degree tails, hubs that are both
//!   very influential and very influenceable.
//! * [`DatasetFamily::News`] — sparse preferential attachment with low
//!   reciprocity: hyperlink-like, avg degree ≈ 2–5.
//!
//! Sizes default to a laptop-scale version of Table 2 (`news_sizes`,
//! `twitter_sizes`); everything is deterministic given a seed.

use kbtim_graph::gen::{preferential_attachment, PrefAttachConfig};
use kbtim_graph::Graph;
use kbtim_topics::workload::{
    generate_profiles_homophilous, generate_queries, HomophilyConfig, ProfileConfig,
    QueryWorkloadConfig,
};
use kbtim_topics::{Query, UserProfiles};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Which of the paper's two dataset shapes to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetFamily {
    /// Sparse, low-reciprocity (hyperlink-like). Paper sizes 0.2M–1.4M.
    News,
    /// Dense, high-reciprocity, heavy-tailed. Paper sizes 10M–40M.
    Twitter,
}

impl DatasetFamily {
    /// Short name used in table rows ("news" / "twitter").
    pub fn name(&self) -> &'static str {
        match self {
            DatasetFamily::News => "news",
            DatasetFamily::Twitter => "twitter",
        }
    }
}

/// Builder-style dataset configuration.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    family: DatasetFamily,
    num_users: u32,
    num_topics: u32,
    edges_per_node: u32,
    reciprocal_prob: f64,
    max_topics_per_user: u32,
    topic_skew: f64,
    /// Neighbour-topic correlation (see
    /// [`kbtim_topics::workload::generate_profiles_homophilous`]): real
    /// social graphs are topically assortative, which is what makes
    /// targeted seeding beat untargeted seeding on the paper's News data.
    homophily: f64,
    seed: u64,
}

impl DatasetConfig {
    /// Start from a family's default shape parameters.
    pub fn family(family: DatasetFamily) -> DatasetConfig {
        match family {
            DatasetFamily::News => DatasetConfig {
                family,
                num_users: 20_000,
                num_topics: 48,
                edges_per_node: 2,
                reciprocal_prob: 0.15,
                max_topics_per_user: 4,
                topic_skew: 1.0,
                homophily: 0.85,
                seed: 0xB00C,
            },
            DatasetFamily::Twitter => DatasetConfig {
                family,
                num_users: 10_000,
                num_topics: 48,
                edges_per_node: 7,
                reciprocal_prob: 0.9,
                max_topics_per_user: 4,
                topic_skew: 1.0,
                homophily: 0.6,
                seed: 0x7717,
            },
        }
    }

    /// Number of users (= graph nodes).
    pub fn num_users(mut self, n: u32) -> DatasetConfig {
        self.num_users = n;
        self
    }

    /// Size of the topic space (the paper uses 200).
    pub fn num_topics(mut self, t: u32) -> DatasetConfig {
        self.num_topics = t;
        self
    }

    /// Out-edges created per arriving node (controls density).
    pub fn edges_per_node(mut self, m: u32) -> DatasetConfig {
        self.edges_per_node = m;
        self
    }

    /// Probability of reciprocal edges (controls hub influence shape).
    pub fn reciprocal_prob(mut self, p: f64) -> DatasetConfig {
        self.reciprocal_prob = p;
        self
    }

    /// Neighbour-topic correlation strength in `[0, 1]`.
    pub fn homophily(mut self, h: f64) -> DatasetConfig {
        self.homophily = h;
        self
    }

    /// Deterministic generation seed.
    pub fn seed(mut self, seed: u64) -> DatasetConfig {
        self.seed = seed;
        self
    }

    /// Generate the graph + profiles.
    pub fn build(&self) -> Dataset {
        let mut graph_rng = SmallRng::seed_from_u64(self.seed);
        let graph = preferential_attachment(
            PrefAttachConfig {
                num_nodes: self.num_users,
                edges_per_node: self.edges_per_node,
                reciprocal_prob: self.reciprocal_prob,
            },
            &mut graph_rng,
        );
        let mut profile_rng = SmallRng::seed_from_u64(self.seed.wrapping_add(1));
        let profiles = generate_profiles_homophilous(
            &graph,
            HomophilyConfig {
                base: ProfileConfig {
                    num_users: self.num_users,
                    num_topics: self.num_topics,
                    max_topics_per_user: self.max_topics_per_user,
                    topic_skew: self.topic_skew,
                },
                homophily: self.homophily,
                primary_weight: 0.6,
            },
            &mut profile_rng,
        );
        let name = format!(
            "{}{}",
            match self.family {
                DatasetFamily::News => "n",
                DatasetFamily::Twitter => "t",
            },
            format_size(self.num_users)
        );
        Dataset { name, family: self.family, config: *self, graph, profiles }
    }
}

fn format_size(n: u32) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

/// A generated dataset: graph, profiles and naming metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Row label in experiment tables (e.g. "n20k", "t10k") — mirrors the
    /// paper's `n0.2M` / `t10M` naming at the scaled-down sizes.
    pub name: String,
    /// Which family generated this.
    pub family: DatasetFamily,
    /// The configuration that produced it.
    pub config: DatasetConfig,
    /// The social graph.
    pub graph: Graph,
    /// The user topic profiles.
    pub profiles: UserProfiles,
}

impl Dataset {
    /// Generate the paper's query workload against this dataset
    /// (deterministic per dataset seed).
    pub fn queries(&self, workload: QueryWorkloadConfig) -> Vec<Query> {
        let mut rng = SmallRng::seed_from_u64(self.config.seed.wrapping_add(2));
        generate_queries(&self.profiles, workload, &mut rng)
    }
}

/// The scaled-down news sizes of Table 2 (paper: 0.2M–1.4M, here ÷10).
pub fn news_sizes() -> [u32; 4] {
    [20_000, 60_000, 100_000, 140_000]
}

/// The scaled-down twitter sizes of Table 2 (paper: 10M–40M, here ÷1000).
pub fn twitter_sizes() -> [u32; 4] {
    [10_000, 20_000, 30_000, 40_000]
}

/// Twitter-family density knob per size: the paper's Table 2 shows average
/// degree *decreasing* as the sampled graph grows (76.4 → 38.9); this maps
/// each size to an `edges_per_node` reproducing that trend at scale.
pub fn twitter_edges_per_node(num_users: u32) -> u32 {
    match num_users {
        n if n <= 10_000 => 8,
        n if n <= 20_000 => 6,
        n if n <= 30_000 => 5,
        _ => 4,
    }
}

/// News-family density knobs per size: `(edges_per_node, reciprocal_prob)`.
/// The paper's news samples also get sparser as they grow (avg degree
/// 5.2 → 2.2, Table 2); reciprocity is the fine-grained dial here because
/// `edges_per_node` is integral.
pub fn news_shape(num_users: u32) -> (u32, f64) {
    match num_users {
        n if n <= 20_000 => (3, 0.7),
        n if n <= 60_000 => (2, 0.55),
        n if n <= 100_000 => (2, 0.3),
        _ => (2, 0.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_graph::stats::{graph_stats, in_degree_histogram, log_log_slope};

    #[test]
    fn news_is_sparse_twitter_is_dense() {
        let news = DatasetConfig::family(DatasetFamily::News).num_users(5_000).build();
        let twitter = DatasetConfig::family(DatasetFamily::Twitter).num_users(5_000).build();
        let news_deg = news.graph.avg_degree();
        let twitter_deg = twitter.graph.avg_degree();
        assert!(news_deg < 5.0, "news avg degree {news_deg}");
        assert!(twitter_deg > 8.0, "twitter avg degree {twitter_deg}");
        assert!(twitter_deg > 3.0 * news_deg);
    }

    #[test]
    fn twitter_has_heavy_tail() {
        let data = DatasetConfig::family(DatasetFamily::Twitter).num_users(8_000).build();
        let hist = in_degree_histogram(&data.graph);
        let slope = log_log_slope(&hist).unwrap();
        assert!(slope < -0.8, "twitter in-degree slope {slope}");
        let stats = graph_stats(&data.graph);
        assert!(stats.max_in_degree as f64 > 20.0 * stats.avg_degree);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DatasetConfig::family(DatasetFamily::News).num_users(2_000).seed(5).build();
        let b = DatasetConfig::family(DatasetFamily::News).num_users(2_000).seed(5).build();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.profiles.num_entries(), b.profiles.num_entries());
        let c = DatasetConfig::family(DatasetFamily::News).num_users(2_000).seed(6).build();
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn names_match_paper_convention() {
        assert_eq!(
            DatasetConfig::family(DatasetFamily::News).num_users(20_000).build().name,
            "n20k"
        );
        assert_eq!(
            DatasetConfig::family(DatasetFamily::Twitter).num_users(10_000).build().name,
            "t10k"
        );
    }

    #[test]
    fn queries_are_deterministic_and_well_formed() {
        let data = DatasetConfig::family(DatasetFamily::News).num_users(3_000).build();
        let workload = QueryWorkloadConfig {
            min_keywords: 1,
            max_keywords: 6,
            queries_per_length: 5,
            k: 30,
            keyword_skew: 1.0,
        };
        let q1 = data.queries(workload);
        let q2 = data.queries(workload);
        assert_eq!(q1, q2);
        assert_eq!(q1.len(), 30);
        for q in &q1 {
            assert!(data.profiles.phi_q(q) > 0.0);
        }
    }

    #[test]
    fn twitter_density_trend_decreases() {
        let degs: Vec<u32> = twitter_sizes().iter().map(|&n| twitter_edges_per_node(n)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "{degs:?}");
    }

    #[test]
    fn sizes_are_scaled_table2() {
        assert_eq!(news_sizes(), [20_000, 60_000, 100_000, 140_000]);
        assert_eq!(twitter_sizes(), [10_000, 20_000, 30_000, 40_000]);
    }
}
