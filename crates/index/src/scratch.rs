//! Reusable per-query scratch state, pooled per index.
//!
//! The serving tier's steady state answers the same shapes of query over
//! and over; before this pool every query re-allocated its byte staging
//! buffers, per-keyword CSR arenas, the merged inverted index, and the
//! covered bitset. `ScratchPool` keeps those allocations alive between
//! queries so a warmed index allocates ~nothing per query.
//!
//! Why a lock-based pool and not `thread_local!`: scratch must flow
//! across threads. [`kbtim_exec::ExecPool`] workers (persistent or
//! scoped) pick up whichever shard comes next, and a served index takes
//! queries from many client threads at once — a thread-local would pin
//! each warmed buffer to one thread and leak one copy per client. The
//! pool instead hands each worker a `ScratchGuard` (one mutex pop), the
//! worker fills it, and the guard's drop pushes the block back for the
//! next query — on any thread. Concurrent queries simply lease distinct
//! blocks; the pool grows to the high-water concurrency and then stops
//! allocating. Contention is one short lock op per shard batch, noise
//! next to a block decode.
//!
//! Determinism: scratch contents never influence results — every buffer
//! is cleared or fully overwritten before use, which the serving
//! equivalence proptests (same seeds for every backend × thread count)
//! exercise end to end.

use crate::format::{IlCsr, PartitionMeta};
use kbtim_core::bitset::Bitset;
use kbtim_graph::NodeId;
use kbtim_topics::TopicId;
use std::cmp::Reverse;
use std::sync::Mutex;

/// A request group's shared keyword decode: each distinct keyword of a
/// batch decoded **once**, then consumed by any number of requests.
///
/// The serving tier's cross-request batch planner
/// ([`crate::serve::QueryEngine`]) builds one arena per admitted batch
/// via [`crate::KbtimIndex::decode_keywords`]: the full inverted-list
/// CSR of every distinct keyword any batched request needs, plus the RR
/// prefix decode at the *widest* share in the group (for faithful
/// query-time cost). Consumers ([`crate::KbtimIndex::merge_keywords`]
/// per keyword set; [`crate::KbtimIndex::query_rr_prepared`] /
/// [`crate::KbtimIndex::query_irr_prepared`] for single requests) then
/// truncate and remap the shared CSRs against their own Eqn-11
/// budgets — read-only, so any number of requests consume one arena
/// without copies.
///
/// Invariants: `topics` is strictly ascending and parallel to `csrs`;
/// every CSR holds a keyword's *complete* `L_w` (truncation is
/// per-request). The CSR arenas are leased from the index's scratch
/// pool and must go back via
/// [`crate::KbtimIndex::recycle_keywords`] when the batch finishes.
#[derive(Default)]
pub struct KeywordArena {
    /// Distinct decoded keywords, strictly ascending.
    pub(crate) topics: Vec<TopicId>,
    /// Full `L_w` CSR per keyword, parallel to `topics`.
    pub(crate) csrs: Vec<IlCsr>,
    /// RR sets decoded across the arena (each keyword at the widest
    /// share any batched request asked of it) — the books behind the
    /// engine's batching counters.
    pub(crate) rr_sets_decoded: u64,
}

impl KeywordArena {
    /// Number of distinct keywords decoded into this arena.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Whether the arena holds no keywords (a batch of empty-budget or
    /// memory-only requests).
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// RR sets decoded once for the whole batch (Σ per-keyword widest
    /// share).
    pub fn rr_sets_decoded(&self) -> u64 {
        self.rr_sets_decoded
    }

    /// The decoded full CSR of `topic`, if the arena holds it.
    pub(crate) fn csr(&self, topic: TopicId) -> Option<&IlCsr> {
        self.topics.binary_search(&topic).ok().map(|i| &self.csrs[i])
    }
}

/// One IRR query keyword's reusable NRA tables (the `KwState` backing
/// store): the `decode_ip` output, the partition catalog, the per-slot
/// loaded-list spans and the shared list arena. Before these were
/// pooled, every `query_irr` re-allocated all six per keyword — the bulk
/// of irr's ~400 allocations/query vs rr's ~16.
#[derive(Default)]
pub(crate) struct KwBufs {
    /// `IP_w` keys: users with at least one occurrence, ascending.
    pub(crate) users: Vec<NodeId>,
    /// First-occurrence ids, parallel to `users`.
    pub(crate) firsts: Vec<u32>,
    /// Partition catalog (rows and their `ir_samples` reused in place).
    pub(crate) partitions: Vec<PartitionMeta>,
    /// Arena start of each slot's truncated list, parallel to `users`.
    pub(crate) list_start: Vec<u32>,
    /// Truncated list length per slot.
    pub(crate) list_len: Vec<u32>,
    /// Loaded inverted lists, back to back in load order.
    pub(crate) arena: Vec<u32>,
}

impl KwBufs {
    /// Empty the tables, keeping every capacity.
    pub(crate) fn clear(&mut self) {
        self.users.clear();
        self.firsts.clear();
        // Keep the rows: decode_partition_meta_into overwrites in place.
        self.list_start.clear();
        self.list_len.clear();
        self.arena.clear();
    }
}

/// One worker's reusable buffers. All fields are cleared by their users
/// before refilling; only capacities persist between queries.
#[derive(Default)]
pub struct QueryScratch {
    /// Byte staging for file-backend block/range reads (zero-copy
    /// backends never touch it).
    pub(crate) bytes_a: Vec<u8>,
    /// Second staging buffer for when two raw blocks are alive at once
    /// (e.g. an IL block decoded while RR bytes are still borrowed).
    pub(crate) bytes_b: Vec<u8>,
    /// Bulk RR-prefix decode arena (all member lists back to back).
    pub(crate) rr_members: Vec<u32>,
    /// Per-set end boundaries into `rr_members`.
    pub(crate) rr_ends: Vec<u32>,
    /// Inverted-list block decode target.
    pub(crate) il: IlCsr,
    /// IR-entry member decode scratch (the NRA loop only needs counts).
    pub(crate) ir_members: Vec<u32>,
    /// Covered-RR-set bitset of the IRR NRA loop.
    pub(crate) covered: Bitset,
    /// Dense per-user selected flags (|V| bools).
    pub(crate) selected: Vec<bool>,
    /// Per-keyword NRA tables, one entry per query keyword (grown to the
    /// widest query seen).
    pub(crate) kw_bufs: Vec<KwBufs>,
    /// Backing store of the NRA candidate heap (capacity survives
    /// between queries via `BinaryHeap::into_vec`).
    pub(crate) nra_heap: Vec<(u64, Reverse<NodeId>)>,
    /// Fresh-candidate staging of the IRR partition loader.
    pub(crate) nra_fresh: Vec<NodeId>,
}

/// Shared pool of [`QueryScratch`] blocks plus recycled CSR/index
/// arenas. One per opened index (and one per [`crate::MemoryIndex`]).
#[derive(Default)]
pub(crate) struct ScratchPool {
    scratch: Mutex<Vec<QueryScratch>>,
    /// Spare per-keyword CSRs (the remapped/truncated lists each query
    /// keyword produces).
    csrs: Mutex<Vec<IlCsr>>,
    /// Spare arena bundles for the merged `InvertedIndex`
    /// (see `InvertedIndexBuilder::recycled`).
    arenas: Mutex<Vec<Vec<Vec<u32>>>>,
}

impl ScratchPool {
    pub(crate) fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Borrow a scratch block; returned to the pool when the guard
    /// drops.
    pub(crate) fn guard(&self) -> ScratchGuard<'_> {
        let block = self
            .scratch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        ScratchGuard { pool: self, block: Some(block) }
    }

    /// Take a spare per-keyword CSR (empty, capacity preserved).
    pub(crate) fn take_csr(&self) -> IlCsr {
        self.csrs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Return a per-keyword CSR for reuse.
    pub(crate) fn put_csr(&self, mut csr: IlCsr) {
        csr.reset();
        self.csrs.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(csr);
    }

    /// Take a recycled arena bundle for `InvertedIndexBuilder::recycled`
    /// (empty on a cold pool — the builder then allocates fresh).
    pub(crate) fn take_arenas(&self) -> Vec<Vec<u32>> {
        self.arenas
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Return a finished index's arenas for the next query.
    pub(crate) fn put_arenas(&self, arenas: Vec<Vec<u32>>) {
        self.arenas.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(arenas);
    }
}

/// RAII loan of a [`QueryScratch`]; derefs to the block and returns it
/// to the owning pool on drop.
pub(crate) struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    block: Option<QueryScratch>,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = QueryScratch;

    fn deref(&self) -> &QueryScratch {
        self.block.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut QueryScratch {
        self.block.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        let block = self.block.take().expect("scratch present until drop");
        self.pool.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_returns_block_to_pool() {
        let pool = ScratchPool::new();
        {
            let mut g = pool.guard();
            g.bytes_a.resize(1024, 0);
        }
        // The same (warm) block comes back.
        let g = pool.guard();
        assert!(g.bytes_a.capacity() >= 1024, "capacity must survive the round trip");
        assert_eq!(pool.scratch.lock().unwrap().len(), 0, "block is out on loan");
    }

    #[test]
    fn concurrent_guards_get_distinct_blocks() {
        let pool = ScratchPool::new();
        let a = pool.guard();
        let b = pool.guard();
        drop(a);
        drop(b);
        assert_eq!(pool.scratch.lock().unwrap().len(), 2);
    }

    #[test]
    fn csr_round_trip_is_reset() {
        let pool = ScratchPool::new();
        let mut csr = pool.take_csr();
        csr.ids.extend([1, 2, 3]);
        csr.close_list(7);
        pool.put_csr(csr);
        let csr = pool.take_csr();
        assert!(csr.is_empty());
        assert_eq!(csr.offsets, vec![0], "reset to the empty-CSR invariant");
    }

    #[test]
    fn kw_bufs_clear_keeps_capacity_and_catalog_rows() {
        let mut bufs = KwBufs::default();
        bufs.users.extend([1, 5, 9]);
        bufs.firsts.extend([0, 2, 7]);
        bufs.list_start.extend([0, 3]);
        bufs.list_len.extend([3, 2]);
        bufs.arena.extend([10, 11, 12, 20, 21]);
        bufs.partitions.push(crate::format::PartitionMeta {
            il_start: 0,
            il_end: 8,
            ir_start: 0,
            ir_end: 4,
            rr_count: 2,
            user_count: 2,
            max_len_after: 1,
            ir_samples: vec![(0, 0)],
        });
        let arena_cap = bufs.arena.capacity();
        bufs.clear();
        assert!(bufs.users.is_empty() && bufs.arena.is_empty() && bufs.list_start.is_empty());
        assert_eq!(bufs.arena.capacity(), arena_cap, "clear must keep capacities");
        // Catalog rows stay: decode_partition_meta_into overwrites them
        // in place so their ir_samples buffers are reused.
        assert_eq!(bufs.partitions.len(), 1);
    }

    #[test]
    fn arena_bundles_round_trip() {
        let pool = ScratchPool::new();
        assert!(pool.take_arenas().is_empty(), "cold pool hands out nothing");
        pool.put_arenas(vec![vec![1, 2, 3], vec![4]]);
        assert_eq!(pool.take_arenas().len(), 2);
    }
}
