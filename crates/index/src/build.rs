//! Index construction — Algorithm 1 (`BuildRR`) and Algorithm 3
//! (`BuildIRR`).
//!
//! For every keyword `w` held by at least one user:
//!
//! 1. estimate `OPT^w` (singleton for Eqn 8's conservative `θ̂_w`, size-`K`
//!    for Eqn 10's compact `θ_w` — the paper's Table 3 shows the compact
//!    bound shrinking the index ~9×);
//! 2. draw `θ_w` RR sets with roots from `ps(v, w) ∝ tf(w, v)`;
//! 3. invert them into `L_w`, and for the IRR variant sort by list length,
//!    partition into blocks of δ users, group RR sets by first-touching
//!    partition and record first occurrences (`IP_w`);
//! 4. write one checksummed segment per keyword.
//!
//! Keywords build in parallel on a fixed-size thread pool (the paper uses
//! 8 threads, §6.2); per-keyword RNG streams are derived from the build
//! seed and the topic id, so the index bytes are independent of thread
//! scheduling.

use crate::format::{self, IlEntry, IndexMeta, IndexVariant, IrEntry, KeywordMeta, PartitionMeta};
use crate::IndexError;
use kbtim_codec::Codec;
use kbtim_core::alias::RootSampler;
use kbtim_core::invindex::InvertedIndex;
use kbtim_core::opt::estimate_opt;
use kbtim_core::theta::{keyword_theta, SamplingConfig};
use kbtim_exec::ExecPool;
use kbtim_graph::NodeId;
use kbtim_propagation::{sample_batch, RrBatch, TriggeringModel};
use kbtim_storage::segment::SegmentWriter;
use kbtim_topics::{TopicId, UserProfiles};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::path::Path;
use std::time::{Duration, Instant};

/// Which θ bound sizes each keyword's RR pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThetaMode {
    /// Eqn 8: `θ̂_w` with `OPT^w_1` — conservative, ~an order of magnitude
    /// larger on disk (paper Table 3).
    Conservative,
    /// Eqn 10: `θ_w` with `OPT^w_K` — the paper's default.
    Compact,
}

/// Build-time configuration.
#[derive(Debug, Clone, Copy)]
pub struct IndexBuildConfig {
    /// ε, K and the OPT-estimation knobs.
    pub sampling: SamplingConfig,
    /// List codec (Table 4 compares `Raw` vs `Packed`).
    pub codec: Codec,
    /// θ̂_w (Eqn 8) vs θ_w (Eqn 10).
    pub theta_mode: ThetaMode,
    /// RR-only or IRR layout.
    pub variant: IndexVariant,
    /// Worker threads (paper: 8).
    pub threads: usize,
    /// Deterministic build seed.
    pub seed: u64,
    /// User-universe shards. 1 (the default) writes the legacy flat
    /// layout; S > 1 splits every keyword segment across `shard-<i>/`
    /// subdirectories by contiguous user range (see
    /// [`crate::format::shard_cuts`]). Sampling stays global, so query
    /// results are bit-identical for every S.
    pub shards: usize,
}

impl Default for IndexBuildConfig {
    /// Laptop-scale defaults: compact θ, packed codec, IRR with the
    /// paper's δ = 100, 8 threads.
    fn default() -> Self {
        IndexBuildConfig {
            sampling: SamplingConfig::fast(),
            codec: Codec::Packed,
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 100 },
            threads: 8,
            seed: 42,
            shards: 1,
        }
    }
}

/// FNV-1a offset basis (per-shard build fingerprints; the validator
/// recomputes the same fold to audit `shards.manifest`).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into an FNV-1a hash.
pub(crate) fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The members of a (sorted) RR set that fall in the user range
/// `[lo, hi)` — shard `i`'s view of the set.
fn restrict(set: &[NodeId], lo: NodeId, hi: NodeId) -> &[NodeId] {
    &set[set.partition_point(|&v| v < lo)..set.partition_point(|&v| v < hi)]
}

/// Per-keyword construction statistics (rows of Tables 3–5).
#[derive(Debug, Clone)]
pub struct KeywordBuildStats {
    /// Topic id.
    pub topic: TopicId,
    /// θ_w — RR sets sampled and stored.
    pub theta: u64,
    /// Mean RR-set size (nodes per set).
    pub mean_rr_size: f64,
    /// On-disk segment size in bytes.
    pub file_bytes: u64,
    /// Wall time for this keyword.
    pub elapsed: Duration,
}

/// Whole-build statistics.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// One entry per keyword with θ_w > 0.
    pub keywords: Vec<KeywordBuildStats>,
    /// Σ θ_w (Table 5's left column).
    pub total_theta: u64,
    /// Mean RR-set size across all keywords (Table 5's right column).
    pub mean_rr_size: f64,
    /// Total index bytes on disk, catalog included.
    pub total_bytes: u64,
    /// Wall-clock build time.
    pub elapsed: Duration,
}

/// Everything one keyword build produces: its global catalog row, the
/// per-shard catalog rows with segment-content fingerprints (empty for
/// the legacy flat layout), and the build stats.
struct KeywordBuild {
    meta: KeywordMeta,
    shard_rows: Vec<(KeywordMeta, u64)>,
    stats: KeywordBuildStats,
}

/// One keyword's complete sampled content, before any segment is
/// written: the global catalog row, the RR batch, and the inverted
/// list. Produced by [`IndexBuilder::sample_keyword`] — the shared
/// deterministic core of the on-disk build and the delta tier's
/// in-memory keyword materializer.
pub(crate) struct KeywordSample {
    /// Global catalog row (θ_w, tf·idf mass, OPT^w, list statistics).
    pub(crate) meta: KeywordMeta,
    /// The θ_w sampled RR sets.
    pub(crate) sets: RrBatch,
    /// `L_w`: ascending users with their ascending rr-id lists.
    pub(crate) il_entries: Vec<IlEntry>,
}

/// What [`IndexBuilder::write_segment`] measured for one
/// (keyword × shard) segment.
struct SegmentSummary {
    file_bytes: u64,
    content_fp: u64,
    max_list_len: u32,
    num_partitions: u32,
    total_members: u64,
}

/// Builds an on-disk index from a propagation model and user profiles.
pub struct IndexBuilder<'a, M: TriggeringModel> {
    model: &'a M,
    profiles: &'a UserProfiles,
    config: IndexBuildConfig,
}

impl<'a, M: TriggeringModel> IndexBuilder<'a, M> {
    /// Create a builder. The model's graph and the profiles must agree on
    /// the number of users.
    pub fn new(
        model: &'a M,
        profiles: &'a UserProfiles,
        config: IndexBuildConfig,
    ) -> IndexBuilder<'a, M> {
        assert_eq!(model.graph().num_nodes(), profiles.num_users(), "graph/profiles size mismatch");
        assert!(config.threads >= 1, "need at least one build thread");
        assert!(config.shards >= 1, "need at least one shard");
        if let IndexVariant::Irr { partition_size } = config.variant {
            assert!(partition_size >= 1, "partition size must be >= 1");
        }
        IndexBuilder { model, profiles, config }
    }

    /// Build the index into `dir` (created if missing; existing segments
    /// are overwritten).
    pub fn build(&self, dir: impl AsRef<Path>) -> Result<BuildReport, IndexError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(kbtim_storage::segment::StorageError::Io)?;
        let shards = self.config.shards;
        if shards > 1 {
            for s in 0..shards {
                std::fs::create_dir_all(dir.join(format::shard_dir_name(s)))
                    .map_err(kbtim_storage::segment::StorageError::Io)?;
            }
        }
        let start = Instant::now();
        let num_topics = self.profiles.num_topics();

        // One shard per keyword on the deterministic pool; per-keyword RNG
        // streams derive from (build seed, topic), so segment bytes are
        // independent of scheduling. The failure flag makes workers skip
        // keywords not yet started once any keyword errors (fail-fast, as
        // the pre-pool worker loop did) — it can never affect a
        // successful build.
        let pool = ExecPool::new(Some(self.config.threads));
        let failed = std::sync::atomic::AtomicBool::new(false);
        let results: Vec<Option<Result<KeywordBuild, IndexError>>> =
            pool.map_shards(num_topics as usize, |topic| {
                if failed.load(std::sync::atomic::Ordering::Relaxed) {
                    return None;
                }
                let entry = self.build_keyword(dir, topic as TopicId);
                if entry.is_err() {
                    failed.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                Some(entry)
            });

        let mut keywords_meta = Vec::with_capacity(num_topics as usize);
        let mut shard_keywords: Vec<Vec<KeywordMeta>> =
            vec![Vec::with_capacity(num_topics as usize); if shards > 1 { shards } else { 0 }];
        let mut shard_fps: Vec<u64> = vec![FNV_OFFSET; shards];
        let mut stats = Vec::new();
        for entry in results {
            let build = match entry {
                Some(Ok(build)) => build,
                Some(Err(e)) => return Err(e),
                // Shards are claimed in index order, so a skip can only
                // follow the failing entry — which the arm above already
                // returned. Unreachable in practice; tolerated here so the
                // guard below (not a panic) reports any logic rot.
                None => continue,
            };
            if build.meta.theta > 0 {
                stats.push(build.stats);
            }
            for (s, (row, content_fp)) in build.shard_rows.into_iter().enumerate() {
                // Shard fingerprint: FNV-1a over every keyword's (topic,
                // segment-content hash), folded in topic order.
                shard_fps[s] = fnv1a(&row.topic.to_le_bytes(), shard_fps[s]);
                shard_fps[s] = fnv1a(&content_fp.to_le_bytes(), shard_fps[s]);
                shard_keywords[s].push(row);
            }
            keywords_meta.push(build.meta);
        }
        if failed.into_inner() {
            return Err(IndexError::Corrupt(
                "keyword build failed without a reported error".into(),
            ));
        }

        // Global catalog — byte-identical for every shard count, so
        // Eqn-11 budgets and the cost model never depend on S.
        let meta = IndexMeta {
            num_users: self.profiles.num_users(),
            num_topics,
            codec: self.config.codec,
            variant: self.config.variant,
            model_name: self.model.name().to_string(),
            keywords: keywords_meta,
        };
        let mut writer = SegmentWriter::create(dir.join(format::META_FILE))?;
        writer.write_block(format::META_BLOCK, &meta.encode())?;
        let mut overhead_bytes = writer.finish()?;

        // Sharded layout: one standalone catalog per shard (global θ /
        // tf_sum / idf / opt_w rows with shard-local list statistics)
        // plus the manifest that announces the split on open.
        if shards > 1 {
            for (s, keywords) in shard_keywords.into_iter().enumerate() {
                let shard_meta = IndexMeta {
                    num_users: self.profiles.num_users(),
                    num_topics,
                    codec: self.config.codec,
                    variant: self.config.variant,
                    model_name: self.model.name().to_string(),
                    keywords,
                };
                let mut writer = SegmentWriter::create(
                    dir.join(format::shard_dir_name(s)).join(format::META_FILE),
                )?;
                writer.write_block(format::META_BLOCK, &shard_meta.encode())?;
                overhead_bytes += writer.finish()?;
            }
            let manifest = format::ShardManifest {
                num_users: self.profiles.num_users(),
                cuts: format::shard_cuts(self.profiles.num_users(), shards),
                fingerprints: shard_fps,
            };
            let mut writer = SegmentWriter::create(dir.join(format::SHARD_MANIFEST_FILE))?;
            writer.write_block(format::SHARD_MANIFEST_BLOCK, &manifest.encode())?;
            overhead_bytes += writer.finish()?;
        }

        let total_theta: u64 = meta.keywords.iter().map(|k| k.theta).sum();
        let total_members: u64 = meta.keywords.iter().map(|k| k.total_rr_members).sum();
        let total_bytes = overhead_bytes + stats.iter().map(|s| s.file_bytes).sum::<u64>();
        Ok(BuildReport {
            keywords: stats,
            total_theta,
            mean_rr_size: if total_theta == 0 {
                0.0
            } else {
                total_members as f64 / total_theta as f64
            },
            total_bytes,
            elapsed: start.elapsed(),
        })
    }

    /// Sample one keyword's complete logical content — the θ_w RR sets,
    /// the inverted list `L_w`, and the global catalog row — without
    /// touching disk. `None` when the keyword holds no segment (no
    /// profile mass, or θ_w = 0).
    ///
    /// This is the deterministic core of [`IndexBuilder::build_keyword`]
    /// and the oracle the delta tier materializes dirty keywords with:
    /// a pure function of (model, profiles, config, topic), never of the
    /// shard split or scheduling.
    pub(crate) fn sample_keyword(&self, topic: TopicId) -> Option<KeywordSample> {
        let (users, tfs) = self.profiles.topic_vector(topic);
        if users.is_empty() {
            return None;
        }
        let weights: Vec<f64> = tfs.iter().map(|&t| t as f64).collect();
        let roots = RootSampler::from_sparse(users, &weights)?;
        let tf_sum = self.profiles.tf_sum(topic);

        // Deterministic per-keyword RNG stream, independent of scheduling.
        let mut rng = SmallRng::seed_from_u64(
            self.config.seed.wrapping_add((topic as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );

        // OPT^w_1 (Eqn 8) or OPT^w_K (Eqn 10), in raw-tf units.
        let opt_k = match self.config.theta_mode {
            ThetaMode::Conservative => 1,
            ThetaMode::Compact => self.config.sampling.k_max,
        };
        // Keywords already build in parallel, so the intra-keyword batch
        // sampler runs sequentially (still sharded + re-seeded, keeping
        // segment bytes a pure function of the build seed).
        let keyword_pool = ExecPool::sequential();
        let opt = estimate_opt(
            self.model,
            &roots,
            tf_sum,
            opt_k,
            &self.config.sampling,
            &keyword_pool,
            &mut rng,
        );
        let theta = keyword_theta(
            self.model.graph().num_nodes() as u64,
            tf_sum,
            opt.value.max(1e-12),
            &self.config.sampling,
        );
        if theta == 0 {
            return None;
        }

        // Sample R_w into a flat arena batch.
        let batch_seed = rng.next_u64();
        let sets = sample_batch(self.model, theta as usize, batch_seed, &keyword_pool, |rng| {
            roots.sample(rng)
        });
        let total_members = sets.total_members() as u64;

        // Invert into L_w by counting sort over the arena (rr ids ascend
        // per user by construction, users ascend in `present`), then
        // materialize the per-user entries the encoder consumes.
        let inverted = InvertedIndex::from_batch(&sets);
        let il_entries: Vec<IlEntry> =
            inverted.present().iter().map(|&u| (u, inverted.list(u).to_vec())).collect();
        let max_list_len = il_entries.iter().map(|(_, l)| l.len() as u32).max().unwrap_or(0);

        // Global catalog row statistics — a pure function of the sampled
        // sets, never of the shard split.
        let num_partitions = match self.config.variant {
            IndexVariant::Irr { partition_size } => {
                il_entries.len().div_ceil(partition_size as usize) as u32
            }
            IndexVariant::Rr => 0,
        };

        let meta = KeywordMeta {
            topic,
            theta,
            tf_sum,
            idf: self.profiles.idf(topic),
            opt_w: opt.value,
            max_list_len,
            num_partitions,
            total_rr_members: total_members,
        };
        Some(KeywordSample { meta, sets, il_entries })
    }

    /// Build one keyword's segment(s); returns its catalog rows and stats.
    fn build_keyword(&self, dir: &Path, topic: TopicId) -> Result<KeywordBuild, IndexError> {
        let started = Instant::now();
        let shards = self.config.shards;
        let empty = |topic| {
            let meta = KeywordMeta {
                topic,
                theta: 0,
                tf_sum: 0.0,
                idf: 0.0,
                opt_w: 0.0,
                max_list_len: 0,
                num_partitions: 0,
                total_rr_members: 0,
            };
            KeywordBuild {
                shard_rows: if shards > 1 { vec![(meta.clone(), 0); shards] } else { Vec::new() },
                meta,
                stats: KeywordBuildStats {
                    topic,
                    theta: 0,
                    mean_rr_size: 0.0,
                    file_bytes: 0,
                    elapsed: started.elapsed(),
                },
            }
        };

        let Some(KeywordSample { meta, sets, il_entries }) = self.sample_keyword(topic) else {
            return Ok(empty(topic));
        };
        let (theta, tf_sum, total_members) = (meta.theta, meta.tf_sum, meta.total_rr_members);

        let num_users = self.profiles.num_users();
        let mut shard_rows = Vec::new();
        let file_bytes = if shards == 1 {
            // Legacy flat layout: the full universe is one shard.
            let path = dir.join(format::keyword_file_name(topic));
            let summary = self.write_segment(&path, &sets, 0, num_users, &il_entries)?;
            debug_assert_eq!(summary.max_list_len, meta.max_list_len);
            debug_assert_eq!(summary.num_partitions, meta.num_partitions);
            debug_assert_eq!(summary.total_members, total_members);
            summary.file_bytes
        } else {
            let cuts = format::shard_cuts(num_users, shards);
            let mut total = 0u64;
            for s in 0..shards {
                let path =
                    dir.join(format::shard_dir_name(s)).join(format::keyword_file_name(topic));
                let summary =
                    self.write_segment(&path, &sets, cuts[s], cuts[s + 1], &il_entries)?;
                total += summary.file_bytes;
                shard_rows.push((
                    KeywordMeta {
                        topic,
                        theta,
                        tf_sum,
                        idf: meta.idf,
                        opt_w: meta.opt_w,
                        max_list_len: summary.max_list_len,
                        num_partitions: summary.num_partitions,
                        total_rr_members: summary.total_members,
                    },
                    summary.content_fp,
                ));
            }
            total
        };

        let stats = KeywordBuildStats {
            topic,
            theta,
            mean_rr_size: total_members as f64 / theta as f64,
            file_bytes,
            elapsed: started.elapsed(),
        };
        Ok(KeywordBuild { meta, shard_rows, stats })
    }

    /// Write one keyword segment restricted to the user range `[lo, hi)`:
    /// every RR set keeps its global id but only its in-range members
    /// (possibly none), and the inverted list covers in-range users only
    /// — whose rr-id lists are *unchanged* from the global build, because
    /// each user witnesses its own RR sets. With `[0, num_users)` this is
    /// exactly the monolithic segment, byte for byte.
    fn write_segment(
        &self,
        path: &Path,
        sets: &RrBatch,
        lo: NodeId,
        hi: NodeId,
        il_entries: &[IlEntry],
    ) -> Result<SegmentSummary, IndexError> {
        let lo_idx = il_entries.partition_point(|(u, _)| *u < lo);
        let hi_idx = il_entries.partition_point(|(u, _)| *u < hi);
        let il_entries = &il_entries[lo_idx..hi_idx];
        let max_list_len = il_entries.iter().map(|(_, l)| l.len() as u32).max().unwrap_or(0);

        let codec = self.config.codec;
        let mut writer = SegmentWriter::create(path)?;

        // "rr" + "rr_off": sets in id order with a byte-offset table. The
        // offset table always spans all θ_w ids, so shared rr-id space
        // survives sharding (a set with no in-range members encodes
        // empty).
        writer.begin_block(format::RR_BLOCK)?;
        let mut offsets: Vec<u64> = Vec::with_capacity(sets.len() + 1);
        let mut scratch = Vec::new();
        let mut total_members = 0u64;
        offsets.push(0);
        for set in sets.iter() {
            let set = restrict(set, lo, hi);
            total_members += set.len() as u64;
            scratch.clear();
            codec.encode_sorted(set, &mut scratch);
            writer.write(&scratch)?;
            offsets.push(writer.block_position());
        }
        writer.end_block()?;
        let mut off_bytes = Vec::with_capacity(offsets.len() * 8);
        for &o in &offsets {
            off_bytes.extend_from_slice(&o.to_le_bytes());
        }
        writer.write_block(format::RR_OFF_BLOCK, &off_bytes)?;

        // "il".
        let mut il_bytes = Vec::new();
        format::encode_il_entries(il_entries, codec, &mut il_bytes);
        writer.write_block(format::IL_BLOCK, &il_bytes)?;

        // IRR blocks.
        let mut num_partitions = 0u32;
        if let IndexVariant::Irr { partition_size } = self.config.variant {
            // IP_w: first occurrence = first (smallest) id in each list.
            let ip_users: Vec<NodeId> = il_entries.iter().map(|(u, _)| *u).collect();
            let ip_firsts: Vec<u32> = il_entries.iter().map(|(_, l)| l[0]).collect();
            let mut ip_bytes = Vec::new();
            format::encode_ip(&ip_users, &ip_firsts, codec, &mut ip_bytes);
            writer.write_block(format::IP_BLOCK, &ip_bytes)?;

            // IL sorted by (len desc, user asc), split into δ-sized chunks.
            let mut sorted = il_entries.to_vec();
            sorted.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
            let chunks: Vec<&[IlEntry]> = sorted.chunks(partition_size as usize).collect();
            num_partitions = chunks.len() as u32;

            // Assign each RR set to the first partition touching it.
            let mut assigned = vec![false; sets.len()];
            let mut parts: Vec<PartitionMeta> = Vec::with_capacity(chunks.len());
            let mut ilp_bytes = Vec::new();
            let mut irp_bytes = Vec::new();
            for (p, chunk) in chunks.iter().enumerate() {
                let il_start = ilp_bytes.len() as u64;
                format::encode_il_entries(chunk, codec, &mut ilp_bytes);
                let il_end = ilp_bytes.len() as u64;

                let mut ids: Vec<u32> = Vec::new();
                for (_, list) in chunk.iter() {
                    for &rr in list {
                        if !assigned[rr as usize] {
                            assigned[rr as usize] = true;
                            ids.push(rr);
                        }
                    }
                }
                ids.sort_unstable();
                let ir_entries: Vec<IrEntry> = ids
                    .iter()
                    .map(|&id| (id, restrict(sets.set(id as usize), lo, hi).to_vec()))
                    .collect();
                let ir_start = irp_bytes.len() as u64;
                let ir_samples = format::encode_ir_entries(&ir_entries, codec, &mut irp_bytes);
                let ir_end = irp_bytes.len() as u64;

                let max_len_after = sorted
                    .get((p + 1) * partition_size as usize)
                    .map(|(_, l)| l.len() as u32)
                    .unwrap_or(0);
                parts.push(PartitionMeta {
                    il_start,
                    il_end,
                    ir_start,
                    ir_end,
                    rr_count: ir_entries.len() as u32,
                    user_count: chunk.len() as u32,
                    max_len_after,
                    ir_samples,
                });
            }
            // A set reaches a partition iff it has in-range members (the
            // monolithic range restricts to the full, never-empty set).
            debug_assert!(
                (0..sets.len()).all(|id| assigned[id] != restrict(sets.set(id), lo, hi).is_empty()),
                "every RR set with in-range members reaches a partition"
            );

            let mut pmeta_bytes = Vec::new();
            format::encode_partition_meta(&parts, &mut pmeta_bytes);
            writer.write_block(format::PMETA_BLOCK, &pmeta_bytes)?;
            writer.write_block(format::ILP_BLOCK, &ilp_bytes)?;
            writer.write_block(format::IRP_BLOCK, &irp_bytes)?;
        }

        let file_bytes = writer.finish()?;
        // Content fingerprint for the shard manifest: hash the finished
        // segment (checksummed framing included) so any reflush that
        // changes a single block is visible to the manifest.
        let content = std::fs::read(path).map_err(kbtim_storage::segment::StorageError::Io)?;
        Ok(SegmentSummary {
            file_bytes,
            content_fp: fnv1a(&content, FNV_OFFSET),
            max_list_len,
            num_partitions,
            total_members,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KbtimIndex;
    use kbtim_datagen::{DatasetConfig, DatasetFamily};
    use kbtim_propagation::model::IcModel;
    use kbtim_storage::{IoStats, TempDir};

    fn small_dataset() -> kbtim_datagen::Dataset {
        DatasetConfig::family(DatasetFamily::News).num_users(400).num_topics(6).seed(11).build()
    }

    fn small_config() -> IndexBuildConfig {
        IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(800),
                opt_initial_samples: 64,
                opt_max_rounds: 6,
                ..SamplingConfig::fast()
            },
            codec: Codec::Packed,
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 16 },
            threads: 4,
            seed: 7,
            shards: 1,
        }
    }

    #[test]
    fn build_and_open_roundtrip() {
        let data = small_dataset();
        let model = IcModel::weighted_cascade(&data.graph);
        let dir = TempDir::new("idx-build").unwrap();
        let report =
            IndexBuilder::new(&model, &data.profiles, small_config()).build(dir.path()).unwrap();
        assert!(report.total_theta > 0);
        assert!(report.total_bytes > 0);
        assert!(!report.keywords.is_empty());

        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert_eq!(index.meta().num_users, 400);
        assert_eq!(index.meta().num_topics, 6);
        assert_eq!(index.meta().model_name, "IC");
        let disk = index.disk_bytes().unwrap();
        assert_eq!(disk, report.total_bytes);
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let data = small_dataset();
        let model = IcModel::weighted_cascade(&data.graph);
        let mut bytes_by_threads = Vec::new();
        for threads in [1, 4] {
            let dir = TempDir::new("idx-det").unwrap();
            let config = IndexBuildConfig { threads, ..small_config() };
            IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
            // Hash every keyword file's bytes.
            let mut digest: Vec<(String, u64)> = Vec::new();
            for entry in std::fs::read_dir(dir.path()).unwrap() {
                let path = entry.unwrap().path();
                let bytes = std::fs::read(&path).unwrap();
                let sum = bytes
                    .iter()
                    .fold(0u64, |acc, &b| acc.wrapping_mul(1_000_003).wrapping_add(b as u64));
                digest.push((path.file_name().unwrap().to_string_lossy().into_owned(), sum));
            }
            digest.sort();
            bytes_by_threads.push(digest);
        }
        assert_eq!(bytes_by_threads[0], bytes_by_threads[1]);
    }

    #[test]
    fn sharded_build_keeps_global_catalog_byte_identical() {
        let data = small_dataset();
        let model = IcModel::weighted_cascade(&data.graph);
        let flat_dir = TempDir::new("idx-flat").unwrap();
        IndexBuilder::new(&model, &data.profiles, small_config()).build(flat_dir.path()).unwrap();

        let shard_dir = TempDir::new("idx-sharded").unwrap();
        let config = IndexBuildConfig { shards: 4, ..small_config() };
        let report =
            IndexBuilder::new(&model, &data.profiles, config).build(shard_dir.path()).unwrap();

        // The global catalog never depends on S — Eqn-11 budgets and the
        // cost model are split-invariant by construction.
        assert_eq!(
            std::fs::read(flat_dir.path().join(format::META_FILE)).unwrap(),
            std::fs::read(shard_dir.path().join(format::META_FILE)).unwrap(),
        );

        // Sharded layout: manifest + per-shard catalogs and segments, no
        // flat segments at the top level.
        assert!(shard_dir.path().join(format::SHARD_MANIFEST_FILE).is_file());
        for s in 0..4 {
            let sub = shard_dir.path().join(format::shard_dir_name(s));
            assert!(sub.join(format::META_FILE).is_file(), "shard {s} catalog");
        }
        assert!(!shard_dir.path().join(format::keyword_file_name(0)).exists());
        assert!(report.total_bytes > 0);
    }

    #[test]
    fn sharded_build_is_deterministic_and_tolerates_tiny_shards() {
        // More shards than some keywords have users: empty restricted
        // segments must build (and later validate) cleanly.
        use kbtim_graph::gen;
        use kbtim_topics::UserProfiles;
        let g = gen::cycle(5);
        let model = IcModel::weighted_cascade(&g);
        let profiles = UserProfiles::from_entries(5, 2, &[(0, 0, 1.0), (1, 0, 0.5), (4, 1, 1.0)]);
        let mut digests = Vec::new();
        for threads in [1, 4] {
            let dir = TempDir::new("idx-tiny-shard").unwrap();
            let config = IndexBuildConfig { shards: 8, threads, ..small_config() };
            IndexBuilder::new(&model, &profiles, config).build(dir.path()).unwrap();
            let mut digest: Vec<(String, u64)> = Vec::new();
            let mut stack = vec![dir.path().to_path_buf()];
            while let Some(d) = stack.pop() {
                for entry in std::fs::read_dir(&d).unwrap() {
                    let path = entry.unwrap().path();
                    if path.is_dir() {
                        stack.push(path);
                        continue;
                    }
                    let bytes = std::fs::read(&path).unwrap();
                    let sum = bytes
                        .iter()
                        .fold(0u64, |acc, &b| acc.wrapping_mul(1_000_003).wrapping_add(b as u64));
                    digest.push((
                        path.strip_prefix(dir.path()).unwrap().to_string_lossy().into_owned(),
                        sum,
                    ));
                }
            }
            digest.sort();
            digests.push(digest);
        }
        assert_eq!(digests[0], digests[1], "sharded builds are thread-count invariant");
    }

    #[test]
    fn conservative_theta_builds_bigger_index() {
        let data = small_dataset();
        let model = IcModel::weighted_cascade(&data.graph);
        let mut totals = Vec::new();
        for mode in [ThetaMode::Compact, ThetaMode::Conservative] {
            let dir = TempDir::new("idx-theta").unwrap();
            let config = IndexBuildConfig {
                theta_mode: mode,
                sampling: SamplingConfig {
                    theta_cap: Some(100_000),
                    opt_initial_samples: 128,
                    opt_max_rounds: 8,
                    ..SamplingConfig::fast()
                },
                ..small_config()
            };
            let report =
                IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
            totals.push(report.total_theta);
        }
        assert!(
            totals[1] > totals[0],
            "conservative θ̂ ({}) must exceed compact θ ({})",
            totals[1],
            totals[0]
        );
    }

    #[test]
    fn rr_variant_lacks_partition_blocks() {
        let data = small_dataset();
        let model = IcModel::weighted_cascade(&data.graph);
        let dir = TempDir::new("idx-rr").unwrap();
        let config = IndexBuildConfig { variant: IndexVariant::Rr, ..small_config() };
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert_eq!(index.meta().variant, IndexVariant::Rr);
        assert!(index.meta().keywords.iter().all(|k| k.num_partitions == 0));
    }

    #[test]
    fn unheld_topics_get_zero_theta() {
        // 3 users, topics 0 and 1 held, topic 2 unheld.
        use kbtim_graph::gen;
        use kbtim_topics::UserProfiles;
        let g = gen::cycle(3);
        let model = IcModel::weighted_cascade(&g);
        let profiles = UserProfiles::from_entries(3, 3, &[(0, 0, 1.0), (1, 1, 0.5), (2, 1, 0.5)]);
        let dir = TempDir::new("idx-zero").unwrap();
        let report =
            IndexBuilder::new(&model, &profiles, small_config()).build(dir.path()).unwrap();
        assert_eq!(report.keywords.len(), 2, "only held topics get segments");
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert_eq!(index.meta().keywords[2].theta, 0);
    }
}
