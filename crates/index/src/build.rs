//! Index construction — Algorithm 1 (`BuildRR`) and Algorithm 3
//! (`BuildIRR`).
//!
//! For every keyword `w` held by at least one user:
//!
//! 1. estimate `OPT^w` (singleton for Eqn 8's conservative `θ̂_w`, size-`K`
//!    for Eqn 10's compact `θ_w` — the paper's Table 3 shows the compact
//!    bound shrinking the index ~9×);
//! 2. draw `θ_w` RR sets with roots from `ps(v, w) ∝ tf(w, v)`;
//! 3. invert them into `L_w`, and for the IRR variant sort by list length,
//!    partition into blocks of δ users, group RR sets by first-touching
//!    partition and record first occurrences (`IP_w`);
//! 4. write one checksummed segment per keyword.
//!
//! Keywords build in parallel on a fixed-size thread pool (the paper uses
//! 8 threads, §6.2); per-keyword RNG streams are derived from the build
//! seed and the topic id, so the index bytes are independent of thread
//! scheduling.

use crate::format::{self, IlEntry, IndexMeta, IndexVariant, IrEntry, KeywordMeta, PartitionMeta};
use crate::IndexError;
use kbtim_codec::Codec;
use kbtim_core::alias::RootSampler;
use kbtim_core::invindex::InvertedIndex;
use kbtim_core::opt::estimate_opt;
use kbtim_core::theta::{keyword_theta, SamplingConfig};
use kbtim_exec::ExecPool;
use kbtim_graph::NodeId;
use kbtim_propagation::{sample_batch, TriggeringModel};
use kbtim_storage::segment::SegmentWriter;
use kbtim_topics::{TopicId, UserProfiles};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::path::Path;
use std::time::{Duration, Instant};

/// Which θ bound sizes each keyword's RR pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThetaMode {
    /// Eqn 8: `θ̂_w` with `OPT^w_1` — conservative, ~an order of magnitude
    /// larger on disk (paper Table 3).
    Conservative,
    /// Eqn 10: `θ_w` with `OPT^w_K` — the paper's default.
    Compact,
}

/// Build-time configuration.
#[derive(Debug, Clone, Copy)]
pub struct IndexBuildConfig {
    /// ε, K and the OPT-estimation knobs.
    pub sampling: SamplingConfig,
    /// List codec (Table 4 compares `Raw` vs `Packed`).
    pub codec: Codec,
    /// θ̂_w (Eqn 8) vs θ_w (Eqn 10).
    pub theta_mode: ThetaMode,
    /// RR-only or IRR layout.
    pub variant: IndexVariant,
    /// Worker threads (paper: 8).
    pub threads: usize,
    /// Deterministic build seed.
    pub seed: u64,
}

impl Default for IndexBuildConfig {
    /// Laptop-scale defaults: compact θ, packed codec, IRR with the
    /// paper's δ = 100, 8 threads.
    fn default() -> Self {
        IndexBuildConfig {
            sampling: SamplingConfig::fast(),
            codec: Codec::Packed,
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 100 },
            threads: 8,
            seed: 42,
        }
    }
}

/// Per-keyword construction statistics (rows of Tables 3–5).
#[derive(Debug, Clone)]
pub struct KeywordBuildStats {
    /// Topic id.
    pub topic: TopicId,
    /// θ_w — RR sets sampled and stored.
    pub theta: u64,
    /// Mean RR-set size (nodes per set).
    pub mean_rr_size: f64,
    /// On-disk segment size in bytes.
    pub file_bytes: u64,
    /// Wall time for this keyword.
    pub elapsed: Duration,
}

/// Whole-build statistics.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// One entry per keyword with θ_w > 0.
    pub keywords: Vec<KeywordBuildStats>,
    /// Σ θ_w (Table 5's left column).
    pub total_theta: u64,
    /// Mean RR-set size across all keywords (Table 5's right column).
    pub mean_rr_size: f64,
    /// Total index bytes on disk, catalog included.
    pub total_bytes: u64,
    /// Wall-clock build time.
    pub elapsed: Duration,
}

/// Builds an on-disk index from a propagation model and user profiles.
pub struct IndexBuilder<'a, M: TriggeringModel> {
    model: &'a M,
    profiles: &'a UserProfiles,
    config: IndexBuildConfig,
}

impl<'a, M: TriggeringModel> IndexBuilder<'a, M> {
    /// Create a builder. The model's graph and the profiles must agree on
    /// the number of users.
    pub fn new(
        model: &'a M,
        profiles: &'a UserProfiles,
        config: IndexBuildConfig,
    ) -> IndexBuilder<'a, M> {
        assert_eq!(model.graph().num_nodes(), profiles.num_users(), "graph/profiles size mismatch");
        assert!(config.threads >= 1, "need at least one build thread");
        if let IndexVariant::Irr { partition_size } = config.variant {
            assert!(partition_size >= 1, "partition size must be >= 1");
        }
        IndexBuilder { model, profiles, config }
    }

    /// Build the index into `dir` (created if missing; existing segments
    /// are overwritten).
    pub fn build(&self, dir: impl AsRef<Path>) -> Result<BuildReport, IndexError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(kbtim_storage::segment::StorageError::Io)?;
        let start = Instant::now();
        let num_topics = self.profiles.num_topics();

        // One shard per keyword on the deterministic pool; per-keyword RNG
        // streams derive from (build seed, topic), so segment bytes are
        // independent of scheduling. The failure flag makes workers skip
        // keywords not yet started once any keyword errors (fail-fast, as
        // the pre-pool worker loop did) — it can never affect a
        // successful build.
        let pool = ExecPool::new(Some(self.config.threads));
        let failed = std::sync::atomic::AtomicBool::new(false);
        type KeywordEntry = (KeywordMeta, KeywordBuildStats);
        let results: Vec<Option<Result<KeywordEntry, IndexError>>> =
            pool.map_shards(num_topics as usize, |topic| {
                if failed.load(std::sync::atomic::Ordering::Relaxed) {
                    return None;
                }
                let entry = self.build_keyword(dir, topic as TopicId);
                if entry.is_err() {
                    failed.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                Some(entry)
            });

        let mut keywords_meta = Vec::with_capacity(num_topics as usize);
        let mut stats = Vec::new();
        for entry in results {
            let (meta, stat) = match entry {
                Some(Ok(pair)) => pair,
                Some(Err(e)) => return Err(e),
                // Shards are claimed in index order, so a skip can only
                // follow the failing entry — which the arm above already
                // returned. Unreachable in practice; tolerated here so the
                // guard below (not a panic) reports any logic rot.
                None => continue,
            };
            if meta.theta > 0 {
                stats.push(stat);
            }
            keywords_meta.push(meta);
        }
        if failed.into_inner() {
            return Err(IndexError::Corrupt(
                "keyword build failed without a reported error".into(),
            ));
        }

        // Catalog.
        let meta = IndexMeta {
            num_users: self.profiles.num_users(),
            num_topics,
            codec: self.config.codec,
            variant: self.config.variant,
            model_name: self.model.name().to_string(),
            keywords: keywords_meta,
        };
        let mut writer = SegmentWriter::create(dir.join(format::META_FILE))?;
        writer.write_block(format::META_BLOCK, &meta.encode())?;
        let meta_bytes = writer.finish()?;

        let total_theta: u64 = meta.keywords.iter().map(|k| k.theta).sum();
        let total_members: u64 = meta.keywords.iter().map(|k| k.total_rr_members).sum();
        let total_bytes = meta_bytes + stats.iter().map(|s| s.file_bytes).sum::<u64>();
        Ok(BuildReport {
            keywords: stats,
            total_theta,
            mean_rr_size: if total_theta == 0 {
                0.0
            } else {
                total_members as f64 / total_theta as f64
            },
            total_bytes,
            elapsed: start.elapsed(),
        })
    }

    /// Build one keyword's segment; returns its catalog entry and stats.
    fn build_keyword(
        &self,
        dir: &Path,
        topic: TopicId,
    ) -> Result<(KeywordMeta, KeywordBuildStats), IndexError> {
        let started = Instant::now();
        let empty = |topic| {
            (
                KeywordMeta {
                    topic,
                    theta: 0,
                    tf_sum: 0.0,
                    idf: 0.0,
                    opt_w: 0.0,
                    max_list_len: 0,
                    num_partitions: 0,
                    total_rr_members: 0,
                },
                KeywordBuildStats {
                    topic,
                    theta: 0,
                    mean_rr_size: 0.0,
                    file_bytes: 0,
                    elapsed: started.elapsed(),
                },
            )
        };

        let (users, tfs) = self.profiles.topic_vector(topic);
        if users.is_empty() {
            return Ok(empty(topic));
        }
        let weights: Vec<f64> = tfs.iter().map(|&t| t as f64).collect();
        let Some(roots) = RootSampler::from_sparse(users, &weights) else {
            return Ok(empty(topic));
        };
        let tf_sum = self.profiles.tf_sum(topic);

        // Deterministic per-keyword RNG stream, independent of scheduling.
        let mut rng = SmallRng::seed_from_u64(
            self.config.seed.wrapping_add((topic as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );

        // OPT^w_1 (Eqn 8) or OPT^w_K (Eqn 10), in raw-tf units.
        let opt_k = match self.config.theta_mode {
            ThetaMode::Conservative => 1,
            ThetaMode::Compact => self.config.sampling.k_max,
        };
        // Keywords already build in parallel, so the intra-keyword batch
        // sampler runs sequentially (still sharded + re-seeded, keeping
        // segment bytes a pure function of the build seed).
        let keyword_pool = ExecPool::sequential();
        let opt = estimate_opt(
            self.model,
            &roots,
            tf_sum,
            opt_k,
            &self.config.sampling,
            &keyword_pool,
            &mut rng,
        );
        let theta = keyword_theta(
            self.model.graph().num_nodes() as u64,
            tf_sum,
            opt.value.max(1e-12),
            &self.config.sampling,
        );
        if theta == 0 {
            return Ok(empty(topic));
        }

        // Sample R_w into a flat arena batch.
        let batch_seed = rng.next_u64();
        let sets = sample_batch(self.model, theta as usize, batch_seed, &keyword_pool, |rng| {
            roots.sample(rng)
        });
        let total_members = sets.total_members() as u64;

        // Invert into L_w by counting sort over the arena (rr ids ascend
        // per user by construction, users ascend in `present`), then
        // materialize the per-user entries the encoder consumes.
        let inverted = InvertedIndex::from_batch(&sets);
        let il_entries: Vec<IlEntry> =
            inverted.present().iter().map(|&u| (u, inverted.list(u).to_vec())).collect();
        let max_list_len = il_entries.iter().map(|(_, l)| l.len() as u32).max().unwrap_or(0);

        // Write the segment.
        let codec = self.config.codec;
        let path = dir.join(format::keyword_file_name(topic));
        let mut writer = SegmentWriter::create(&path)?;

        // "rr" + "rr_off": sets in id order with a byte-offset table.
        writer.begin_block(format::RR_BLOCK)?;
        let mut offsets: Vec<u64> = Vec::with_capacity(sets.len() + 1);
        let mut scratch = Vec::new();
        offsets.push(0);
        for set in sets.iter() {
            scratch.clear();
            codec.encode_sorted(set, &mut scratch);
            writer.write(&scratch)?;
            offsets.push(writer.block_position());
        }
        writer.end_block()?;
        let mut off_bytes = Vec::with_capacity(offsets.len() * 8);
        for &o in &offsets {
            off_bytes.extend_from_slice(&o.to_le_bytes());
        }
        writer.write_block(format::RR_OFF_BLOCK, &off_bytes)?;

        // "il".
        let mut il_bytes = Vec::new();
        format::encode_il_entries(&il_entries, codec, &mut il_bytes);
        writer.write_block(format::IL_BLOCK, &il_bytes)?;

        // IRR blocks.
        let mut num_partitions = 0u32;
        if let IndexVariant::Irr { partition_size } = self.config.variant {
            // IP_w: first occurrence = first (smallest) id in each list.
            let ip_users: Vec<NodeId> = il_entries.iter().map(|(u, _)| *u).collect();
            let ip_firsts: Vec<u32> = il_entries.iter().map(|(_, l)| l[0]).collect();
            let mut ip_bytes = Vec::new();
            format::encode_ip(&ip_users, &ip_firsts, codec, &mut ip_bytes);
            writer.write_block(format::IP_BLOCK, &ip_bytes)?;

            // IL sorted by (len desc, user asc), split into δ-sized chunks.
            let mut sorted = il_entries.clone();
            sorted.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
            let chunks: Vec<&[IlEntry]> = sorted.chunks(partition_size as usize).collect();
            num_partitions = chunks.len() as u32;

            // Assign each RR set to the first partition touching it.
            let mut assigned = vec![false; sets.len()];
            let mut parts: Vec<PartitionMeta> = Vec::with_capacity(chunks.len());
            let mut ilp_bytes = Vec::new();
            let mut irp_bytes = Vec::new();
            for (p, chunk) in chunks.iter().enumerate() {
                let il_start = ilp_bytes.len() as u64;
                format::encode_il_entries(chunk, codec, &mut ilp_bytes);
                let il_end = ilp_bytes.len() as u64;

                let mut ids: Vec<u32> = Vec::new();
                for (_, list) in chunk.iter() {
                    for &rr in list {
                        if !assigned[rr as usize] {
                            assigned[rr as usize] = true;
                            ids.push(rr);
                        }
                    }
                }
                ids.sort_unstable();
                let ir_entries: Vec<IrEntry> =
                    ids.iter().map(|&id| (id, sets.set(id as usize).to_vec())).collect();
                let ir_start = irp_bytes.len() as u64;
                let ir_samples = format::encode_ir_entries(&ir_entries, codec, &mut irp_bytes);
                let ir_end = irp_bytes.len() as u64;

                let max_len_after = sorted
                    .get((p + 1) * partition_size as usize)
                    .map(|(_, l)| l.len() as u32)
                    .unwrap_or(0);
                parts.push(PartitionMeta {
                    il_start,
                    il_end,
                    ir_start,
                    ir_end,
                    rr_count: ir_entries.len() as u32,
                    user_count: chunk.len() as u32,
                    max_len_after,
                    ir_samples,
                });
            }
            debug_assert!(assigned.iter().all(|&a| a), "every RR set reaches a partition");

            let mut pmeta_bytes = Vec::new();
            format::encode_partition_meta(&parts, &mut pmeta_bytes);
            writer.write_block(format::PMETA_BLOCK, &pmeta_bytes)?;
            writer.write_block(format::ILP_BLOCK, &ilp_bytes)?;
            writer.write_block(format::IRP_BLOCK, &irp_bytes)?;
        }

        let file_bytes = writer.finish()?;
        let meta = KeywordMeta {
            topic,
            theta,
            tf_sum,
            idf: self.profiles.idf(topic),
            opt_w: opt.value,
            max_list_len,
            num_partitions,
            total_rr_members: total_members,
        };
        let stats = KeywordBuildStats {
            topic,
            theta,
            mean_rr_size: total_members as f64 / theta as f64,
            file_bytes,
            elapsed: started.elapsed(),
        };
        Ok((meta, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KbtimIndex;
    use kbtim_datagen::{DatasetConfig, DatasetFamily};
    use kbtim_propagation::model::IcModel;
    use kbtim_storage::{IoStats, TempDir};

    fn small_dataset() -> kbtim_datagen::Dataset {
        DatasetConfig::family(DatasetFamily::News).num_users(400).num_topics(6).seed(11).build()
    }

    fn small_config() -> IndexBuildConfig {
        IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(800),
                opt_initial_samples: 64,
                opt_max_rounds: 6,
                ..SamplingConfig::fast()
            },
            codec: Codec::Packed,
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 16 },
            threads: 4,
            seed: 7,
        }
    }

    #[test]
    fn build_and_open_roundtrip() {
        let data = small_dataset();
        let model = IcModel::weighted_cascade(&data.graph);
        let dir = TempDir::new("idx-build").unwrap();
        let report =
            IndexBuilder::new(&model, &data.profiles, small_config()).build(dir.path()).unwrap();
        assert!(report.total_theta > 0);
        assert!(report.total_bytes > 0);
        assert!(!report.keywords.is_empty());

        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert_eq!(index.meta().num_users, 400);
        assert_eq!(index.meta().num_topics, 6);
        assert_eq!(index.meta().model_name, "IC");
        let disk = index.disk_bytes().unwrap();
        assert_eq!(disk, report.total_bytes);
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let data = small_dataset();
        let model = IcModel::weighted_cascade(&data.graph);
        let mut bytes_by_threads = Vec::new();
        for threads in [1, 4] {
            let dir = TempDir::new("idx-det").unwrap();
            let config = IndexBuildConfig { threads, ..small_config() };
            IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
            // Hash every keyword file's bytes.
            let mut digest: Vec<(String, u64)> = Vec::new();
            for entry in std::fs::read_dir(dir.path()).unwrap() {
                let path = entry.unwrap().path();
                let bytes = std::fs::read(&path).unwrap();
                let sum = bytes
                    .iter()
                    .fold(0u64, |acc, &b| acc.wrapping_mul(1_000_003).wrapping_add(b as u64));
                digest.push((path.file_name().unwrap().to_string_lossy().into_owned(), sum));
            }
            digest.sort();
            bytes_by_threads.push(digest);
        }
        assert_eq!(bytes_by_threads[0], bytes_by_threads[1]);
    }

    #[test]
    fn conservative_theta_builds_bigger_index() {
        let data = small_dataset();
        let model = IcModel::weighted_cascade(&data.graph);
        let mut totals = Vec::new();
        for mode in [ThetaMode::Compact, ThetaMode::Conservative] {
            let dir = TempDir::new("idx-theta").unwrap();
            let config = IndexBuildConfig {
                theta_mode: mode,
                sampling: SamplingConfig {
                    theta_cap: Some(100_000),
                    opt_initial_samples: 128,
                    opt_max_rounds: 8,
                    ..SamplingConfig::fast()
                },
                ..small_config()
            };
            let report =
                IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
            totals.push(report.total_theta);
        }
        assert!(
            totals[1] > totals[0],
            "conservative θ̂ ({}) must exceed compact θ ({})",
            totals[1],
            totals[0]
        );
    }

    #[test]
    fn rr_variant_lacks_partition_blocks() {
        let data = small_dataset();
        let model = IcModel::weighted_cascade(&data.graph);
        let dir = TempDir::new("idx-rr").unwrap();
        let config = IndexBuildConfig { variant: IndexVariant::Rr, ..small_config() };
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert_eq!(index.meta().variant, IndexVariant::Rr);
        assert!(index.meta().keywords.iter().all(|k| k.num_partitions == 0));
    }

    #[test]
    fn unheld_topics_get_zero_theta() {
        // 3 users, topics 0 and 1 held, topic 2 unheld.
        use kbtim_graph::gen;
        use kbtim_topics::UserProfiles;
        let g = gen::cycle(3);
        let model = IcModel::weighted_cascade(&g);
        let profiles = UserProfiles::from_entries(3, 3, &[(0, 0, 1.0), (1, 1, 0.5), (2, 1, 0.5)]);
        let dir = TempDir::new("idx-zero").unwrap();
        let report =
            IndexBuilder::new(&model, &profiles, small_config()).build(dir.path()).unwrap();
        assert_eq!(report.keywords.len(), 2, "only held topics get segments");
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert_eq!(index.meta().keywords[2].theta, 0);
    }
}
